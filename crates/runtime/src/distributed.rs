//! The distributed LTS-Newmark stepper: one thread per rank, assembly
//! exchanges after every masked product, redundant (consistent) updates of
//! interface DOFs.
//!
//! Mirrors [`lts_core::LtsNewmark`]'s recursion exactly; the integration
//! tests assert agreement with the serial stepper to round-off.
//!
//! Ranks speak to each other only through the pluggable
//! [`crate::transport::Transport`] trait, so the same stepper runs over
//! in-process channels, bounded shared-memory rings, or Unix-socket frames
//! (and, wrapped in a [`crate::transport::faulty::FaultyTransport`], under
//! injected faults). Every force evaluation applies boundary elements first
//! and interior elements second *in both communication modes*: interface
//! partials depend only on boundary elements, so the payload bytes — and,
//! because the per-DOF summation order never changes, the final fields —
//! are bitwise identical whether `overlap` posts the sends between the two
//! applies or after them.

use crate::error::RuntimeError;

/// What a distributed run returns: final `(u, v)` and per-rank stats, or
/// the first rank failure.
pub type RunResult = Result<(Vec<f64>, Vec<f64>, Vec<RankStats>), RuntimeError>;
use crate::exchange::{build_plans, RankPlan};
use crate::monitor::{MonitorConfig, RankMonitor, StallMonitor};
use crate::stats::{names, RankStats, TimelineEvent};
use crate::transport::faulty::{self, FaultPlan};
use crate::transport::{self, Recv, Transport, TransportError, TransportKind};
use lts_core::{DofTopology, LtsSetup, Operator, Source, Workspace};
use lts_obs::{EventKind, FlightRecorder, MetricsRegistry, RankRecording, NO_LEVEL, NO_PEER};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Upper bound on one blocking receive inside the exchange loop. A healthy
/// peer answers in microseconds; a minute of silence means the peer (or its
/// link) is gone, and the step must fail as [`RuntimeError::ExchangeTimeout`]
/// instead of hanging the whole cluster on a lost rank.
const EXCHANGE_WATCHDOG: Duration = Duration::from_secs(60);

/// Runtime configuration.
#[derive(Debug, Clone, Copy)]
pub struct DistributedConfig {
    pub n_ranks: usize,
    /// Record a fine-grained per-exchange timeline (Fig. 1).
    pub record_timeline: bool,
    /// Artificial extra work per element-operation (spin iterations) — makes
    /// load imbalance visible on problems too small to measure otherwise.
    pub work_amplify: u32,
    /// Restrict `work_amplify` to one rank: deterministic skew for stall
    /// experiments. `None` amplifies every rank.
    pub amplify_rank: Option<usize>,
    /// Overlap communication with computation (the SPECFEM3D pattern the
    /// paper uses): compute boundary-element contributions, post the sends,
    /// compute interior elements while messages fly, then assemble.
    pub overlap: bool,
    /// Run the online stall/imbalance monitor (see [`crate::monitor`]).
    pub stall_monitor: Option<MonitorConfig>,
    /// Intra-rank worker threads for the masked products (1 = serial). The
    /// coloured scatter keeps results bitwise identical to serial at any
    /// value, so counters and fields are unaffected.
    pub threads_per_rank: usize,
    /// Which halo-exchange backend the in-process entry points build.
    pub transport: TransportKind,
    /// Flight-recorder ring capacity per rank, in events. `0` disables
    /// recording (seeded from the `LTS_FLIGHT` env var, default
    /// [`FlightRecorder::DEFAULT_CAPACITY`]). The recorder is proven
    /// bitwise-neutral: fields and deterministic counters are identical
    /// with it on or off.
    pub flight_capacity: usize,
    /// Inject a transport fault on one rank: the in-process entry points
    /// wrap that rank's endpoint in a
    /// [`crate::transport::faulty::FaultyTransport`] with the given plan.
    pub fault: Option<(usize, FaultPlan)>,
}

/// `LTS_FLIGHT` env override for the flight-recorder ring capacity: `0`
/// disables it, any other integer sets the per-rank capacity in events.
/// Unset or unparsable → the default.
pub fn flight_capacity_from_env() -> usize {
    match std::env::var("LTS_FLIGHT") {
        Ok(v) => v.trim().parse().unwrap_or(FlightRecorder::DEFAULT_CAPACITY),
        Err(_) => FlightRecorder::DEFAULT_CAPACITY,
    }
}

impl DistributedConfig {
    pub fn new(n_ranks: usize) -> Self {
        DistributedConfig {
            n_ranks,
            record_timeline: false,
            work_amplify: 0,
            amplify_rank: None,
            overlap: false,
            stall_monitor: None,
            threads_per_rank: 1,
            transport: TransportKind::Channel,
            flight_capacity: flight_capacity_from_env(),
            fault: None,
        }
    }
}

/// One rank's run result: `(u_local, v_local, global_of_local)`.
pub type RankResult = (Vec<f64>, Vec<f64>, Vec<u32>);

/// One rank's outcome on the globally-replicated state layout.
pub type RankRun = Result<(Vec<f64>, Vec<f64>, RankStats), RuntimeError>;

struct RankCtx<'a, O: Operator> {
    rank: usize,
    op: &'a O,
    n_levels: usize,
    dof_level: &'a [u8],
    plan: &'a RankPlan,
    sources: &'a [Source],
    /// per leaf level: (index into `sources`, DOF in this rank's numbering)
    my_sources: Vec<Vec<(usize, u32)>>,
    dt: f64,
    u: Vec<f64>,
    v: Vec<f64>,
    uts: Vec<Vec<f64>>,
    vts: Vec<Vec<f64>>,
    fs: Vec<Vec<f64>>,
    /// This rank's endpoint of the halo-exchange fabric.
    transport: Box<dyn Transport>,
    /// Peers whose goodbye has been observed.
    gone: Vec<bool>,
    /// Messages that arrived while awaiting a different peer: `(level tag,
    /// send seq, payload)`, per sender, consumed FIFO.
    inbox: Vec<VecDeque<(u8, u64, Vec<f64>)>>,
    /// Next per-directed-edge send sequence number, per peer. Monotone for
    /// the life of the rank — the happens-before substrate of the flight
    /// recorder's causal merge.
    send_seq: Vec<u64>,
    /// The always-on (unless capacity 0) event ring; allocation-free.
    flight: FlightRecorder,
    /// Reused payload staging for sends (the hot path never allocates).
    send_buf: Vec<f64>,
    /// Reused per-exchange receive slots, assembly cursors, buffer pool.
    pending: Vec<Option<Vec<f64>>>,
    cursors: Vec<usize>,
    pool: Vec<Vec<f64>>,
    /// Per-rank metrics; merged into [`RankStats`] views after the join.
    reg: MetricsRegistry,
    timeline: Vec<TimelineEvent>,
    monitor: Option<RankMonitor>,
    cfg: DistributedConfig,
    /// Operator scratch + compiled gather lists, reused across all steps.
    ws: Workspace,
    step_idx: u32,
    busy_since: Instant,
}

/// Map a transport send failure onto the runtime error for `(rank, peer, l)`.
#[cold]
fn send_error(rank: usize, peer: usize, level: usize, e: TransportError) -> RuntimeError {
    match e {
        TransportError::Disconnected { .. } | TransportError::Closed => {
            RuntimeError::PeerDisconnected { rank, peer, level }
        }
        TransportError::Timeout => RuntimeError::ExchangeTimeout { rank, level },
        TransportError::Injected => RuntimeError::FaultInjected { rank, level },
        e => RuntimeError::TransportIo {
            rank,
            level,
            detail: e.to_string(),
        },
    }
}

/// Map a transport receive failure onto the runtime error for `(rank, l)`.
#[cold]
fn recv_error(rank: usize, level: usize, e: TransportError) -> RuntimeError {
    match e {
        TransportError::Disconnected { peer } => {
            RuntimeError::PeerDisconnected { rank, peer, level }
        }
        TransportError::Closed => RuntimeError::ChannelClosed { rank, level },
        TransportError::Timeout => RuntimeError::ExchangeTimeout { rank, level },
        TransportError::Injected => RuntimeError::FaultInjected { rank, level },
        e => RuntimeError::TransportIo {
            rank,
            level,
            detail: e.to_string(),
        },
    }
}

/// `(level, peer)` context of a failure, stamped into the flight recorder's
/// terminal `fault` event.
#[cold]
fn fault_context(e: &RuntimeError) -> (u8, u32) {
    match e {
        RuntimeError::PeerDisconnected { peer, level, .. }
        | RuntimeError::NotAPeer { peer, level, .. }
        | RuntimeError::BadPayload { peer, level, .. } => (*level as u8, *peer as u32),
        RuntimeError::ChannelClosed { level, .. }
        | RuntimeError::ExchangeTimeout { level, .. }
        | RuntimeError::FaultInjected { level, .. }
        | RuntimeError::TransportIo { level, .. } => (*level as u8, NO_PEER),
        RuntimeError::RankPanicked { .. } | RuntimeError::MissingRank { .. } => (NO_LEVEL, NO_PEER),
    }
}

#[cold]
fn peer_gone(rank: usize, peer: usize, level: usize) -> RuntimeError {
    RuntimeError::PeerDisconnected { rank, peer, level }
}

#[cold]
fn bad_payload(rank: usize, peer: usize, level: usize) -> RuntimeError {
    RuntimeError::BadPayload { rank, peer, level }
}

#[cold]
fn not_a_peer(rank: usize, peer: usize, level: usize) -> RuntimeError {
    RuntimeError::NotAPeer { rank, peer, level }
}

impl<'a, O: Operator> RankCtx<'a, O> {
    fn amplify(&self, n_elems: usize) {
        if self.cfg.work_amplify > 0 && self.cfg.amplify_rank.is_none_or(|r| r == self.rank) {
            let iters = self.cfg.work_amplify as u64 * n_elems as u64;
            let mut x = 0u64;
            for i in 0..iters {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            std::hint::black_box(x);
        }
    }

    /// Warm every compiled gather entry the run will touch, before the timed
    /// loop: with comm/compute overlap the first send would otherwise be
    /// delayed by the boundary list's one-time compile.
    fn precompile(&mut self) {
        for l in 0..self.n_levels {
            for elems in [
                &self.plan.my_boundary_elems[l],
                &self.plan.my_interior_elems[l],
            ] {
                if !elems.is_empty() {
                    self.op
                        .precompile_masked(elems, self.dof_level, l as u8, &mut self.ws);
                }
            }
        }
    }

    /// Apply the masked product over this rank's elements, amplify work,
    /// then assemble totals on shared DOFs.
    ///
    /// Boundary elements are applied first in *both* modes (interface
    /// partials are then complete, since interior elements by definition
    /// touch no shared DOF); `overlap` only decides whether the sends are
    /// posted between the two applies (SPECFEM3D-style, messages fly while
    /// interior elements compute) or after them. The per-DOF summation
    /// order — and therefore every field bit — is identical either way.
    fn force_level(&mut self, l: usize, state_is_u: bool) -> Result<(), RuntimeError> {
        self.flight
            .record(EventKind::LevelBegin, l as u8, self.step_idx, NO_PEER, 0);
        // zero my entries
        for &i in &self.plan.my_zero[l] {
            self.fs[l][i as usize] = 0.0;
        }
        let has_peers = !self.plan.peers[l].is_empty();
        if !self.plan.my_boundary_elems[l].is_empty() {
            let state = if state_is_u { &self.u } else { &self.uts[l] };
            self.op.apply_masked_threads(
                state,
                &mut self.fs[l],
                &self.plan.my_boundary_elems[l],
                self.dof_level,
                l as u8,
                &mut self.ws,
                self.cfg.threads_per_rank,
            );
        }
        self.amplify(self.plan.my_boundary_elems[l].len());
        if has_peers && self.cfg.overlap {
            self.send_partials(l)?;
        }
        if !self.plan.my_interior_elems[l].is_empty() {
            let state = if state_is_u { &self.u } else { &self.uts[l] };
            self.op.apply_masked_threads(
                state,
                &mut self.fs[l],
                &self.plan.my_interior_elems[l],
                self.dof_level,
                l as u8,
                &mut self.ws,
                self.cfg.threads_per_rank,
            );
        }
        self.amplify(self.plan.my_interior_elems[l].len());
        self.reg
            .inc_level(names::ELEM_OPS, l as u8, self.plan.my_elems[l].len() as u64);
        if has_peers {
            if !self.cfg.overlap {
                self.send_partials(l)?;
            }
            self.recv_and_assemble(l)?;
        }
        self.flight
            .record(EventKind::LevelEnd, l as u8, self.step_idx, NO_PEER, 0);
        Ok(())
    }

    /// Post this rank's interface partials to every level-`l` peer. Stages
    /// each payload in the reused `send_buf`; allocation-free steady state
    /// (enforced via `lint/hotpaths.toml`).
    fn send_partials(&mut self, l: usize) -> Result<(), RuntimeError> {
        let mut dofs_sent = 0u64;
        for pi in 0..self.plan.peers[l].len() {
            let peer = self.plan.peers[l][pi];
            if self.gone[peer] {
                return Err(peer_gone(self.rank, peer, l));
            }
            self.send_buf.clear();
            for &d in &self.plan.pair_dofs[l][pi] {
                self.send_buf.push(self.fs[l][d as usize]);
            }
            dofs_sent += self.send_buf.len() as u64;
            let seq = self.send_seq[peer];
            if let Err(e) = self.transport.send(peer, l as u8, seq, &self.send_buf) {
                return Err(send_error(self.rank, peer, l, e));
            }
            self.send_seq[peer] = seq + 1;
            self.flight
                .record(EventKind::Send, l as u8, self.step_idx, peer as u32, seq);
        }
        if let Err(e) = self.transport.flush() {
            return Err(recv_error(self.rank, l, e));
        }
        self.reg
            .inc_level(names::MSGS_SENT, l as u8, self.plan.peers[l].len() as u64);
        self.reg.inc_level(names::DOFS_SENT, l as u8, dofs_sent);
        Ok(())
    }

    /// Await one payload per level-`l` peer, then assemble shared-DOF totals
    /// in ascending-rank order for bitwise cross-rank consistency. A peer's
    /// goodbye while its payload is still awaited surfaces as
    /// [`RuntimeError::PeerDisconnected`]; payload lengths are validated
    /// against the exchange plan before any indexing. Buffers recycle
    /// through `pool`; allocation-free steady state (see
    /// `lint/hotpaths.toml`).
    fn recv_and_assemble(&mut self, l: usize) -> Result<(), RuntimeError> {
        let busy_s = self.busy_since.elapsed().as_secs_f64();
        self.reg.observe(names::BUSY, Some(l as u8), busy_s);
        self.flight
            .record(EventKind::ExchangeBegin, l as u8, self.step_idx, NO_PEER, 0);
        let wait_start = Instant::now();
        let np = self.plan.peers[l].len();
        // opportunistic drain: claim everything the transport has already
        // delivered before deciding what to block on. Best-effort — a
        // backend that cannot poll returns None and loses nothing (its
        // partials arrive through the blocking loop below); real errors
        // also resurface there, on the path that can classify them.
        loop {
            let mut buf = self.pool.pop().unwrap_or_default();
            match self.transport.try_recv_into(&mut buf) {
                Ok(Some(Recv::Msg { from, level, seq })) => {
                    if from >= self.inbox.len() {
                        return Err(not_a_peer(self.rank, from, l));
                    }
                    self.flight
                        .record(EventKind::Recv, level, self.step_idx, from as u32, seq);
                    self.inbox[from].push_back((level, seq, buf));
                }
                Ok(Some(Recv::Goodbye { from })) => {
                    self.pool.push(buf);
                    if from < self.gone.len() {
                        self.gone[from] = true;
                    }
                }
                Ok(None) | Err(_) => {
                    self.pool.push(buf);
                    break;
                }
            }
        }
        self.pending.clear();
        self.pending.resize_with(np, || None);
        let mut missing = np;
        let mut ready = 0u64;
        for pi in 0..np {
            let peer = self.plan.peers[l][pi];
            if let Some((tag, _seq, m)) = self.inbox[peer].pop_front() {
                if tag as usize != l {
                    return Err(bad_payload(self.rank, peer, l));
                }
                self.pending[pi] = Some(m);
                missing -= 1;
                ready += 1;
            } else if self.gone[peer] {
                // nothing stashed and the peer is dead: its payload for this
                // exchange can never arrive
                return Err(peer_gone(self.rank, peer, l));
            }
        }
        while missing > 0 {
            let mut buf = self.pool.pop().unwrap_or_default();
            match self
                .transport
                .recv_into_timeout(&mut buf, Some(EXCHANGE_WATCHDOG))
            {
                Ok(Recv::Msg { from, level, seq }) => {
                    self.flight
                        .record(EventKind::Recv, level, self.step_idx, from as u32, seq);
                    let slot = self.plan.peers[l].iter().position(|&p| p == from);
                    match slot {
                        Some(pi) if self.pending[pi].is_none() => {
                            if level as usize != l {
                                return Err(bad_payload(self.rank, from, l));
                            }
                            self.pending[pi] = Some(buf);
                            missing -= 1;
                        }
                        _ => {
                            if from >= self.inbox.len() {
                                return Err(not_a_peer(self.rank, from, l));
                            }
                            self.inbox[from].push_back((level, seq, buf));
                        }
                    }
                }
                Ok(Recv::Goodbye { from }) => {
                    self.pool.push(buf);
                    if from < self.gone.len() {
                        self.gone[from] = true;
                    }
                    let awaited = self.plan.peers[l]
                        .iter()
                        .position(|&p| p == from)
                        .is_some_and(|pi| self.pending[pi].is_none());
                    if awaited {
                        return Err(peer_gone(self.rank, from, l));
                    }
                }
                Err(e) => {
                    self.pool.push(buf);
                    return Err(recv_error(self.rank, l, e));
                }
            }
        }
        // validate payload lengths against the plan before any indexing
        for pi in 0..np {
            let ok = match self.pending[pi].as_ref() {
                Some(m) => m.len() == self.plan.pair_dofs[l][pi].len(),
                None => false,
            };
            if !ok {
                return Err(bad_payload(self.rank, self.plan.peers[l][pi], l));
            }
        }
        let wait_s = wait_start.elapsed().as_secs_f64();
        self.flight
            .record(EventKind::ExchangeEnd, l as u8, self.step_idx, NO_PEER, 0);
        self.reg.observe(names::WAIT, Some(l as u8), wait_s);
        self.reg.inc_level(names::EXCHANGES, l as u8, 1);
        if ready > 0 {
            self.reg.inc_level(names::EXCHANGE_READY, l as u8, ready);
        }
        if let Some(m) = self.monitor.as_mut() {
            if m.on_exchange(&mut self.reg, l as u8, busy_s, wait_s) {
                self.flight
                    .record(EventKind::StallWarning, l as u8, self.step_idx, NO_PEER, 0);
            }
        }
        if self.cfg.record_timeline {
            self.timeline.push(TimelineEvent {
                level: l as u8,
                step: self.step_idx,
                busy_s,
                wait_s,
                elem_ops: self.reg.counter_total(names::ELEM_OPS),
                dofs_sent: self.reg.counter_total(names::DOFS_SENT),
            });
        }
        // assemble in ascending-rank order for bitwise consistency
        self.cursors.clear();
        self.cursors.resize(np, 0);
        let rank = self.rank;
        let plan = self.plan;
        let fs_l = &mut self.fs[l];
        for (d, ranks) in &plan.shared[l] {
            let mut total = 0.0;
            for &r in ranks {
                if r as usize == rank {
                    total += fs_l[*d as usize];
                } else {
                    let pi = match plan.peers[l].iter().position(|&p| p == r as usize) {
                        Some(pi) => pi,
                        None => return Err(not_a_peer(rank, r as usize, l)),
                    };
                    match self.pending[pi].as_ref() {
                        Some(m) => {
                            total += m[self.cursors[pi]];
                            self.cursors[pi] += 1;
                        }
                        None => return Err(not_a_peer(rank, r as usize, l)),
                    }
                }
            }
            fs_l[*d as usize] = total;
        }
        // recycle the payload buffers for the next exchange
        while let Some(p) = self.pending.pop() {
            if let Some(b) = p {
                self.pool.push(b);
            }
        }
        self.busy_since = Instant::now();
        Ok(())
    }

    /// Inject `Δ·F(t)/M` for this rank's sources at `level` into `target`
    /// (`vts[level]` or the global `v`).
    fn inject(&self, level: usize, target: &mut [f64], dt: f64, t: f64, half: f64) {
        for &(si, dof) in &self.my_sources[level] {
            let src = &self.sources[si];
            let d = dof as usize;
            target[d] += half * dt * (src.amplitude)(t) / self.op.mass()[d];
        }
    }

    fn aux_advance(&mut self, l: usize, t0: f64) -> Result<(), RuntimeError> {
        let levels = self.n_levels;
        let dt_l = self.dt / (1u64 << l) as f64;
        let innermost = l == levels - 1;
        for m in 0..2usize {
            let tm = t0 + m as f64 * dt_l;
            self.force_level(l, false)?;
            if innermost {
                for ai in 0..self.plan.my_active[l].len() {
                    let i = self.plan.my_active[l][ai] as usize;
                    let mut f = 0.0;
                    for fj in self.fs[..=l].iter() {
                        f += fj[i];
                    }
                    if m == 0 {
                        self.vts[l][i] = -0.5 * dt_l * f;
                    } else {
                        self.vts[l][i] -= dt_l * f;
                    }
                }
                {
                    let (vts_lo, vts_hi) = self.vts.split_at_mut(l);
                    let _ = vts_lo;
                    let mut tmp = std::mem::take(&mut vts_hi[0]);
                    self.inject(l, &mut tmp, dt_l, tm, if m == 0 { 0.5 } else { 1.0 });
                    self.vts[l] = tmp;
                }
                for ai in 0..self.plan.my_active[l].len() {
                    let i = self.plan.my_active[l][ai] as usize;
                    self.uts[l][i] += dt_l * self.vts[l][i];
                }
            } else {
                {
                    let (cur, rest) = self.uts.split_at_mut(l + 1);
                    let src = &cur[l];
                    let dst = &mut rest[0];
                    for &i in &self.plan.my_active[l + 1] {
                        dst[i as usize] = src[i as usize];
                    }
                }
                self.aux_advance(l + 1, tm)?;
                for ai in 0..self.plan.my_leaf[l].len() {
                    let i = self.plan.my_leaf[l][ai] as usize;
                    let mut f = 0.0;
                    for fj in self.fs[..=l].iter() {
                        f += fj[i];
                    }
                    if m == 0 {
                        self.vts[l][i] = -0.5 * dt_l * f;
                    } else {
                        self.vts[l][i] -= dt_l * f;
                    }
                }
                {
                    let mut tmp = std::mem::take(&mut self.vts[l]);
                    self.inject(l, &mut tmp, dt_l, tm, if m == 0 { 0.5 } else { 1.0 });
                    self.vts[l] = tmp;
                }
                for ai in 0..self.plan.my_active[l + 1].len() {
                    let i = self.plan.my_active[l + 1][ai] as usize;
                    let d = (self.uts[l + 1][i] - self.uts[l][i]) / dt_l;
                    if m == 0 {
                        self.vts[l][i] = d;
                    } else {
                        self.vts[l][i] += 2.0 * d;
                    }
                }
                for ai in 0..self.plan.my_active[l].len() {
                    let i = self.plan.my_active[l][ai] as usize;
                    self.uts[l][i] += dt_l * self.vts[l][i];
                }
            }
        }
        Ok(())
    }

    fn step(&mut self, t: f64) -> Result<(), RuntimeError> {
        self.flight
            .record(EventKind::StepBegin, NO_LEVEL, self.step_idx, NO_PEER, 0);
        let levels = self.n_levels;
        let dt = self.dt;
        self.force_level(0, true)?;
        if levels == 1 {
            for &i in &self.plan.my_dofs {
                let i = i as usize;
                self.v[i] -= dt * self.fs[0][i];
            }
            let mut tmp = std::mem::take(&mut self.v);
            self.inject(0, &mut tmp, dt, t, 1.0);
            self.v = tmp;
            for &i in &self.plan.my_dofs {
                let i = i as usize;
                self.u[i] += dt * self.v[i];
            }
        } else {
            for &i in &self.plan.my_active[1] {
                self.uts[1][i as usize] = self.u[i as usize];
            }
            self.aux_advance(1, t)?;
            for &i in &self.plan.my_active[1] {
                let i = i as usize;
                self.v[i] += 2.0 * (self.uts[1][i] - self.u[i]) / dt;
            }
            for &i in &self.plan.my_leaf[0] {
                let i = i as usize;
                self.v[i] -= dt * self.fs[0][i];
            }
            let mut tmp = std::mem::take(&mut self.v);
            self.inject(0, &mut tmp, dt, t, 1.0);
            self.v = tmp;
            for &i in &self.plan.my_dofs {
                let i = i as usize;
                self.u[i] += dt * self.v[i];
            }
        }
        self.flight
            .record(EventKind::StepEnd, NO_LEVEL, self.step_idx, NO_PEER, 0);
        self.step_idx += 1;
        Ok(())
    }
}

/// Drive one rank's context for `n_steps`, then stamp its transport metrics
/// (labelled by backend) and close the endpoint so peers observe a clean
/// goodbye. On error the context drops, which closes the endpoint too —
/// that drop is what propagates the failure cascade.
fn run_rank_loop<O: Operator>(mut ctx: RankCtx<'_, O>, n_steps: usize) -> (RankRun, RankRecording) {
    ctx.precompile();
    ctx.busy_since = Instant::now();
    let dt = ctx.dt;
    for step in 0..n_steps {
        if let Err(e) = ctx.step(step as f64 * dt) {
            // terminal fault event, then freeze the ring for the post-mortem
            let (level, peer) = fault_context(&e);
            ctx.flight
                .record(EventKind::Fault, level, ctx.step_idx, peer, 0);
            let rec = ctx.flight.snapshot(ctx.rank as u32);
            return (Err(e), rec);
        }
    }
    // busy tail after the last exchange, recorded level-less
    ctx.reg
        .observe(names::BUSY, None, ctx.busy_since.elapsed().as_secs_f64());
    if let Some(mut m) = ctx.monitor.take() {
        m.flush_window(&mut ctx.reg);
    }
    let backend = ctx.transport.backend();
    let tm = ctx.transport.metrics();
    ctx.reg
        .set_gauge_labeled(names::TRANSPORT_SEND_BLOCK_S, backend, tm.send_block_s);
    ctx.reg
        .set_gauge_labeled(names::TRANSPORT_MSGS, backend, tm.msgs_sent as f64);
    ctx.reg
        .set_gauge_labeled(names::TRANSPORT_BYTES, backend, tm.bytes_sent as f64);
    ctx.transport.close();
    let rank = ctx.rank;
    let rec = ctx.flight.snapshot(rank as u32);
    (
        Ok((
            ctx.u,
            ctx.v,
            RankStats::from_registry(rank, ctx.reg, ctx.timeline),
        )),
        rec,
    )
}

/// Apply `cfg.fault` to a freshly built (or caller-provided) set of
/// endpoints: the configured rank's endpoint gets the faulty wrapper.
fn apply_fault_plan(
    endpoints: Vec<Box<dyn Transport>>,
    fault: Option<(usize, FaultPlan)>,
) -> Vec<Box<dyn Transport>> {
    endpoints
        .into_iter()
        .enumerate()
        .map(|(r, ep)| match fault {
            Some((fr, plan)) if fr == r => faulty::wrap(ep, plan),
            _ => ep,
        })
        .collect()
}

/// Stamp the monitor's final per-level Eq. 21 λ (and its run-long watermark)
/// into the given registries as gauges. Runs after the join, when all busy
/// totals are complete, so [`names::STALL_LAMBDA`] agrees with the post-hoc
/// [`crate::stats::lambda_from_stats`].
fn stamp_lambda_gauges<'r>(
    monitor: Option<&StallMonitor>,
    regs: impl Iterator<Item = &'r mut MetricsRegistry>,
) {
    let Some(mon) = monitor else { return };
    let lam = mon.update_lambda_watermarks();
    let wm = mon.lambda_watermarks();
    for reg in regs {
        for l in 0..lam.len() {
            reg.set_gauge_level(names::STALL_LAMBDA, l as u8, lam[l]);
            reg.set_gauge_level(names::STALL_LAMBDA_WM, l as u8, wm[l]);
        }
    }
}

/// Run `n_steps` of distributed LTS-Newmark over `partition`. Returns the
/// assembled global `(u, v)` and per-rank statistics; fails cleanly (no
/// deadlock, no panic) if any rank drops out mid-run.
#[allow(clippy::too_many_arguments)]
pub fn run_distributed<O: Operator + DofTopology + Sync>(
    op: &O,
    setup: &LtsSetup,
    partition: &[u32],
    dt: f64,
    u0: &[f64],
    v0: &[f64],
    n_steps: usize,
    cfg: &DistributedConfig,
) -> RunResult {
    run_distributed_with_sources(op, setup, partition, dt, u0, v0, n_steps, cfg, &[])
}

/// [`run_distributed`] with external point sources; every rank owning a
/// source's DOF injects it identically, so interface DOFs stay consistent.
#[allow(clippy::too_many_arguments)]
pub fn run_distributed_with_sources<O: Operator + DofTopology + Sync>(
    op: &O,
    setup: &LtsSetup,
    partition: &[u32],
    dt: f64,
    u0: &[f64],
    v0: &[f64],
    n_steps: usize,
    cfg: &DistributedConfig,
    sources: &[Source],
) -> RunResult {
    let n_ranks = cfg.n_ranks;
    let endpoints = transport::make_cluster(cfg.transport, n_ranks);
    let (outcomes, plans, _recordings) = run_endpoints_with_plans(
        op, setup, partition, dt, u0, v0, n_steps, cfg, sources, endpoints,
    );
    // lowest failed rank wins, matching the pre-transport behaviour
    let mut results = Vec::with_capacity(n_ranks);
    for o in outcomes {
        results.push(o?);
    }

    // assemble global state from DOF owners (lowest owning rank)
    let ndof = Operator::ndof(op);
    let mut owner = vec![u32::MAX; ndof];
    for (rank, plan) in plans.iter().enumerate() {
        for &d in &plan.my_dofs {
            owner[d as usize] = owner[d as usize].min(rank as u32);
        }
    }
    let mut u = vec![0.0; ndof];
    let mut v = vec![0.0; ndof];
    let mut stats: Vec<RankStats> = Vec::with_capacity(n_ranks);
    for (rank, (ur, vr, st)) in results.into_iter().enumerate() {
        for d in 0..ndof {
            if owner[d] == rank as u32 {
                u[d] = ur[d];
                v[d] = vr[d];
            }
        }
        stats.push(st);
    }
    Ok((u, v, stats))
}

/// Run every rank of a globally-replicated distributed run on the given
/// transport endpoints (one per rank, e.g. from
/// [`transport::make_cluster`] or wrapped in
/// [`crate::transport::faulty::FaultyTransport`]), returning **each rank's
/// own outcome** instead of the first failure — the fault-injection tests
/// assert that killing one rank yields an error on *every* rank.
#[allow(clippy::too_many_arguments)]
pub fn run_distributed_endpoints<O: Operator + DofTopology + Sync>(
    op: &O,
    setup: &LtsSetup,
    partition: &[u32],
    dt: f64,
    u0: &[f64],
    v0: &[f64],
    n_steps: usize,
    cfg: &DistributedConfig,
    sources: &[Source],
    endpoints: Vec<Box<dyn Transport>>,
) -> Vec<RankRun> {
    run_endpoints_with_plans(
        op, setup, partition, dt, u0, v0, n_steps, cfg, sources, endpoints,
    )
    .0
}

/// [`run_distributed_endpoints`] plus each rank's flight recording — the
/// post-mortem path: recordings come back on success *and* failure, so an
/// injected fault still yields the material for a causally merged crash
/// report.
#[allow(clippy::too_many_arguments)]
pub fn run_distributed_endpoints_recorded<O: Operator + DofTopology + Sync>(
    op: &O,
    setup: &LtsSetup,
    partition: &[u32],
    dt: f64,
    u0: &[f64],
    v0: &[f64],
    n_steps: usize,
    cfg: &DistributedConfig,
    sources: &[Source],
    endpoints: Vec<Box<dyn Transport>>,
) -> (Vec<RankRun>, Vec<RankRecording>) {
    let (outcomes, _plans, recordings) = run_endpoints_with_plans(
        op, setup, partition, dt, u0, v0, n_steps, cfg, sources, endpoints,
    );
    (outcomes, recordings)
}

#[allow(clippy::too_many_arguments)]
fn run_endpoints_with_plans<O: Operator + DofTopology + Sync>(
    op: &O,
    setup: &LtsSetup,
    partition: &[u32],
    dt: f64,
    u0: &[f64],
    v0: &[f64],
    n_steps: usize,
    cfg: &DistributedConfig,
    sources: &[Source],
    endpoints: Vec<Box<dyn Transport>>,
) -> (Vec<RankRun>, Vec<RankPlan>, Vec<RankRecording>) {
    let endpoints = apply_fault_plan(endpoints, cfg.fault);
    let n_ranks = endpoints.len();
    let plans = build_plans(op, setup, partition, n_ranks);
    let ndof = Operator::ndof(op);
    assert_eq!(u0.len(), ndof);
    let monitor = cfg
        .stall_monitor
        .map(|mc| StallMonitor::new(mc, n_ranks, setup.n_levels));
    // one epoch across the rank group, so the recordings share a time axis
    let epoch = Instant::now();

    type Joined = (RankRun, RankRecording);
    let (mut outcomes, recordings): (Vec<RankRun>, Vec<RankRecording>) =
        std::thread::scope(|scope| {
            let mut handles: Vec<std::thread::ScopedJoinHandle<Joined>> = Vec::new();
            for (rank, transport) in endpoints.into_iter().enumerate() {
                let plan = &plans[rank];
                let cfg = *cfg;
                let mon = monitor.clone();
                handles.push(scope.spawn(move || {
                    let levels = setup.n_levels;
                    let mut my_sources: Vec<Vec<(usize, u32)>> = vec![Vec::new(); levels];
                    for (si, src) in sources.iter().enumerate() {
                        let d = src.dof;
                        if plan.my_dofs.binary_search(&d).is_ok() {
                            my_sources[setup.leaf_level[d as usize] as usize].push((si, d));
                        }
                    }
                    let ctx = RankCtx {
                        rank,
                        op,
                        n_levels: levels,
                        dof_level: &setup.dof_level,
                        plan,
                        sources,
                        my_sources,
                        dt,
                        u: u0.to_vec(),
                        v: v0.to_vec(),
                        uts: vec![vec![0.0; ndof]; levels],
                        vts: vec![vec![0.0; ndof]; levels],
                        fs: vec![vec![0.0; ndof]; levels],
                        transport,
                        gone: vec![false; n_ranks],
                        inbox: vec![VecDeque::new(); n_ranks],
                        send_seq: vec![0; n_ranks],
                        flight: FlightRecorder::with_epoch(cfg.flight_capacity, epoch),
                        send_buf: Vec::new(),
                        pending: Vec::new(),
                        cursors: Vec::new(),
                        pool: Vec::new(),
                        reg: MetricsRegistry::new(),
                        timeline: Vec::new(),
                        monitor: mon.map(|s| RankMonitor::new(s, rank)),
                        cfg,
                        ws: Workspace::new(),
                        step_idx: 0,
                        busy_since: Instant::now(),
                    };
                    run_rank_loop(ctx, n_steps)
                }));
            }
            // join everyone before propagating: a failed rank's endpoint
            // closes, which unblocks any peer still waiting in recv
            // (goodbye cascade)
            let mut runs = Vec::with_capacity(n_ranks);
            let mut recs = Vec::with_capacity(n_ranks);
            for (rank, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok((run, rec)) => {
                        runs.push(run);
                        recs.push(rec);
                    }
                    Err(_) => {
                        runs.push(Err(RuntimeError::RankPanicked { rank }));
                        recs.push(RankRecording {
                            rank: rank as u32,
                            dropped: 0,
                            events: Vec::new(),
                        });
                    }
                }
            }
            (runs, recs)
        });
    stamp_lambda_gauges(
        monitor.as_deref(),
        outcomes
            .iter_mut()
            .filter_map(|o| o.as_mut().ok().map(|(_, _, st)| &mut st.registry)),
    );
    (outcomes, plans, recordings)
}

/// Run ONE rank of a globally-replicated distributed run on an
/// already-connected endpoint — the building block of the multi-process
/// runner: `wave-lts worker` rebuilds its mesh and exchange plan
/// deterministically, dials the coordinator, and calls this with the
/// resulting [`crate::transport::socket::SocketTransport`].
///
/// The online stall monitor needs shared-memory aggregation across ranks,
/// so it is not run here regardless of `cfg.stall_monitor`; the
/// deterministic counters and busy/wait histograms are recorded as usual.
#[allow(clippy::too_many_arguments)]
pub fn run_rank_endpoint<O: Operator>(
    op: &O,
    setup: &LtsSetup,
    plan: &RankPlan,
    rank: usize,
    dt: f64,
    u0: &[f64],
    v0: &[f64],
    n_steps: usize,
    cfg: &DistributedConfig,
    sources: &[Source],
    transport: Box<dyn Transport>,
) -> RankRun {
    run_rank_endpoint_recorded(
        op, setup, plan, rank, dt, u0, v0, n_steps, cfg, sources, transport,
    )
    .0
}

/// [`run_rank_endpoint`] plus this rank's flight recording, returned on
/// success *and* failure — what `wave-lts worker` ships back to the
/// coordinator as a [`crate::transport::codec::Frame::Flight`] so
/// multi-process post-mortems causally align with in-process ones. The
/// recorder gets its own epoch here (one per OS process); the causal merge
/// never compares raw timestamps across ranks.
#[allow(clippy::too_many_arguments)]
pub fn run_rank_endpoint_recorded<O: Operator>(
    op: &O,
    setup: &LtsSetup,
    plan: &RankPlan,
    rank: usize,
    dt: f64,
    u0: &[f64],
    v0: &[f64],
    n_steps: usize,
    cfg: &DistributedConfig,
    sources: &[Source],
    transport: Box<dyn Transport>,
) -> (RankRun, RankRecording) {
    let n_ranks = transport.n_ranks();
    let ndof = u0.len();
    let levels = setup.n_levels;
    let mut my_sources: Vec<Vec<(usize, u32)>> = vec![Vec::new(); levels];
    for (si, src) in sources.iter().enumerate() {
        if plan.my_dofs.binary_search(&src.dof).is_ok() {
            my_sources[setup.leaf_level[src.dof as usize] as usize].push((si, src.dof));
        }
    }
    let ctx = RankCtx {
        rank,
        op,
        n_levels: levels,
        dof_level: &setup.dof_level,
        plan,
        sources,
        my_sources,
        dt,
        u: u0.to_vec(),
        v: v0.to_vec(),
        uts: vec![vec![0.0; ndof]; levels],
        vts: vec![vec![0.0; ndof]; levels],
        fs: vec![vec![0.0; ndof]; levels],
        transport,
        gone: vec![false; n_ranks],
        inbox: vec![VecDeque::new(); n_ranks],
        send_seq: vec![0; n_ranks],
        flight: FlightRecorder::new(cfg.flight_capacity),
        send_buf: Vec::new(),
        pending: Vec::new(),
        cursors: Vec::new(),
        pool: Vec::new(),
        reg: MetricsRegistry::new(),
        timeline: Vec::new(),
        monitor: None,
        cfg: *cfg,
        ws: Workspace::new(),
        step_idx: 0,
        busy_since: Instant::now(),
    };
    run_rank_loop(ctx, n_steps)
}

/// One rank's complete owned world for the distributed-memory runner
/// (see [`crate::local`]): a private operator, plan and state in rank-local
/// numbering.
pub struct LocalRank<O: Operator> {
    pub op: O,
    pub n_levels: usize,
    pub dof_level: Vec<u8>,
    pub leaf_level: Vec<u8>,
    pub plan: RankPlan,
    pub u: Vec<f64>,
    pub v: Vec<f64>,
    /// Per leaf level: (source index, rank-local DOF).
    pub my_sources: Vec<Vec<(usize, u32)>>,
    /// Global DOF id of each local DOF (for final assembly).
    pub global_of_local: Vec<u32>,
}

/// Spawn one thread per pre-built [`LocalRank`] world and run `n_steps` over
/// the configured transport backend. Returns each rank's final
/// `(u, v, global_of_local)` plus statistics.
pub fn run_rank_contexts<O: Operator + Send>(
    ranks: Vec<LocalRank<O>>,
    dt: f64,
    n_steps: usize,
    cfg: &DistributedConfig,
    sources: &[Source],
) -> Result<(Vec<RankResult>, Vec<RankStats>), RuntimeError> {
    let (outcomes, _recordings) = run_rank_contexts_recorded(ranks, dt, n_steps, cfg, sources);
    let mut flat_results: Vec<RankResult> = Vec::with_capacity(outcomes.len());
    let mut flat_stats: Vec<RankStats> = Vec::with_capacity(outcomes.len());
    // lowest failed rank wins, matching the pre-recorder behaviour
    for o in outcomes {
        let (res, st) = o?;
        flat_results.push(res);
        flat_stats.push(st);
    }
    Ok((flat_results, flat_stats))
}

/// One rank's outcome from [`run_rank_contexts_recorded`].
pub type RankContextRun = Result<(RankResult, RankStats), RuntimeError>;

/// [`run_rank_contexts`] returning **each rank's own outcome** plus its
/// flight recording — on failure the recordings are exactly the material a
/// crash report needs, and the λ gauges are already stamped into every
/// surviving rank's registry.
pub fn run_rank_contexts_recorded<O: Operator + Send>(
    ranks: Vec<LocalRank<O>>,
    dt: f64,
    n_steps: usize,
    cfg: &DistributedConfig,
    sources: &[Source],
) -> (Vec<RankContextRun>, Vec<RankRecording>) {
    let n_ranks = ranks.len();
    let monitor = cfg.stall_monitor.map(|mc| {
        let n_levels = ranks.first().map_or(1, |r| r.n_levels);
        StallMonitor::new(mc, n_ranks, n_levels)
    });
    let endpoints = apply_fault_plan(transport::make_cluster(cfg.transport, n_ranks), cfg.fault);
    let epoch = Instant::now();
    type Joined = (
        Result<(Vec<f64>, Vec<f64>, Vec<u32>, RankStats), RuntimeError>,
        RankRecording,
    );
    let (mut outcomes, recordings): (Vec<_>, Vec<RankRecording>) = std::thread::scope(|scope| {
        let mut handles: Vec<std::thread::ScopedJoinHandle<Joined>> = Vec::new();
        for ((rank, world), transport) in ranks.into_iter().enumerate().zip(endpoints) {
            let cfg = *cfg;
            let mon = monitor.clone();
            handles.push(scope.spawn(move || {
                let LocalRank {
                    op,
                    n_levels,
                    dof_level,
                    leaf_level: _,
                    plan,
                    u,
                    v,
                    my_sources,
                    global_of_local,
                } = world;
                let ndof = u.len();
                let ctx = RankCtx {
                    rank,
                    op: &op,
                    n_levels,
                    dof_level: &dof_level,
                    plan: &plan,
                    sources,
                    my_sources,
                    dt,
                    u,
                    v,
                    uts: vec![vec![0.0; ndof]; n_levels],
                    vts: vec![vec![0.0; ndof]; n_levels],
                    fs: vec![vec![0.0; ndof]; n_levels],
                    transport,
                    gone: vec![false; n_ranks],
                    inbox: vec![VecDeque::new(); n_ranks],
                    send_seq: vec![0; n_ranks],
                    flight: FlightRecorder::with_epoch(cfg.flight_capacity, epoch),
                    send_buf: Vec::new(),
                    pending: Vec::new(),
                    cursors: Vec::new(),
                    pool: Vec::new(),
                    reg: MetricsRegistry::new(),
                    timeline: Vec::new(),
                    monitor: mon.map(|s| RankMonitor::new(s, rank)),
                    cfg,
                    ws: Workspace::new(),
                    step_idx: 0,
                    busy_since: Instant::now(),
                };
                let (run, rec) = run_rank_loop(ctx, n_steps);
                (run.map(|(u, v, st)| (u, v, global_of_local, st)), rec)
            }));
        }
        let mut runs = Vec::with_capacity(n_ranks);
        let mut recs = Vec::with_capacity(n_ranks);
        for (rank, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok((run, rec)) => {
                    runs.push(run);
                    recs.push(rec);
                }
                Err(_) => {
                    runs.push(Err(RuntimeError::RankPanicked { rank }));
                    recs.push(RankRecording {
                        rank: rank as u32,
                        dropped: 0,
                        events: Vec::new(),
                    });
                }
            }
        }
        (runs, recs)
    });
    stamp_lambda_gauges(
        monitor.as_deref(),
        outcomes
            .iter_mut()
            .filter_map(|o| o.as_mut().ok().map(|(_, _, _, st)| &mut st.registry)),
    );
    let outcomes = outcomes
        .into_iter()
        .map(|o| o.map(|(u, v, map, st)| ((u, v, map), st)))
        .collect();
    (outcomes, recordings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lts_core::{Chain1d, LtsNewmark, LtsSetup};

    fn serial(
        c: &Chain1d,
        setup: &LtsSetup,
        dt: f64,
        u0: &[f64],
        steps: usize,
    ) -> (Vec<f64>, Vec<f64>) {
        let mut u = u0.to_vec();
        let mut v = vec![0.0; u0.len()];
        let mut lts = LtsNewmark::new(c, setup, dt);
        lts.run(&mut u, &mut v, 0.0, steps, &[]);
        (u, v)
    }

    fn gaussian(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (-((i as f64 - n as f64 / 2.5) / 2.0).powi(2)).exp())
            .collect()
    }

    #[test]
    fn two_ranks_match_serial_single_level() {
        let c = Chain1d::uniform(16, 1.0, 1.0);
        let setup = LtsSetup::new(&c, &[0u8; 16]);
        let u0 = gaussian(17);
        let (us, vs) = serial(&c, &setup, 0.5, &u0, 30);
        let part: Vec<u32> = (0..16).map(|e| u32::from(e >= 8)).collect();
        let cfg = DistributedConfig::new(2);
        let (ud, vd, stats) =
            run_distributed(&c, &setup, &part, 0.5, &u0, &[0.0; 17], 30, &cfg).unwrap();
        for i in 0..17 {
            assert_eq!(us[i], ud[i], "u[{i}]");
            assert_eq!(vs[i], vd[i], "v[{i}]");
        }
        assert_eq!(stats.len(), 2);
        assert!(stats[0].n_exchanges > 0);
    }

    #[test]
    fn four_ranks_match_serial_three_levels() {
        let mut vel = vec![1.0; 24];
        for (i, vx) in vel.iter_mut().enumerate() {
            if i >= 20 {
                *vx = 4.0;
            } else if i >= 17 {
                *vx = 2.0;
            }
        }
        let c = Chain1d::with_velocities(vel, 1.0);
        let (lv, dt) = c.assign_levels(0.5, 3);
        let setup = LtsSetup::new(&c, &lv);
        assert_eq!(setup.n_levels, 3);
        let u0 = gaussian(25);
        let (us, _) = serial(&c, &setup, dt, &u0, 20);
        let part: Vec<u32> = (0..24).map(|e| (e / 6) as u32).collect();
        let cfg = DistributedConfig::new(4);
        let (ud, _, _) = run_distributed(&c, &setup, &part, dt, &u0, &[0.0; 25], 20, &cfg).unwrap();
        for i in 0..25 {
            assert!(
                (us[i] - ud[i]).abs() < 1e-13,
                "u[{i}]: serial {} vs distributed {}",
                us[i],
                ud[i]
            );
        }
    }

    #[test]
    fn scrambled_partition_still_exact() {
        let mut vel = vec![1.0; 12];
        for v in vel.iter_mut().skip(8) {
            *v = 2.0;
        }
        let c = Chain1d::with_velocities(vel, 1.0);
        let (lv, dt) = c.assign_levels(0.5, 2);
        let setup = LtsSetup::new(&c, &lv);
        let u0 = gaussian(13);
        let (us, _) = serial(&c, &setup, dt, &u0, 15);
        // interleaved ownership → many interfaces
        let part: Vec<u32> = (0..12).map(|e| (e % 3) as u32).collect();
        let cfg = DistributedConfig::new(3);
        let (ud, _, _) = run_distributed(&c, &setup, &part, dt, &u0, &[0.0; 13], 15, &cfg).unwrap();
        for i in 0..13 {
            assert!((us[i] - ud[i]).abs() < 1e-13, "u[{i}]");
        }
    }

    #[test]
    fn single_rank_matches_serial() {
        let c = Chain1d::uniform(8, 1.0, 1.0);
        let setup = LtsSetup::new(&c, &[0u8; 8]);
        let u0 = gaussian(9);
        let (us, _) = serial(&c, &setup, 0.5, &u0, 10);
        let cfg = DistributedConfig::new(1);
        let (ud, _, stats) =
            run_distributed(&c, &setup, &[0; 8], 0.5, &u0, &[0.0; 9], 10, &cfg).unwrap();
        assert_eq!(us, ud);
        assert_eq!(stats[0].n_exchanges, 0);
    }

    /// The unified boundary-first force path makes overlap a pure *send
    /// placement* choice: fields must agree bit-for-bit, not just to
    /// round-off, and the deterministic counters must be identical.
    #[test]
    fn overlap_matches_blocking_bitwise() {
        let mut vel = vec![1.0; 24];
        for (i, vx) in vel.iter_mut().enumerate() {
            if i >= 20 {
                *vx = 4.0;
            } else if i >= 17 {
                *vx = 2.0;
            }
        }
        let c = Chain1d::with_velocities(vel, 1.0);
        let (lv, dt) = c.assign_levels(0.5, 3);
        let setup = LtsSetup::new(&c, &lv);
        let u0 = gaussian(25);
        let part: Vec<u32> = (0..24).map(|e| (e / 8) as u32).collect();
        let blocking = DistributedConfig::new(3);
        let overlapped = DistributedConfig {
            overlap: true,
            ..blocking
        };
        let (ub, vb, sb) =
            run_distributed(&c, &setup, &part, dt, &u0, &[0.0; 25], 20, &blocking).unwrap();
        let (uo, vo, so) =
            run_distributed(&c, &setup, &part, dt, &u0, &[0.0; 25], 20, &overlapped).unwrap();
        for i in 0..25 {
            assert_eq!(ub[i].to_bits(), uo[i].to_bits(), "u[{i}]");
            assert_eq!(vb[i].to_bits(), vo[i].to_bits(), "v[{i}]");
        }
        for (b, o) in sb.iter().zip(&so) {
            assert_eq!(b.elem_ops, o.elem_ops);
            assert_eq!(b.n_exchanges, o.n_exchanges);
            assert_eq!(b.msgs_sent, o.msgs_sent);
            assert_eq!(b.dofs_sent, o.dofs_sent);
        }
    }

    /// Pluggable means interchangeable: every backend must produce the same
    /// field bits and the same deterministic counters as the channel
    /// reference, in both communication modes.
    #[test]
    fn every_transport_matches_channel_bitwise() {
        let mut vel = vec![1.0; 12];
        for v in vel.iter_mut().skip(8) {
            *v = 2.0;
        }
        let c = Chain1d::with_velocities(vel, 1.0);
        let (lv, dt) = c.assign_levels(0.5, 2);
        let setup = LtsSetup::new(&c, &lv);
        let u0 = gaussian(13);
        let part: Vec<u32> = (0..12).map(|e| (e % 3) as u32).collect();
        for overlap in [false, true] {
            let base = DistributedConfig {
                overlap,
                ..DistributedConfig::new(3)
            };
            let (uc, vc, sc) =
                run_distributed(&c, &setup, &part, dt, &u0, &[0.0; 13], 15, &base).unwrap();
            for kind in [TransportKind::SharedRing, TransportKind::UnixSocket] {
                let cfg = DistributedConfig {
                    transport: kind,
                    ..base
                };
                let (u, v, st) =
                    run_distributed(&c, &setup, &part, dt, &u0, &[0.0; 13], 15, &cfg).unwrap();
                for i in 0..13 {
                    assert_eq!(uc[i].to_bits(), u[i].to_bits(), "{kind:?} u[{i}]");
                    assert_eq!(vc[i].to_bits(), v[i].to_bits(), "{kind:?} v[{i}]");
                }
                for (a, b) in sc.iter().zip(&st) {
                    assert_eq!(a.elem_ops, b.elem_ops, "{kind:?}");
                    assert_eq!(a.n_exchanges, b.n_exchanges, "{kind:?}");
                    assert_eq!(a.msgs_sent, b.msgs_sent, "{kind:?}");
                    assert_eq!(a.dofs_sent, b.dofs_sent, "{kind:?}");
                }
            }
        }
    }

    #[test]
    fn overlap_covers_all_elements() {
        let c = Chain1d::uniform(12, 1.0, 1.0);
        let setup = LtsSetup::new(&c, &[0u8; 12]);
        let part: Vec<u32> = (0..12).map(|e| u32::from(e >= 6)).collect();
        let plans = crate::exchange::build_plans(&c, &setup, &part, 2);
        for p in &plans {
            for l in 0..setup.n_levels {
                let mut all = p.my_boundary_elems[l].clone();
                all.extend_from_slice(&p.my_interior_elems[l]);
                all.sort_unstable();
                let mut expect = p.my_elems[l].clone();
                expect.sort_unstable();
                assert_eq!(all, expect);
            }
        }
    }

    #[test]
    fn imbalanced_partition_shows_stall() {
        // Fig. 1 scenario: all fine elements on one rank; with amplified
        // work, the coarse-only rank must wait.
        let mut vel = vec![1.0; 16];
        for v in vel.iter_mut().skip(12) {
            *v = 2.0;
        }
        let c = Chain1d::with_velocities(vel, 1.0);
        let (lv, dt) = c.assign_levels(0.5, 2);
        let setup = LtsSetup::new(&c, &lv);
        let part: Vec<u32> = (0..16).map(|e| u32::from(e >= 8)).collect(); // rank 1 has all fine
        let cfg = DistributedConfig {
            record_timeline: true,
            work_amplify: 20_000,
            ..DistributedConfig::new(2)
        };
        let u0 = gaussian(17);
        let (_, _, stats) =
            run_distributed(&c, &setup, &part, dt, &u0, &[0.0; 17], 50, &cfg).unwrap();
        // rank 0 (coarse only) waits more than rank 1
        assert!(
            stats[0].wait_s > stats[1].wait_s,
            "rank0 wait {} vs rank1 wait {}",
            stats[0].wait_s,
            stats[1].wait_s
        );
        assert!(!stats[0].timeline.is_empty());
    }

    #[test]
    fn monitor_lambda_matches_posthoc_eq21_and_warns() {
        use crate::stats::lambda_from_stats;
        // uniform mesh, even partition — then skew all amplified work onto
        // rank 1 so rank 0 stalls and the online monitor must notice.
        let c = Chain1d::uniform(16, 1.0, 1.0);
        let setup = LtsSetup::new(&c, &[0u8; 16]);
        let part: Vec<u32> = (0..16).map(|e| u32::from(e >= 8)).collect();
        let cfg = DistributedConfig {
            record_timeline: true,
            work_amplify: 60_000,
            amplify_rank: Some(1),
            stall_monitor: Some(MonitorConfig {
                window_exchanges: 4,
                wait_warn_fraction: 0.5,
                log_warnings: false,
            }),
            ..DistributedConfig::new(2)
        };
        let u0 = gaussian(17);
        let (_, _, stats) =
            run_distributed(&c, &setup, &part, 0.5, &u0, &[0.0; 17], 60, &cfg).unwrap();
        let posthoc = lambda_from_stats(&stats);
        assert!(!posthoc.is_empty());
        for &(l, lam) in &posthoc {
            // the online monitor accumulates the same per-exchange busy
            // durations in integer nanoseconds; after the post-join stamp the
            // gauge must agree with the post-hoc Eq. 21 value
            for st in &stats {
                let gauge = st
                    .registry
                    .gauge(names::STALL_LAMBDA, Some(l))
                    .expect("final lambda gauge stamped on every rank");
                assert!(
                    (gauge - lam).abs() < 1e-3,
                    "level {l}: monitor lambda {gauge} vs post-hoc {lam}"
                );
                let wm = st
                    .registry
                    .gauge(names::STALL_LAMBDA_WM, Some(l))
                    .expect("lambda watermark stamped");
                assert!(wm + 1e-12 >= gauge, "watermark {wm} below final {gauge}");
            }
        }
        // rank 0 idles ≥ threshold → exactly the stalled rank warns
        let warned_0 = stats[0].registry.counter_total(names::STALL_WARNINGS);
        let warned_1 = stats[1].registry.counter_total(names::STALL_WARNINGS);
        assert!(warned_0 >= 1, "stalled rank 0 must raise a warning");
        assert_eq!(warned_1, 0, "busy rank must not warn");
        let wf = stats[0]
            .registry
            .gauge(names::STALL_WAIT_FRAC_WM, Some(0))
            .expect("wait-fraction watermark recorded");
        assert!(wf >= 0.5, "windowed wait fraction {wf} below threshold");
    }

    /// The tentpole's neutrality contract: recorder on vs. off must produce
    /// bitwise-identical fields and exactly identical deterministic
    /// counters — recording is observation, never perturbation.
    #[test]
    fn recorder_on_off_is_bitwise_neutral() {
        let mut vel = vec![1.0; 24];
        for (i, vx) in vel.iter_mut().enumerate() {
            if i >= 20 {
                *vx = 4.0;
            } else if i >= 17 {
                *vx = 2.0;
            }
        }
        let c = Chain1d::with_velocities(vel, 1.0);
        let (lv, dt) = c.assign_levels(0.5, 3);
        let setup = LtsSetup::new(&c, &lv);
        let u0 = gaussian(25);
        let part: Vec<u32> = (0..24).map(|e| (e / 6) as u32).collect();
        let on = DistributedConfig {
            flight_capacity: 512,
            ..DistributedConfig::new(4)
        };
        let off = DistributedConfig {
            flight_capacity: 0,
            ..on
        };
        let (u1, v1, s1) =
            run_distributed(&c, &setup, &part, dt, &u0, &[0.0; 25], 20, &on).unwrap();
        let (u0r, v0r, s0) =
            run_distributed(&c, &setup, &part, dt, &u0, &[0.0; 25], 20, &off).unwrap();
        for i in 0..25 {
            assert_eq!(u1[i].to_bits(), u0r[i].to_bits(), "u[{i}]");
            assert_eq!(v1[i].to_bits(), v0r[i].to_bits(), "v[{i}]");
        }
        for (a, b) in s1.iter().zip(&s0) {
            assert_eq!(a.elem_ops, b.elem_ops);
            assert_eq!(a.n_exchanges, b.n_exchanges);
            assert_eq!(a.msgs_sent, b.msgs_sent);
            assert_eq!(a.dofs_sent, b.dofs_sent);
        }
    }

    /// A configured fault yields errors *and* recordings on every rank, and
    /// the recordings merge into a causally valid order with the victim's
    /// terminal fault event present.
    #[test]
    fn config_fault_produces_mergeable_recordings() {
        use crate::transport::faulty::FaultPlan;
        use lts_obs::merge_recordings;
        let mut vel = vec![1.0; 12];
        for v in vel.iter_mut().skip(8) {
            *v = 2.0;
        }
        let c = Chain1d::with_velocities(vel, 1.0);
        let (lv, dt) = c.assign_levels(0.5, 2);
        let setup = LtsSetup::new(&c, &lv);
        let u0 = gaussian(13);
        let part: Vec<u32> = (0..12).map(|e| (e % 3) as u32).collect();
        let cfg = DistributedConfig {
            flight_capacity: 1024,
            fault: Some((
                1,
                FaultPlan {
                    die_on_send_at_level: Some(1),
                    ..FaultPlan::default()
                },
            )),
            ..DistributedConfig::new(3)
        };
        let endpoints = transport::make_cluster(cfg.transport, 3);
        let (outcomes, recs) = run_distributed_endpoints_recorded(
            &c,
            &setup,
            &part,
            dt,
            &u0,
            &[0.0; 13],
            15,
            &cfg,
            &[],
            endpoints,
        );
        for (rank, o) in outcomes.iter().enumerate() {
            assert!(o.is_err(), "rank {rank} should fail after the cascade");
        }
        assert_eq!(recs.len(), 3);
        assert!(recs
            .iter()
            .any(|r| r.events.iter().any(|e| e.kind == EventKind::Fault)));
        let merged = merge_recordings(&recs).expect("faulted recordings still merge");
        assert!(!merged.is_empty());
    }

    /// Transport accounting rides along as backend-labelled gauges.
    #[test]
    fn transport_gauges_are_stamped() {
        let c = Chain1d::uniform(8, 1.0, 1.0);
        let setup = LtsSetup::new(&c, &[0u8; 8]);
        let u0 = gaussian(9);
        let part: Vec<u32> = (0..8).map(|e| u32::from(e >= 4)).collect();
        let cfg = DistributedConfig {
            transport: TransportKind::SharedRing,
            ..DistributedConfig::new(2)
        };
        let (_, _, stats) =
            run_distributed(&c, &setup, &part, 0.5, &u0, &[0.0; 9], 5, &cfg).unwrap();
        for st in &stats {
            let msgs = st
                .registry
                .gauge_labeled(names::TRANSPORT_MSGS, "shm-ring")
                .expect("transport msgs gauge");
            assert_eq!(msgs as u64, st.msgs_sent);
            assert!(st
                .registry
                .gauge_labeled(names::TRANSPORT_SEND_BLOCK_S, "shm-ring")
                .is_some());
        }
    }
}
