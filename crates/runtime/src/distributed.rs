//! The distributed LTS-Newmark stepper: one thread per rank, assembly
//! exchanges after every masked product, redundant (consistent) updates of
//! interface DOFs.
//!
//! Mirrors [`lts_core::LtsNewmark`]'s recursion exactly; the integration
//! tests assert agreement with the serial stepper to round-off.

use crate::error::RuntimeError;

/// What a distributed run returns: final `(u, v)` and per-rank stats, or
/// the first rank failure.
pub type RunResult = Result<(Vec<f64>, Vec<f64>, Vec<RankStats>), RuntimeError>;
use crate::exchange::{build_plans, RankPlan};
use crate::monitor::{MonitorConfig, RankMonitor, StallMonitor};
use crate::stats::{names, RankStats, TimelineEvent};
use crossbeam::channel::{unbounded, Receiver, Sender};
use lts_core::{DofTopology, LtsSetup, Operator, Source, Workspace};
use lts_obs::MetricsRegistry;
use std::collections::VecDeque;
use std::time::Instant;

/// Runtime configuration.
#[derive(Debug, Clone, Copy)]
pub struct DistributedConfig {
    pub n_ranks: usize,
    /// Record a fine-grained per-exchange timeline (Fig. 1).
    pub record_timeline: bool,
    /// Artificial extra work per element-operation (spin iterations) — makes
    /// load imbalance visible on problems too small to measure otherwise.
    pub work_amplify: u32,
    /// Restrict `work_amplify` to one rank: deterministic skew for stall
    /// experiments. `None` amplifies every rank.
    pub amplify_rank: Option<usize>,
    /// Overlap communication with computation (the SPECFEM3D pattern the
    /// paper uses): compute boundary-element contributions, post the sends,
    /// compute interior elements while messages fly, then assemble.
    pub overlap: bool,
    /// Run the online stall/imbalance monitor (see [`crate::monitor`]).
    pub stall_monitor: Option<MonitorConfig>,
    /// Intra-rank worker threads for the masked products (1 = serial). The
    /// coloured scatter keeps results bitwise identical to serial at any
    /// value, so counters and fields are unaffected.
    pub threads_per_rank: usize,
}

impl DistributedConfig {
    pub fn new(n_ranks: usize) -> Self {
        DistributedConfig {
            n_ranks,
            record_timeline: false,
            work_amplify: 0,
            amplify_rank: None,
            overlap: false,
            stall_monitor: None,
            threads_per_rank: 1,
        }
    }
}

type Msg = (usize, Vec<f64>);

/// One rank's run result: `(u_local, v_local, global_of_local)`.
pub type RankResult = (Vec<f64>, Vec<f64>, Vec<u32>);

/// Per-rank thread outcome before reordering: `(rank, u, v, map, stats)`.
type RankOutcome = (usize, Vec<f64>, Vec<f64>, Vec<u32>, RankStats);

/// A rank's assembled state before the ownership merge: `(u, v, stats)`.
type RankState = (Vec<f64>, Vec<f64>, RankStats);

struct RankCtx<'a, O: Operator> {
    rank: usize,
    op: &'a O,
    n_levels: usize,
    dof_level: &'a [u8],
    plan: &'a RankPlan,
    sources: &'a [Source],
    /// per leaf level: (index into `sources`, DOF in this rank's numbering)
    my_sources: Vec<Vec<(usize, u32)>>,
    dt: f64,
    u: Vec<f64>,
    v: Vec<f64>,
    uts: Vec<Vec<f64>>,
    vts: Vec<Vec<f64>>,
    fs: Vec<Vec<f64>>,
    tx: Vec<Sender<Msg>>,
    rx: Receiver<Msg>,
    inbox: Vec<VecDeque<Vec<f64>>>,
    /// Per-rank metrics; merged into [`RankStats`] views after the join.
    reg: MetricsRegistry,
    timeline: Vec<TimelineEvent>,
    monitor: Option<RankMonitor>,
    cfg: DistributedConfig,
    /// Operator scratch + compiled gather lists, reused across all steps.
    ws: Workspace,
    step_idx: u32,
    busy_since: Instant,
}

impl<'a, O: Operator> RankCtx<'a, O> {
    fn amplify(&self, n_elems: usize) {
        if self.cfg.work_amplify > 0 && self.cfg.amplify_rank.is_none_or(|r| r == self.rank) {
            let iters = self.cfg.work_amplify as u64 * n_elems as u64;
            let mut x = 0u64;
            for i in 0..iters {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            std::hint::black_box(x);
        }
    }

    /// Apply the masked product over this rank's elements, amplify work,
    /// then assemble totals on shared DOFs.
    ///
    /// With `cfg.overlap` the SPECFEM3D asynchronous pattern is used:
    /// boundary-element contributions are computed first (interface partials
    /// are then complete, since interior elements by definition touch no
    /// shared DOF), the sends are posted, interior elements are computed
    /// while the messages are in flight, and only then are peers awaited.
    fn force_level(&mut self, l: usize, state_is_u: bool) -> Result<(), RuntimeError> {
        // zero my entries
        for &i in &self.plan.my_zero[l] {
            self.fs[l][i as usize] = 0.0;
        }
        if self.cfg.overlap && !self.plan.peers[l].is_empty() {
            {
                let state = if state_is_u { &self.u } else { &self.uts[l] };
                self.op.apply_masked_threads(
                    state,
                    &mut self.fs[l],
                    &self.plan.my_boundary_elems[l],
                    self.dof_level,
                    l as u8,
                    &mut self.ws,
                    self.cfg.threads_per_rank,
                );
            }
            self.amplify(self.plan.my_boundary_elems[l].len());
            self.send_partials(l)?;
            {
                let state = if state_is_u { &self.u } else { &self.uts[l] };
                self.op.apply_masked_threads(
                    state,
                    &mut self.fs[l],
                    &self.plan.my_interior_elems[l],
                    self.dof_level,
                    l as u8,
                    &mut self.ws,
                    self.cfg.threads_per_rank,
                );
            }
            self.amplify(self.plan.my_interior_elems[l].len());
            self.reg
                .inc_level(names::ELEM_OPS, l as u8, self.plan.my_elems[l].len() as u64);
            self.recv_and_assemble(l)?;
        } else {
            {
                let state = if state_is_u { &self.u } else { &self.uts[l] };
                self.op.apply_masked_threads(
                    state,
                    &mut self.fs[l],
                    &self.plan.my_elems[l],
                    self.dof_level,
                    l as u8,
                    &mut self.ws,
                    self.cfg.threads_per_rank,
                );
            }
            self.reg
                .inc_level(names::ELEM_OPS, l as u8, self.plan.my_elems[l].len() as u64);
            self.amplify(self.plan.my_elems[l].len());
            if !self.plan.peers[l].is_empty() {
                self.send_partials(l)?;
                self.recv_and_assemble(l)?;
            }
        }
        Ok(())
    }

    fn send_partials(&mut self, l: usize) -> Result<(), RuntimeError> {
        let mut dofs_sent = 0u64;
        for (pi, &peer) in self.plan.peers[l].iter().enumerate() {
            let payload: Vec<f64> = self.plan.pair_dofs[l][pi]
                .iter()
                .map(|&d| self.fs[l][d as usize])
                .collect();
            dofs_sent += payload.len() as u64;
            self.tx[peer].send((self.rank, payload)).map_err(|_| {
                RuntimeError::PeerDisconnected {
                    rank: self.rank,
                    peer,
                    level: l,
                }
            })?;
        }
        self.reg
            .inc_level(names::MSGS_SENT, l as u8, self.plan.peers[l].len() as u64);
        self.reg.inc_level(names::DOFS_SENT, l as u8, dofs_sent);
        Ok(())
    }

    fn recv_and_assemble(&mut self, l: usize) -> Result<(), RuntimeError> {
        let busy_s = self.busy_since.elapsed().as_secs_f64();
        self.reg.observe(names::BUSY, Some(l as u8), busy_s);
        // receive one message per peer (FIFO per sender ⇒ correct pairing)
        let wait_start = Instant::now();
        let mut pending: Vec<Option<Vec<f64>>> = vec![None; self.plan.peers[l].len()];
        let mut missing = self.plan.peers[l].len();
        for (pi, &peer) in self.plan.peers[l].iter().enumerate() {
            if let Some(m) = self.inbox[peer].pop_front() {
                pending[pi] = Some(m);
                missing -= 1;
            }
        }
        while missing > 0 {
            let (from, payload) = self.rx.recv().map_err(|_| RuntimeError::ChannelClosed {
                rank: self.rank,
                level: l,
            })?;
            if let Some(pi) = self.plan.peers[l].iter().position(|&p| p == from) {
                if pending[pi].is_none() {
                    pending[pi] = Some(payload);
                    missing -= 1;
                    continue;
                }
            }
            self.inbox[from].push_back(payload);
        }
        // after the loop every slot is filled; re-bind without the Option so
        // the assembly below cannot index a missing message
        let mut msgs: Vec<Vec<f64>> = Vec::with_capacity(pending.len());
        for (pi, p) in pending.into_iter().enumerate() {
            msgs.push(p.ok_or(RuntimeError::NotAPeer {
                rank: self.rank,
                peer: self.plan.peers[l][pi],
                level: l,
            })?);
        }
        let wait_s = wait_start.elapsed().as_secs_f64();
        self.reg.observe(names::WAIT, Some(l as u8), wait_s);
        self.reg.inc_level(names::EXCHANGES, l as u8, 1);
        if let Some(m) = self.monitor.as_mut() {
            m.on_exchange(&mut self.reg, l as u8, busy_s, wait_s);
        }
        if self.cfg.record_timeline {
            self.timeline.push(TimelineEvent {
                level: l as u8,
                step: self.step_idx,
                busy_s,
                wait_s,
                elem_ops: self.reg.counter_total(names::ELEM_OPS),
                dofs_sent: self.reg.counter_total(names::DOFS_SENT),
            });
        }
        // assemble in ascending-rank order for bitwise consistency
        let mut cursors = vec![0usize; msgs.len()];
        for (d, ranks) in &self.plan.shared[l] {
            let mut total = 0.0;
            for &r in ranks {
                if r as usize == self.rank {
                    total += self.fs[l][*d as usize];
                } else {
                    let pi = self.plan.peers[l]
                        .iter()
                        .position(|&p| p == r as usize)
                        .ok_or(RuntimeError::NotAPeer {
                            rank: self.rank,
                            peer: r as usize,
                            level: l,
                        })?;
                    total += msgs[pi][cursors[pi]];
                    cursors[pi] += 1;
                }
            }
            self.fs[l][*d as usize] = total;
        }
        self.busy_since = Instant::now();
        Ok(())
    }

    /// Inject `Δ·F(t)/M` for this rank's sources at `level` into `target`
    /// (`vts[level]` or the global `v`).
    fn inject(&self, level: usize, target: &mut [f64], dt: f64, t: f64, half: f64) {
        for &(si, dof) in &self.my_sources[level] {
            let src = &self.sources[si];
            let d = dof as usize;
            target[d] += half * dt * (src.amplitude)(t) / self.op.mass()[d];
        }
    }

    fn aux_advance(&mut self, l: usize, t0: f64) -> Result<(), RuntimeError> {
        let levels = self.n_levels;
        let dt_l = self.dt / (1u64 << l) as f64;
        let innermost = l == levels - 1;
        for m in 0..2usize {
            let tm = t0 + m as f64 * dt_l;
            self.force_level(l, false)?;
            if innermost {
                for ai in 0..self.plan.my_active[l].len() {
                    let i = self.plan.my_active[l][ai] as usize;
                    let mut f = 0.0;
                    for fj in self.fs[..=l].iter() {
                        f += fj[i];
                    }
                    if m == 0 {
                        self.vts[l][i] = -0.5 * dt_l * f;
                    } else {
                        self.vts[l][i] -= dt_l * f;
                    }
                }
                {
                    let (vts_lo, vts_hi) = self.vts.split_at_mut(l);
                    let _ = vts_lo;
                    let mut tmp = std::mem::take(&mut vts_hi[0]);
                    self.inject(l, &mut tmp, dt_l, tm, if m == 0 { 0.5 } else { 1.0 });
                    self.vts[l] = tmp;
                }
                for ai in 0..self.plan.my_active[l].len() {
                    let i = self.plan.my_active[l][ai] as usize;
                    self.uts[l][i] += dt_l * self.vts[l][i];
                }
            } else {
                {
                    let (cur, rest) = self.uts.split_at_mut(l + 1);
                    let src = &cur[l];
                    let dst = &mut rest[0];
                    for &i in &self.plan.my_active[l + 1] {
                        dst[i as usize] = src[i as usize];
                    }
                }
                self.aux_advance(l + 1, tm)?;
                for ai in 0..self.plan.my_leaf[l].len() {
                    let i = self.plan.my_leaf[l][ai] as usize;
                    let mut f = 0.0;
                    for fj in self.fs[..=l].iter() {
                        f += fj[i];
                    }
                    if m == 0 {
                        self.vts[l][i] = -0.5 * dt_l * f;
                    } else {
                        self.vts[l][i] -= dt_l * f;
                    }
                }
                {
                    let mut tmp = std::mem::take(&mut self.vts[l]);
                    self.inject(l, &mut tmp, dt_l, tm, if m == 0 { 0.5 } else { 1.0 });
                    self.vts[l] = tmp;
                }
                for ai in 0..self.plan.my_active[l + 1].len() {
                    let i = self.plan.my_active[l + 1][ai] as usize;
                    let d = (self.uts[l + 1][i] - self.uts[l][i]) / dt_l;
                    if m == 0 {
                        self.vts[l][i] = d;
                    } else {
                        self.vts[l][i] += 2.0 * d;
                    }
                }
                for ai in 0..self.plan.my_active[l].len() {
                    let i = self.plan.my_active[l][ai] as usize;
                    self.uts[l][i] += dt_l * self.vts[l][i];
                }
            }
        }
        Ok(())
    }

    fn step(&mut self, t: f64) -> Result<(), RuntimeError> {
        let levels = self.n_levels;
        let dt = self.dt;
        self.force_level(0, true)?;
        if levels == 1 {
            for &i in &self.plan.my_dofs {
                let i = i as usize;
                self.v[i] -= dt * self.fs[0][i];
            }
            let mut tmp = std::mem::take(&mut self.v);
            self.inject(0, &mut tmp, dt, t, 1.0);
            self.v = tmp;
            for &i in &self.plan.my_dofs {
                let i = i as usize;
                self.u[i] += dt * self.v[i];
            }
        } else {
            for &i in &self.plan.my_active[1] {
                self.uts[1][i as usize] = self.u[i as usize];
            }
            self.aux_advance(1, t)?;
            for &i in &self.plan.my_active[1] {
                let i = i as usize;
                self.v[i] += 2.0 * (self.uts[1][i] - self.u[i]) / dt;
            }
            for &i in &self.plan.my_leaf[0] {
                let i = i as usize;
                self.v[i] -= dt * self.fs[0][i];
            }
            let mut tmp = std::mem::take(&mut self.v);
            self.inject(0, &mut tmp, dt, t, 1.0);
            self.v = tmp;
            for &i in &self.plan.my_dofs {
                let i = i as usize;
                self.u[i] += dt * self.v[i];
            }
        }
        self.step_idx += 1;
        Ok(())
    }
}

/// Run `n_steps` of distributed LTS-Newmark over `partition`. Returns the
/// assembled global `(u, v)` and per-rank statistics; fails cleanly (no
/// deadlock, no panic) if any rank drops out mid-run.
#[allow(clippy::too_many_arguments)]
pub fn run_distributed<O: Operator + DofTopology + Sync>(
    op: &O,
    setup: &LtsSetup,
    partition: &[u32],
    dt: f64,
    u0: &[f64],
    v0: &[f64],
    n_steps: usize,
    cfg: &DistributedConfig,
) -> RunResult {
    run_distributed_with_sources(op, setup, partition, dt, u0, v0, n_steps, cfg, &[])
}

/// [`run_distributed`] with external point sources; every rank owning a
/// source's DOF injects it identically, so interface DOFs stay consistent.
#[allow(clippy::too_many_arguments)]
pub fn run_distributed_with_sources<O: Operator + DofTopology + Sync>(
    op: &O,
    setup: &LtsSetup,
    partition: &[u32],
    dt: f64,
    u0: &[f64],
    v0: &[f64],
    n_steps: usize,
    cfg: &DistributedConfig,
    sources: &[Source],
) -> RunResult {
    let n_ranks = cfg.n_ranks;
    let plans = build_plans(op, setup, partition, n_ranks);
    let ndof = Operator::ndof(op);
    assert_eq!(u0.len(), ndof);
    let monitor = cfg
        .stall_monitor
        .map(|mc| StallMonitor::new(mc, n_ranks, setup.n_levels));

    let mut senders: Vec<Sender<Msg>> = Vec::with_capacity(n_ranks);
    let mut receivers: Vec<Receiver<Msg>> = Vec::with_capacity(n_ranks);
    for _ in 0..n_ranks {
        let (tx, rx) = unbounded();
        senders.push(tx);
        receivers.push(rx);
    }

    type Joined = Result<(usize, Vec<f64>, Vec<f64>, RankStats), RuntimeError>;
    let results: Result<Vec<_>, RuntimeError> = std::thread::scope(|scope| {
        let mut handles: Vec<std::thread::ScopedJoinHandle<Joined>> = Vec::new();
        for (rank, rx) in receivers.into_iter().enumerate() {
            let tx = senders.clone();
            let plan = &plans[rank];
            let cfg = *cfg;
            let mon = monitor.clone();
            handles.push(scope.spawn(move || {
                let levels = setup.n_levels;
                let mut my_sources: Vec<Vec<(usize, u32)>> = vec![Vec::new(); levels];
                for (si, src) in sources.iter().enumerate() {
                    let d = src.dof;
                    if plan.my_dofs.binary_search(&d).is_ok() {
                        my_sources[setup.leaf_level[d as usize] as usize].push((si, d));
                    }
                }
                let mut ctx = RankCtx {
                    rank,
                    op,
                    n_levels: levels,
                    dof_level: &setup.dof_level,
                    plan,
                    sources,
                    my_sources,
                    dt,
                    u: u0.to_vec(),
                    v: v0.to_vec(),
                    uts: vec![vec![0.0; ndof]; levels],
                    vts: vec![vec![0.0; ndof]; levels],
                    fs: vec![vec![0.0; ndof]; levels],
                    tx,
                    rx,
                    inbox: vec![VecDeque::new(); n_ranks],
                    reg: MetricsRegistry::new(),
                    timeline: Vec::new(),
                    monitor: mon.map(|s| RankMonitor::new(s, rank)),
                    cfg,
                    ws: Workspace::new(),
                    step_idx: 0,
                    busy_since: Instant::now(),
                };
                for step in 0..n_steps {
                    ctx.step(step as f64 * dt)?;
                }
                // busy tail after the last exchange, recorded level-less
                ctx.reg
                    .observe(names::BUSY, None, ctx.busy_since.elapsed().as_secs_f64());
                if let Some(mut m) = ctx.monitor.take() {
                    m.flush_window(&mut ctx.reg);
                }
                Ok((
                    rank,
                    ctx.u,
                    ctx.v,
                    RankStats::from_registry(rank, ctx.reg, ctx.timeline),
                ))
            }));
        }
        // join everyone before propagating: a failed rank drops its senders,
        // which unblocks any peer still waiting in recv
        let mut joined = Vec::with_capacity(handles.len());
        for (rank, h) in handles.into_iter().enumerate() {
            joined.push(
                h.join()
                    .map_err(|_| RuntimeError::RankPanicked { rank })
                    .and_then(|r| r),
            );
        }
        joined.into_iter().collect()
    });
    drop(senders);
    let results = results?;

    // assemble global state from DOF owners (lowest owning rank)
    let mut owner = vec![u32::MAX; ndof];
    for (rank, plan) in plans.iter().enumerate() {
        for &d in &plan.my_dofs {
            owner[d as usize] = owner[d as usize].min(rank as u32);
        }
    }
    let mut u = vec![0.0; ndof];
    let mut v = vec![0.0; ndof];
    let mut stats: Vec<RankStats> = Vec::with_capacity(n_ranks);
    let mut by_rank: Vec<Option<RankState>> = (0..n_ranks).map(|_| None).collect();
    for (rank, ur, vr, st) in results {
        by_rank[rank] = Some((ur, vr, st));
    }
    for (rank, slot) in by_rank.into_iter().enumerate() {
        let (ur, vr, st) = slot.ok_or(RuntimeError::MissingRank { rank })?;
        for d in 0..ndof {
            if owner[d] == rank as u32 {
                u[d] = ur[d];
                v[d] = vr[d];
            }
        }
        stats.push(st);
    }
    stamp_lambda_gauges(monitor.as_deref(), &mut stats);
    Ok((u, v, stats))
}

/// Stamp the monitor's final per-level Eq. 21 λ (and its run-long watermark)
/// into every rank's registry as gauges. Runs after the join, when all busy
/// totals are complete, so [`names::STALL_LAMBDA`] agrees with the post-hoc
/// [`crate::stats::lambda_from_stats`].
fn stamp_lambda_gauges(monitor: Option<&StallMonitor>, stats: &mut [RankStats]) {
    let Some(mon) = monitor else { return };
    let lam = mon.update_lambda_watermarks();
    let wm = mon.lambda_watermarks();
    for st in stats.iter_mut() {
        for l in 0..lam.len() {
            st.registry
                .set_gauge_level(names::STALL_LAMBDA, l as u8, lam[l]);
            st.registry
                .set_gauge_level(names::STALL_LAMBDA_WM, l as u8, wm[l]);
        }
    }
}

/// One rank's complete owned world for the distributed-memory runner
/// (see [`crate::local`]): a private operator, plan and state in rank-local
/// numbering.
pub struct LocalRank<O: Operator> {
    pub op: O,
    pub n_levels: usize,
    pub dof_level: Vec<u8>,
    pub leaf_level: Vec<u8>,
    pub plan: RankPlan,
    pub u: Vec<f64>,
    pub v: Vec<f64>,
    /// Per leaf level: (source index, rank-local DOF).
    pub my_sources: Vec<Vec<(usize, u32)>>,
    /// Global DOF id of each local DOF (for final assembly).
    pub global_of_local: Vec<u32>,
}

/// Spawn one thread per pre-built [`LocalRank`] world and run `n_steps`.
/// Returns each rank's final `(u, v, global_of_local)` plus statistics.
pub fn run_rank_contexts<O: Operator + Send>(
    ranks: Vec<LocalRank<O>>,
    dt: f64,
    n_steps: usize,
    cfg: &DistributedConfig,
    sources: &[Source],
) -> Result<(Vec<RankResult>, Vec<RankStats>), RuntimeError> {
    let n_ranks = ranks.len();
    let monitor = cfg.stall_monitor.map(|mc| {
        let n_levels = ranks.first().map_or(1, |r| r.n_levels);
        StallMonitor::new(mc, n_ranks, n_levels)
    });
    let mut senders: Vec<Sender<Msg>> = Vec::with_capacity(n_ranks);
    let mut receivers: Vec<Receiver<Msg>> = Vec::with_capacity(n_ranks);
    for _ in 0..n_ranks {
        let (tx, rx) = unbounded();
        senders.push(tx);
        receivers.push(rx);
    }
    let outcome: Result<Vec<RankOutcome>, RuntimeError> = std::thread::scope(|scope| {
        let mut handles: Vec<std::thread::ScopedJoinHandle<Result<RankOutcome, RuntimeError>>> =
            Vec::new();
        for ((rank, world), rx) in ranks.into_iter().enumerate().zip(receivers) {
            let tx = senders.clone();
            let cfg = *cfg;
            let mon = monitor.clone();
            handles.push(scope.spawn(move || {
                let LocalRank {
                    op,
                    n_levels,
                    dof_level,
                    leaf_level: _,
                    plan,
                    u,
                    v,
                    my_sources,
                    global_of_local,
                } = world;
                let ndof = u.len();
                let mut ctx = RankCtx {
                    rank,
                    op: &op,
                    n_levels,
                    dof_level: &dof_level,
                    plan: &plan,
                    sources,
                    my_sources,
                    dt,
                    u,
                    v,
                    uts: vec![vec![0.0; ndof]; n_levels],
                    vts: vec![vec![0.0; ndof]; n_levels],
                    fs: vec![vec![0.0; ndof]; n_levels],
                    tx,
                    rx,
                    inbox: vec![VecDeque::new(); n_ranks],
                    reg: MetricsRegistry::new(),
                    timeline: Vec::new(),
                    monitor: mon.map(|s| RankMonitor::new(s, rank)),
                    cfg,
                    ws: Workspace::new(),
                    step_idx: 0,
                    busy_since: Instant::now(),
                };
                for step in 0..n_steps {
                    ctx.step(step as f64 * dt)?;
                }
                ctx.reg
                    .observe(names::BUSY, None, ctx.busy_since.elapsed().as_secs_f64());
                if let Some(mut m) = ctx.monitor.take() {
                    m.flush_window(&mut ctx.reg);
                }
                Ok((
                    rank,
                    ctx.u,
                    ctx.v,
                    global_of_local,
                    RankStats::from_registry(rank, ctx.reg, ctx.timeline),
                ))
            }));
        }
        let mut joined = Vec::with_capacity(handles.len());
        for (rank, h) in handles.into_iter().enumerate() {
            joined.push(
                h.join()
                    .map_err(|_| RuntimeError::RankPanicked { rank })
                    .and_then(|r| r),
            );
        }
        joined.into_iter().collect()
    });
    drop(senders);
    let mut results: Vec<Option<RankResult>> = (0..n_ranks).map(|_| None).collect();
    let mut stats: Vec<Option<RankStats>> = (0..n_ranks).map(|_| None).collect();
    for (rank, u, v, map, st) in outcome? {
        results[rank] = Some((u, v, map));
        stats[rank] = Some(st);
    }
    let mut flat_stats: Vec<RankStats> = Vec::with_capacity(n_ranks);
    for (rank, s) in stats.into_iter().enumerate() {
        flat_stats.push(s.ok_or(RuntimeError::MissingRank { rank })?);
    }
    stamp_lambda_gauges(monitor.as_deref(), &mut flat_stats);
    let mut flat_results: Vec<RankResult> = Vec::with_capacity(n_ranks);
    for (rank, r) in results.into_iter().enumerate() {
        flat_results.push(r.ok_or(RuntimeError::MissingRank { rank })?);
    }
    Ok((flat_results, flat_stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lts_core::{Chain1d, LtsNewmark, LtsSetup};

    fn serial(
        c: &Chain1d,
        setup: &LtsSetup,
        dt: f64,
        u0: &[f64],
        steps: usize,
    ) -> (Vec<f64>, Vec<f64>) {
        let mut u = u0.to_vec();
        let mut v = vec![0.0; u0.len()];
        let mut lts = LtsNewmark::new(c, setup, dt);
        lts.run(&mut u, &mut v, 0.0, steps, &[]);
        (u, v)
    }

    fn gaussian(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (-((i as f64 - n as f64 / 2.5) / 2.0).powi(2)).exp())
            .collect()
    }

    #[test]
    fn two_ranks_match_serial_single_level() {
        let c = Chain1d::uniform(16, 1.0, 1.0);
        let setup = LtsSetup::new(&c, &[0u8; 16]);
        let u0 = gaussian(17);
        let (us, vs) = serial(&c, &setup, 0.5, &u0, 30);
        let part: Vec<u32> = (0..16).map(|e| u32::from(e >= 8)).collect();
        let cfg = DistributedConfig::new(2);
        let (ud, vd, stats) =
            run_distributed(&c, &setup, &part, 0.5, &u0, &[0.0; 17], 30, &cfg).unwrap();
        for i in 0..17 {
            assert_eq!(us[i], ud[i], "u[{i}]");
            assert_eq!(vs[i], vd[i], "v[{i}]");
        }
        assert_eq!(stats.len(), 2);
        assert!(stats[0].n_exchanges > 0);
    }

    #[test]
    fn four_ranks_match_serial_three_levels() {
        let mut vel = vec![1.0; 24];
        for (i, vx) in vel.iter_mut().enumerate() {
            if i >= 20 {
                *vx = 4.0;
            } else if i >= 17 {
                *vx = 2.0;
            }
        }
        let c = Chain1d::with_velocities(vel, 1.0);
        let (lv, dt) = c.assign_levels(0.5, 3);
        let setup = LtsSetup::new(&c, &lv);
        assert_eq!(setup.n_levels, 3);
        let u0 = gaussian(25);
        let (us, _) = serial(&c, &setup, dt, &u0, 20);
        let part: Vec<u32> = (0..24).map(|e| (e / 6) as u32).collect();
        let cfg = DistributedConfig::new(4);
        let (ud, _, _) = run_distributed(&c, &setup, &part, dt, &u0, &[0.0; 25], 20, &cfg).unwrap();
        for i in 0..25 {
            assert!(
                (us[i] - ud[i]).abs() < 1e-13,
                "u[{i}]: serial {} vs distributed {}",
                us[i],
                ud[i]
            );
        }
    }

    #[test]
    fn scrambled_partition_still_exact() {
        let mut vel = vec![1.0; 12];
        for v in vel.iter_mut().skip(8) {
            *v = 2.0;
        }
        let c = Chain1d::with_velocities(vel, 1.0);
        let (lv, dt) = c.assign_levels(0.5, 2);
        let setup = LtsSetup::new(&c, &lv);
        let u0 = gaussian(13);
        let (us, _) = serial(&c, &setup, dt, &u0, 15);
        // interleaved ownership → many interfaces
        let part: Vec<u32> = (0..12).map(|e| (e % 3) as u32).collect();
        let cfg = DistributedConfig::new(3);
        let (ud, _, _) = run_distributed(&c, &setup, &part, dt, &u0, &[0.0; 13], 15, &cfg).unwrap();
        for i in 0..13 {
            assert!((us[i] - ud[i]).abs() < 1e-13, "u[{i}]");
        }
    }

    #[test]
    fn single_rank_matches_serial() {
        let c = Chain1d::uniform(8, 1.0, 1.0);
        let setup = LtsSetup::new(&c, &[0u8; 8]);
        let u0 = gaussian(9);
        let (us, _) = serial(&c, &setup, 0.5, &u0, 10);
        let cfg = DistributedConfig::new(1);
        let (ud, _, stats) =
            run_distributed(&c, &setup, &[0; 8], 0.5, &u0, &[0.0; 9], 10, &cfg).unwrap();
        assert_eq!(us, ud);
        assert_eq!(stats[0].n_exchanges, 0);
    }

    #[test]
    fn overlap_matches_blocking_to_roundoff() {
        let mut vel = vec![1.0; 24];
        for (i, vx) in vel.iter_mut().enumerate() {
            if i >= 20 {
                *vx = 4.0;
            } else if i >= 17 {
                *vx = 2.0;
            }
        }
        let c = Chain1d::with_velocities(vel, 1.0);
        let (lv, dt) = c.assign_levels(0.5, 3);
        let setup = LtsSetup::new(&c, &lv);
        let u0 = gaussian(25);
        let part: Vec<u32> = (0..24).map(|e| (e / 8) as u32).collect();
        let blocking = DistributedConfig::new(3);
        let overlapped = DistributedConfig {
            overlap: true,
            ..blocking
        };
        let (ub, _, _) =
            run_distributed(&c, &setup, &part, dt, &u0, &[0.0; 25], 20, &blocking).unwrap();
        let (uo, _, _) =
            run_distributed(&c, &setup, &part, dt, &u0, &[0.0; 25], 20, &overlapped).unwrap();
        // interface partials are order-identical; interior-element summation
        // order differs only on private DOFs → tiny round-off differences
        for i in 0..25 {
            assert!(
                (ub[i] - uo[i]).abs() < 1e-12,
                "dof {i}: blocking {} vs overlapped {}",
                ub[i],
                uo[i]
            );
        }
    }

    #[test]
    fn overlap_covers_all_elements() {
        let c = Chain1d::uniform(12, 1.0, 1.0);
        let setup = LtsSetup::new(&c, &[0u8; 12]);
        let part: Vec<u32> = (0..12).map(|e| u32::from(e >= 6)).collect();
        let plans = crate::exchange::build_plans(&c, &setup, &part, 2);
        for p in &plans {
            for l in 0..setup.n_levels {
                let mut all = p.my_boundary_elems[l].clone();
                all.extend_from_slice(&p.my_interior_elems[l]);
                all.sort_unstable();
                let mut expect = p.my_elems[l].clone();
                expect.sort_unstable();
                assert_eq!(all, expect);
            }
        }
    }

    #[test]
    fn imbalanced_partition_shows_stall() {
        // Fig. 1 scenario: all fine elements on one rank; with amplified
        // work, the coarse-only rank must wait.
        let mut vel = vec![1.0; 16];
        for v in vel.iter_mut().skip(12) {
            *v = 2.0;
        }
        let c = Chain1d::with_velocities(vel, 1.0);
        let (lv, dt) = c.assign_levels(0.5, 2);
        let setup = LtsSetup::new(&c, &lv);
        let part: Vec<u32> = (0..16).map(|e| u32::from(e >= 8)).collect(); // rank 1 has all fine
        let cfg = DistributedConfig {
            record_timeline: true,
            work_amplify: 20_000,
            ..DistributedConfig::new(2)
        };
        let u0 = gaussian(17);
        let (_, _, stats) =
            run_distributed(&c, &setup, &part, dt, &u0, &[0.0; 17], 50, &cfg).unwrap();
        // rank 0 (coarse only) waits more than rank 1
        assert!(
            stats[0].wait_s > stats[1].wait_s,
            "rank0 wait {} vs rank1 wait {}",
            stats[0].wait_s,
            stats[1].wait_s
        );
        assert!(!stats[0].timeline.is_empty());
    }

    #[test]
    fn monitor_lambda_matches_posthoc_eq21_and_warns() {
        use crate::stats::lambda_from_stats;
        // uniform mesh, even partition — then skew all amplified work onto
        // rank 1 so rank 0 stalls and the online monitor must notice.
        let c = Chain1d::uniform(16, 1.0, 1.0);
        let setup = LtsSetup::new(&c, &[0u8; 16]);
        let part: Vec<u32> = (0..16).map(|e| u32::from(e >= 8)).collect();
        let cfg = DistributedConfig {
            record_timeline: true,
            work_amplify: 60_000,
            amplify_rank: Some(1),
            stall_monitor: Some(MonitorConfig {
                window_exchanges: 4,
                wait_warn_fraction: 0.5,
                log_warnings: false,
            }),
            ..DistributedConfig::new(2)
        };
        let u0 = gaussian(17);
        let (_, _, stats) =
            run_distributed(&c, &setup, &part, 0.5, &u0, &[0.0; 17], 60, &cfg).unwrap();
        let posthoc = lambda_from_stats(&stats);
        assert!(!posthoc.is_empty());
        for &(l, lam) in &posthoc {
            // the online monitor accumulates the same per-exchange busy
            // durations in integer nanoseconds; after the post-join stamp the
            // gauge must agree with the post-hoc Eq. 21 value
            for st in &stats {
                let gauge = st
                    .registry
                    .gauge(names::STALL_LAMBDA, Some(l))
                    .expect("final lambda gauge stamped on every rank");
                assert!(
                    (gauge - lam).abs() < 1e-3,
                    "level {l}: monitor lambda {gauge} vs post-hoc {lam}"
                );
                let wm = st
                    .registry
                    .gauge(names::STALL_LAMBDA_WM, Some(l))
                    .expect("lambda watermark stamped");
                assert!(wm + 1e-12 >= gauge, "watermark {wm} below final {gauge}");
            }
        }
        // rank 0 idles ≥ threshold → exactly the stalled rank warns
        let warned_0 = stats[0].registry.counter_total(names::STALL_WARNINGS);
        let warned_1 = stats[1].registry.counter_total(names::STALL_WARNINGS);
        assert!(warned_0 >= 1, "stalled rank 0 must raise a warning");
        assert_eq!(warned_1, 0, "busy rank must not warn");
        let wf = stats[0]
            .registry
            .gauge(names::STALL_WAIT_FRAC_WM, Some(0))
            .expect("wait-fraction watermark recorded");
        assert!(wf >= 0.5, "windowed wait fraction {wf} below threshold");
    }
}
