//! Exchange plans: which DOFs' partial forces must be assembled across which
//! rank pairs at each LTS level.
//!
//! A DOF's *rank set* is every rank owning an element containing it. After a
//! masked product at level `l`, all DOFs in `touched[l]` with two or more
//! ranks exchange partials among their rank set and re-assemble the total in
//! ascending-rank order — making every rank's copy bitwise identical.

use lts_core::{DofTopology, LtsSetup};

/// Exchange plan of one rank.
#[derive(Debug, Clone, Default)]
pub struct RankPlan {
    /// Elements this rank owns, intersected with `setup.elems[l]`.
    pub my_elems: Vec<Vec<u32>>,
    /// `my_elems[l]` split for communication overlap: elements touching a
    /// shared DOF (their contributions must be computed before the sends)…
    pub my_boundary_elems: Vec<Vec<u32>>,
    /// …and the rest, computable while messages are in flight.
    pub my_interior_elems: Vec<Vec<u32>>,
    /// `setup.touched[l] ∩ my_dofs` — force-buffer entries to zero.
    pub my_zero: Vec<Vec<u32>>,
    /// `setup.active[l] ∩ my_dofs`.
    pub my_active: Vec<Vec<u32>>,
    /// `setup.leaf[l] ∩ my_dofs`.
    pub my_leaf: Vec<Vec<u32>>,
    /// All DOFs of owned elements.
    pub my_dofs: Vec<u32>,
    /// Per level: peers this rank exchanges with (sorted).
    pub peers: Vec<Vec<usize>>,
    /// Per level, aligned with `peers`: the ascending DOF list sent to (and
    /// received from) that peer.
    pub pair_dofs: Vec<Vec<Vec<u32>>>,
    /// Per level: all shared DOFs of this rank (ascending) with their full
    /// ascending rank sets.
    pub shared: Vec<Vec<(u32, Vec<u32>)>>,
}

/// Build the per-rank plans for a partition.
pub fn build_plans<T: DofTopology>(
    topo: &T,
    setup: &LtsSetup,
    partition: &[u32],
    n_ranks: usize,
) -> Vec<RankPlan> {
    assert_eq!(partition.len(), topo.n_elems());
    assert!(n_ranks >= 1);
    assert!(partition.iter().all(|&p| (p as usize) < n_ranks));
    let ndof = topo.n_dofs();
    let nl = setup.n_levels;

    // rank sets per dof (sorted, deduped)
    let mut dof_ranks: Vec<Vec<u32>> = vec![Vec::new(); ndof];
    let mut dofs = Vec::new();
    for e in 0..topo.n_elems() as u32 {
        let r = partition[e as usize];
        topo.elem_dofs(e, &mut dofs);
        for &d in &dofs {
            let v = &mut dof_ranks[d as usize];
            if !v.contains(&r) {
                v.push(r);
            }
        }
    }
    for v in dof_ranks.iter_mut() {
        v.sort_unstable();
    }

    let mut plans: Vec<RankPlan> = (0..n_ranks)
        .map(|_| RankPlan {
            my_elems: vec![Vec::new(); nl],
            my_boundary_elems: vec![Vec::new(); nl],
            my_interior_elems: vec![Vec::new(); nl],
            my_zero: vec![Vec::new(); nl],
            my_active: vec![Vec::new(); nl],
            my_leaf: vec![Vec::new(); nl],
            my_dofs: Vec::new(),
            peers: vec![Vec::new(); nl],
            pair_dofs: vec![Vec::new(); nl],
            shared: vec![Vec::new(); nl],
        })
        .collect();

    for d in 0..ndof as u32 {
        for &r in &dof_ranks[d as usize] {
            plans[r as usize].my_dofs.push(d);
        }
    }
    for (l, elems_l) in setup.elems.iter().enumerate() {
        for &e in elems_l {
            plans[partition[e as usize] as usize].my_elems[l].push(e);
        }
    }
    let owns = |r: usize, d: u32| dof_ranks[d as usize].contains(&(r as u32));
    // boundary/interior split of each rank's per-level element lists
    for (l, elems_l) in setup.elems.iter().enumerate() {
        for &e in elems_l {
            let r = partition[e as usize] as usize;
            topo.elem_dofs(e, &mut dofs);
            let boundary = dofs.iter().any(|&d| dof_ranks[d as usize].len() >= 2);
            if boundary {
                plans[r].my_boundary_elems[l].push(e);
            } else {
                plans[r].my_interior_elems[l].push(e);
            }
        }
    }
    for l in 0..nl {
        for &d in &setup.touched[l] {
            for &r in &dof_ranks[d as usize] {
                plans[r as usize].my_zero[l].push(d);
            }
        }
        for &d in &setup.active[l] {
            for &r in &dof_ranks[d as usize] {
                plans[r as usize].my_active[l].push(d);
            }
        }
        for &d in &setup.leaf[l] {
            for &r in &dof_ranks[d as usize] {
                plans[r as usize].my_leaf[l].push(d);
            }
        }
        let _ = owns;
        // shared dofs and pair lists (ascending dof order by construction)
        for &d in &setup.touched[l] {
            let ranks = &dof_ranks[d as usize];
            if ranks.len() < 2 {
                continue;
            }
            for &r in ranks {
                plans[r as usize].shared[l].push((d, ranks.clone()));
                for &p in ranks {
                    if p == r {
                        continue;
                    }
                    let plan = &mut plans[r as usize];
                    let pos = match plan.peers[l].binary_search(&(p as usize)) {
                        Ok(i) => i,
                        Err(i) => {
                            plan.peers[l].insert(i, p as usize);
                            plan.pair_dofs[l].insert(i, Vec::new());
                            i
                        }
                    };
                    plan.pair_dofs[l][pos].push(d);
                }
            }
        }
    }
    plans
}

#[cfg(test)]
mod tests {
    use super::*;
    use lts_core::Chain1d;

    #[test]
    fn chain_two_ranks_share_one_dof_per_level_interface() {
        // 8 elements, uniform (single level), split 4|4 → dof 4 shared
        let c = Chain1d::uniform(8, 1.0, 1.0);
        let setup = LtsSetup::new(&c, &[0u8; 8]);
        let part = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let plans = build_plans(&c, &setup, &part, 2);
        assert_eq!(plans[0].peers[0], vec![1]);
        assert_eq!(plans[1].peers[0], vec![0]);
        assert_eq!(plans[0].pair_dofs[0][0], vec![4]);
        assert_eq!(plans[1].pair_dofs[0][0], vec![4]);
        assert_eq!(plans[0].shared[0], vec![(4, vec![0, 1])]);
    }

    #[test]
    fn pair_lists_are_mirror_images() {
        let c = Chain1d::with_velocities(vec![1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0], 1.0);
        let (lv, _) = c.assign_levels(0.5, 2);
        let setup = LtsSetup::new(&c, &lv);
        let part = vec![0, 0, 1, 1, 0, 0, 1, 1]; // deliberately scrambled
        let plans = build_plans(&c, &setup, &part, 2);
        for l in 0..setup.n_levels {
            for (pi, &peer) in plans[0].peers[l].iter().enumerate() {
                let back = plans[peer].peers[l].iter().position(|&x| x == 0).unwrap();
                assert_eq!(
                    plans[0].pair_dofs[l][pi], plans[peer].pair_dofs[l][back],
                    "level {l} pair lists differ"
                );
            }
        }
    }

    #[test]
    fn my_sets_partition_global_sets() {
        let c = Chain1d::uniform(10, 1.0, 1.0);
        let setup = LtsSetup::new(&c, &[0u8; 10]);
        let part: Vec<u32> = (0..10).map(|e| (e / 4) as u32).collect(); // 3 ranks
        let plans = build_plans(&c, &setup, &part, 3);
        // every leaf dof is covered by at least one rank; shared dofs by several
        let mut coverage = [0usize; 11];
        for p in &plans {
            for &d in &p.my_leaf[0] {
                coverage[d as usize] += 1;
            }
        }
        assert!(coverage.iter().all(|&c| c >= 1));
        assert_eq!(coverage[4], 2); // interface dof owned by ranks 0 and 1
    }

    #[test]
    fn single_rank_has_no_peers() {
        let c = Chain1d::uniform(6, 1.0, 1.0);
        let setup = LtsSetup::new(&c, &[0u8; 6]);
        let plans = build_plans(&c, &setup, &[0; 6], 1);
        assert!(plans[0].peers[0].is_empty());
        assert_eq!(plans[0].my_elems[0].len(), 6);
        assert_eq!(plans[0].my_dofs.len(), 7);
    }
}
