//! Multi-process runner: a coordinator plus `wave-lts worker` OS processes
//! speaking the [`crate::transport::codec`] wire protocol over Unix sockets.
//!
//! The coordinator binds a Unix listener, spawns one worker process per
//! rank, and plays the same star-router role the in-process socket fabric
//! uses ([`crate::transport::socket`]): each worker dials in, identifies
//! itself with a `Hello` frame, and from then on its `Halo` frames are
//! relayed verbatim between ranks. Because workers rebuild their mesh,
//! partition and plan deterministically from the same CLI parameters, and
//! payload `f64`s cross the wire as raw bit patterns, a multi-process run
//! reproduces the in-process fields *bitwise* and its deterministic
//! counters exactly — asserted by `tests/multiprocess_integration.rs`.
//!
//! End-of-run results travel out of band: each worker opens a second,
//! short-lived connection and writes a `Stats` frame (its metrics in wire
//! form) followed by a `Done` frame (final fields in rank-local numbering
//! plus the local→global DOF map), then exits. The coordinator assembles
//! the global fields from the `Done` frames — lowest owning rank wins,
//! matching [`crate::distributed::run_distributed`] — and rebuilds
//! [`RankStats`] views from the `Stats` frames.
//!
//! A worker that dies mid-run takes its halo connection with it; the router
//! broadcasts its goodbye, surviving ranks fail with
//! [`RuntimeError::PeerDisconnected`] and exit nonzero, and the coordinator
//! reports the first casualty as [`RuntimeError::RankPanicked`]. Nothing
//! deadlocks: the coordinator polls child liveness while it waits.

use crate::distributed::RunResult;
use crate::error::RuntimeError;
use crate::stats::RankStats;
use crate::transport::codec::{self, Frame, StreamError, WireStats};
use crate::transport::socket::{self, SocketTransport};
use lts_obs::RankRecording;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How to launch the worker fleet.
#[derive(Debug, Clone)]
pub struct ProcSpec {
    /// The `wave-lts` binary (usually `std::env::current_exe()`).
    pub bin: PathBuf,
    /// Subcommand plus the parameters every worker shares (mesh, order,
    /// steps, `--dt-bits`, …). The coordinator appends `--socket`,
    /// `--rank` and `--ranks` per worker.
    pub args: Vec<String>,
    pub n_ranks: usize,
    /// Wall-clock budget for the whole run; expiry yields
    /// [`RuntimeError::MissingRank`] instead of a hang.
    pub timeout: Duration,
}

static SOCK_SEQ: AtomicU64 = AtomicU64::new(0);

/// A collision-free socket path in the system temp directory.
pub fn unique_socket_path() -> PathBuf {
    let seq = SOCK_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("wave-lts-{}-{seq}.sock", std::process::id()))
}

#[cold]
fn coord_io(detail: String) -> RuntimeError {
    RuntimeError::TransportIo {
        rank: 0,
        level: 0,
        detail,
    }
}

/// Dial the coordinator at `path` and identify as `rank`: the worker side
/// of the halo fabric. The returned endpoint routes through the
/// coordinator exactly like an in-process socket cluster member.
pub fn worker_connect(
    path: &Path,
    rank: usize,
    n_ranks: usize,
) -> std::io::Result<SocketTransport> {
    let mut stream = UnixStream::connect(path)?;
    codec::write_frame(&mut stream, &Frame::Hello { rank: rank as u32 })?;
    Ok(SocketTransport::new(rank, n_ranks, stream))
}

/// Report a finished worker's results on a fresh connection: one `Stats`
/// frame, one `Done` frame, then a clean shutdown. `u`/`v` are in
/// rank-local numbering, positionally matching `global_of_local`.
pub fn worker_report(
    path: &Path,
    rank: usize,
    stats: &RankStats,
    u: &[f64],
    v: &[f64],
    global_of_local: &[u32],
) -> std::io::Result<()> {
    worker_report_flight(path, rank, stats, u, v, global_of_local, None)
}

/// [`worker_report`] also shipping the rank's drained flight-recorder ring
/// as a `Flight` frame (between `Stats` and `Done`), so the coordinator's
/// merged post-mortem view covers real OS processes too.
pub fn worker_report_flight(
    path: &Path,
    rank: usize,
    stats: &RankStats,
    u: &[f64],
    v: &[f64],
    global_of_local: &[u32],
    recording: Option<&RankRecording>,
) -> std::io::Result<()> {
    let mut stream = UnixStream::connect(path)?;
    codec::write_frame(
        &mut stream,
        &Frame::Stats {
            rank: rank as u32,
            stats: WireStats::from_rank_stats(stats),
        },
    )?;
    if let Some(rec) = recording {
        codec::write_frame(
            &mut stream,
            &Frame::Flight {
                recording: rec.clone(),
            },
        )?;
    }
    codec::write_frame(
        &mut stream,
        &Frame::Done {
            rank: rank as u32,
            u: u.to_vec(),
            v: v.to_vec(),
            global_of_local: global_of_local.to_vec(),
        },
    )?;
    stream.shutdown(std::net::Shutdown::Write)
}

/// A dying worker's last words: open a fresh report connection and ship
/// only the flight recording, so the coordinator's crash report includes
/// the casualty's own tail of events. Best-effort by design — the caller
/// exits nonzero right after, whatever this returns.
pub fn worker_report_crash(path: &Path, recording: &RankRecording) -> std::io::Result<()> {
    let mut stream = UnixStream::connect(path)?;
    codec::write_frame(
        &mut stream,
        &Frame::Flight {
            recording: recording.clone(),
        },
    )?;
    stream.shutdown(std::net::Shutdown::Write)
}

/// Spawn `n_ranks` worker processes, route their halo traffic, collect
/// their results, and assemble the global `(u, v)` plus per-rank stats.
pub fn run_coordinator(spec: &ProcSpec) -> RunResult {
    run_coordinator_flight(spec).0
}

/// [`run_coordinator`] also returning whatever flight recordings the fleet
/// shipped over the wire — index-aligned with ranks, empty for a rank whose
/// recording never arrived. Recordings come back on the `Err` side too:
/// after a casualty the coordinator holds the accept loop open briefly so
/// surviving (and dying) workers can land their crash `Flight` frames.
pub fn run_coordinator_flight(spec: &ProcSpec) -> (RunResult, Vec<RankRecording>) {
    let n = spec.n_ranks;
    let mut flight: Vec<Option<RankRecording>> = vec![None; n];
    let result = coordinate(spec, &mut flight);
    let recordings = flight
        .into_iter()
        .enumerate()
        .map(|(rank, r)| {
            r.unwrap_or(RankRecording {
                rank: rank as u32,
                dropped: 0,
                events: Vec::new(),
            })
        })
        .collect();
    (result, recordings)
}

fn coordinate(spec: &ProcSpec, flight: &mut [Option<RankRecording>]) -> RunResult {
    let n = spec.n_ranks;
    let path = unique_socket_path();
    let listener =
        UnixListener::bind(&path).map_err(|e| coord_io(format!("bind {}: {e}", path.display())))?;
    if let Err(e) = listener.set_nonblocking(true) {
        let _ = std::fs::remove_file(&path);
        return Err(coord_io(format!("nonblocking listener: {e}")));
    }
    let mut children: Vec<Child> = Vec::with_capacity(n);
    for rank in 0..n {
        let spawned = Command::new(&spec.bin)
            .args(&spec.args)
            .arg("--socket")
            .arg(&path)
            .arg("--rank")
            .arg(rank.to_string())
            .arg("--ranks")
            .arg(n.to_string())
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::inherit())
            .spawn();
        match spawned {
            Ok(c) => children.push(c),
            Err(e) => {
                reap(&mut children);
                let _ = std::fs::remove_file(&path);
                return Err(coord_io(format!("spawn worker {rank}: {e}")));
            }
        }
    }
    let collected = collect(&listener, &mut children, n, spec.timeout, flight);
    match &collected {
        Ok(_) => {
            // workers exit right after reporting; reap and demand success
            for (rank, c) in children.iter_mut().enumerate() {
                match c.wait() {
                    Ok(status) if status.success() => {}
                    _ => {
                        let _ = std::fs::remove_file(&path);
                        return Err(RuntimeError::RankPanicked { rank });
                    }
                }
            }
        }
        Err(_) => {
            drain_crash_reports(&listener, &mut children, flight);
            reap(&mut children);
        }
    }
    let _ = std::fs::remove_file(&path);
    let (stats, done) = collected?;
    assemble(stats, done)
}

/// After a casualty, hold the door open briefly: the goodbye cascade kills
/// the surviving workers within milliseconds, and each ships its ring as a
/// crash `Flight` frame on the way down. Best effort with a hard deadline —
/// a worker that never connects just leaves its slot empty.
fn drain_crash_reports(
    listener: &UnixListener,
    children: &mut [Child],
    flight: &mut [Option<RankRecording>],
) {
    let grace = Instant::now() + Duration::from_millis(800);
    let mut stats: Vec<Option<WireStats>> = vec![None; flight.len()];
    let mut done: Vec<Option<DoneFrame>> = vec![None; flight.len()];
    let mut halo: Vec<Option<UnixStream>> = (0..flight.len()).map(|_| None).collect();
    loop {
        let all_exited = children
            .iter_mut()
            .all(|c| matches!(c.try_wait(), Ok(Some(_))));
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = handle_conn(stream, grace, &mut halo, &mut stats, &mut done, flight);
            }
            Err(_) => {
                if all_exited || Instant::now() > grace {
                    // one last sweep for a report that raced the exit check
                    while let Ok((stream, _)) = listener.accept() {
                        let _ =
                            handle_conn(stream, grace, &mut halo, &mut stats, &mut done, flight);
                    }
                    return;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
}

/// Kill and wait every child; used on all failure paths so no zombie
/// worker outlives its coordinator.
fn reap(children: &mut [Child]) {
    for c in children.iter_mut() {
        let _ = c.kill();
        let _ = c.wait();
    }
}

type DoneFrame = (Vec<f64>, Vec<f64>, Vec<u32>);
/// What [`collect`] gathers from the fleet's out-of-band result streams.
type Collected = (Vec<Option<WireStats>>, Vec<Option<DoneFrame>>);

fn collect(
    listener: &UnixListener,
    children: &mut [Child],
    n: usize,
    timeout: Duration,
    flight: &mut [Option<RankRecording>],
) -> Result<Collected, RuntimeError> {
    let deadline = Instant::now() + timeout;
    let mut halo: Vec<Option<UnixStream>> = (0..n).map(|_| None).collect();
    let mut routers_started = false;
    let mut stats: Vec<Option<WireStats>> = vec![None; n];
    let mut done: Vec<Option<DoneFrame>> = vec![None; n];
    loop {
        if stats.iter().all(|s| s.is_some()) && done.iter().all(|d| d.is_some()) {
            return Ok((stats, done));
        }
        if Instant::now() > deadline {
            let rank = done.iter().position(|d| d.is_none()).unwrap_or(0);
            return Err(RuntimeError::MissingRank { rank });
        }
        // A child that died without reporting will never report; a child
        // that exited 0 may still have frames buffered in an accepted
        // connection, so only failure exits are terminal here.
        for (rank, c) in children.iter_mut().enumerate() {
            if done[rank].is_some() {
                continue;
            }
            if let Ok(Some(status)) = c.try_wait() {
                if !status.success() {
                    return Err(RuntimeError::RankPanicked { rank });
                }
            }
        }
        match listener.accept() {
            Ok((stream, _)) => {
                handle_conn(stream, deadline, &mut halo, &mut stats, &mut done, flight)?;
                if !routers_started && halo.iter().all(|h| h.is_some()) {
                    start_routers(&mut halo)?;
                    routers_started = true;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(coord_io(format!("accept: {e}"))),
        }
    }
}

/// Classify a fresh connection by its first frame: `Hello` registers the
/// rank's halo stream; anything else is a report connection, drained to EOF.
fn handle_conn(
    stream: UnixStream,
    deadline: Instant,
    halo: &mut [Option<UnixStream>],
    stats: &mut [Option<WireStats>],
    done: &mut [Option<DoneFrame>],
    flight: &mut [Option<RankRecording>],
) -> Result<(), RuntimeError> {
    if let Err(e) = stream.set_nonblocking(false) {
        return Err(coord_io(format!("blocking conn: {e}")));
    }
    let remaining = deadline
        .saturating_duration_since(Instant::now())
        .max(Duration::from_millis(1));
    let _ = stream.set_read_timeout(Some(remaining));
    let mut scratch = Vec::new();
    let mut r = &stream;
    match codec::read_frame(&mut r, &mut scratch) {
        Ok(Frame::Hello { rank }) => {
            let rank = rank as usize;
            if rank >= halo.len() || halo[rank].is_some() {
                return Err(coord_io(format!("unexpected hello from rank {rank}")));
            }
            let _ = stream.set_read_timeout(None);
            halo[rank] = Some(stream);
            Ok(())
        }
        Ok(first) => {
            stash(first, stats, done, flight)?;
            loop {
                match codec::read_frame(&mut r, &mut scratch) {
                    Ok(frame) => stash(frame, stats, done, flight)?,
                    Err(StreamError::Eof) => return Ok(()),
                    Err(e) => return Err(coord_io(format!("report stream: {e}"))),
                }
            }
        }
        Err(e) => Err(coord_io(format!("first frame: {e}"))),
    }
}

fn stash(
    frame: Frame,
    stats: &mut [Option<WireStats>],
    done: &mut [Option<DoneFrame>],
    flight: &mut [Option<RankRecording>],
) -> Result<(), RuntimeError> {
    match frame {
        Frame::Flight { recording } => {
            let rank = recording.rank as usize;
            if rank >= flight.len() {
                return Err(coord_io(format!(
                    "flight recording from unknown rank {rank}"
                )));
            }
            flight[rank] = Some(recording);
        }
        Frame::Stats { rank, stats: ws } => {
            let rank = rank as usize;
            if rank >= stats.len() {
                return Err(coord_io(format!("stats from unknown rank {rank}")));
            }
            stats[rank] = Some(ws);
        }
        Frame::Done {
            rank,
            u,
            v,
            global_of_local,
        } => {
            let rank = rank as usize;
            if rank >= done.len() {
                return Err(coord_io(format!("done from unknown rank {rank}")));
            }
            if u.len() != global_of_local.len() || v.len() != global_of_local.len() {
                return Err(coord_io(format!("rank {rank}: done frame length mismatch")));
            }
            done[rank] = Some((u, v, global_of_local));
        }
        // goodbyes and stray halos on a report connection are harmless
        _ => {}
    }
    Ok(())
}

/// Hand all registered halo streams to detached router threads — the same
/// verbatim-relay loop the in-process socket cluster runs.
fn start_routers(halo: &mut [Option<UnixStream>]) -> Result<(), RuntimeError> {
    let mut streams = Vec::with_capacity(halo.len());
    for h in halo.iter_mut() {
        match h.take() {
            Some(s) => streams.push(s),
            None => return Err(coord_io("router start before all hellos".into())),
        }
    }
    let mut writers: Vec<Arc<Mutex<UnixStream>>> = Vec::with_capacity(streams.len());
    for s in &streams {
        match s.try_clone() {
            Ok(c) => writers.push(Arc::new(Mutex::new(c))),
            Err(e) => return Err(coord_io(format!("clone halo stream: {e}"))),
        }
    }
    for (rank, stream) in streams.into_iter().enumerate() {
        let writers = writers.clone();
        std::thread::spawn(move || socket::route_rank(rank, stream, &writers));
    }
    Ok(())
}

/// Rebuild per-rank stats and assemble the global fields: lowest owning
/// rank wins each DOF, exactly like the in-process runners.
fn assemble(stats: Vec<Option<WireStats>>, done: Vec<Option<DoneFrame>>) -> RunResult {
    let mut ndof = 0usize;
    for d in done.iter().flatten() {
        for &g in &d.2 {
            ndof = ndof.max(g as usize + 1);
        }
    }
    let mut owner = vec![u32::MAX; ndof];
    for (rank, d) in done.iter().enumerate() {
        if let Some((_, _, map)) = d {
            for &g in map {
                let o = &mut owner[g as usize];
                *o = (*o).min(rank as u32);
            }
        }
    }
    let mut u = vec![0.0; ndof];
    let mut v = vec![0.0; ndof];
    for (rank, d) in done.into_iter().enumerate() {
        let Some((ur, vr, map)) = d else {
            return Err(RuntimeError::MissingRank { rank });
        };
        for (i, &g) in map.iter().enumerate() {
            if owner[g as usize] == rank as u32 {
                u[g as usize] = ur[i];
                v[g as usize] = vr[i];
            }
        }
    }
    let mut out = Vec::with_capacity(stats.len());
    for (rank, s) in stats.into_iter().enumerate() {
        let Some(ws) = s else {
            return Err(RuntimeError::MissingRank { rank });
        };
        out.push(ws.into_rank_stats(rank));
    }
    Ok((u, v, out))
}
