//! Per-rank busy/stall accounting and timelines (the measurements behind the
//! paper's Fig. 1 runtime profile).

/// One recorded exchange point of one rank.
#[derive(Debug, Clone, Copy)]
pub struct TimelineEvent {
    /// LTS level of the force exchange.
    pub level: u8,
    /// Global step index.
    pub step: u32,
    /// Seconds spent computing since the previous event.
    pub busy_s: f64,
    /// Seconds spent blocked waiting for peers at this exchange.
    pub wait_s: f64,
}

/// Aggregated statistics of one rank after a run.
#[derive(Debug, Clone, Default)]
pub struct RankStats {
    pub rank: usize,
    /// Total seconds spent computing.
    pub busy_s: f64,
    /// Total seconds spent blocked in exchanges.
    pub wait_s: f64,
    /// Element-operations performed (masked products, one per element).
    pub elem_ops: u64,
    /// Number of exchange points.
    pub n_exchanges: u64,
    /// Optional fine-grained timeline (populated when requested).
    pub timeline: Vec<TimelineEvent>,
}

impl RankStats {
    /// Fraction of wall time spent waiting.
    pub fn wait_fraction(&self) -> f64 {
        let total = self.busy_s + self.wait_s;
        if total > 0.0 {
            self.wait_s / total
        } else {
            0.0
        }
    }
}

/// Render per-rank busy/wait bars as ASCII (the Fig. 1 bottom panel).
pub fn ascii_timeline(stats: &[RankStats], width: usize) -> String {
    let max_total = stats
        .iter()
        .map(|s| s.busy_s + s.wait_s)
        .fold(0.0f64, f64::max)
        .max(1e-12);
    let mut out = String::new();
    for s in stats {
        let busy = ((s.busy_s / max_total) * width as f64).round() as usize;
        let wait = ((s.wait_s / max_total) * width as f64).round() as usize;
        out.push_str(&format!(
            "rank {:>3} |{}{}| busy {:>7.3}ms wait {:>7.3}ms ({:>4.1}% stalled)\n",
            s.rank,
            "#".repeat(busy.min(width)),
            ".".repeat(wait.min(width.saturating_sub(busy))),
            s.busy_s * 1e3,
            s.wait_s * 1e3,
            100.0 * s.wait_fraction(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wait_fraction_bounds() {
        let s = RankStats { busy_s: 3.0, wait_s: 1.0, ..Default::default() };
        assert!((s.wait_fraction() - 0.25).abs() < 1e-12);
        let z = RankStats::default();
        assert_eq!(z.wait_fraction(), 0.0);
    }

    #[test]
    fn ascii_contains_each_rank() {
        let stats = vec![
            RankStats { rank: 0, busy_s: 1.0, wait_s: 0.5, ..Default::default() },
            RankStats { rank: 1, busy_s: 0.5, wait_s: 1.0, ..Default::default() },
        ];
        let s = ascii_timeline(&stats, 40);
        assert!(s.contains("rank   0"));
        assert!(s.contains("rank   1"));
        assert_eq!(s.lines().count(), 2);
    }
}
