//! Per-rank busy/stall accounting and timelines (the measurements behind the
//! paper's Fig. 1 runtime profile).
//!
//! The runtime records everything into a per-rank [`MetricsRegistry`]
//! (crate `lts-obs`); [`RankStats`] is a *view* materialized from that
//! registry after the run. The deterministic counters (element-operations,
//! exchange message counts, DOF send volumes) are exact integers independent
//! of timing, so integration tests can assert them against closed-form
//! oracles.

use lts_obs::{level_category, ChromeTrace, Json, MetricsRegistry};

/// Metric names the runtime records per rank. Level-scoped keys use
/// `Some(level)`; the end-of-run busy tail is recorded level-less.
pub mod names {
    /// Counter: masked element products, per level.
    pub const ELEM_OPS: &str = "elem_ops";
    /// Counter: exchange points awaited, per level.
    pub const EXCHANGES: &str = "exchanges";
    /// Counter: partial-force messages posted, per level.
    pub const MSGS_SENT: &str = "msgs_sent";
    /// Counter, per level: partials that had **already arrived** when the
    /// rank reached the exchange point (drained from the inbox without
    /// touching the transport). The scheduler-independent witness of
    /// comm/compute overlap: with sends posted before the interior apply
    /// this approaches `msgs_sent`, with blocking sends it stays near the
    /// out-of-order stash rate. Timing-free but schedule-*shifted*, so it
    /// is deliberately not part of the exact-match bench counters.
    pub const EXCHANGE_READY: &str = "exchange.partials_ready";
    /// Counter: interface DOF values sent (message payload lengths), per level.
    pub const DOFS_SENT: &str = "dofs_sent";
    /// Histogram: compute segments ending at an exchange of this level (s).
    pub const BUSY: &str = "busy";
    /// Histogram: blocked time at exchanges of this level (s).
    pub const WAIT: &str = "wait";
    /// Gauge, per level: watermark of the rank's *windowed* wait fraction —
    /// the worst `wait/(busy+wait)` any monitor window saw at this level.
    pub const STALL_WAIT_FRAC_WM: &str = "stall.wait_frac_wm";
    /// Counter, per level: stall warnings raised by this rank (the monitor
    /// warns at most once per rank × level).
    pub const STALL_WARNINGS: &str = "stall.warnings";
    /// Observation windows the stall monitor closed on this rank (counter,
    /// level-less) — with `stall.lambda_wm`, the run-long monitor summary.
    pub const STALL_WINDOWS: &str = "stall.windows";
    /// Gauge, per level: final Eq. 21 λ over the ranks' measured busy time,
    /// stamped after the join (identical on every rank; fraction 0..1).
    pub const STALL_LAMBDA: &str = "stall.lambda";
    /// Gauge, per level: watermark of windowed λ snapshots seen live.
    pub const STALL_LAMBDA_WM: &str = "stall.lambda_wm";
    /// Gauge: element operations per busy second over the whole run — the
    /// rank's masked-product throughput. Stamped after the join; derived
    /// from counters + timings, so it never enters counter-exact compares.
    pub const ELEM_OPS_PER_SEC: &str = "elem_ops_per_sec";
    /// Gauge, labelled by transport backend name: seconds the rank's
    /// endpoint spent blocked in `send` on backpressure.
    pub const TRANSPORT_SEND_BLOCK_S: &str = "transport.send_block_s";
    /// Gauge, labelled by transport backend name: halo messages the
    /// endpoint posted (mirrors the `msgs_sent` counter; lets exporters see
    /// which backend carried them).
    pub const TRANSPORT_MSGS: &str = "transport.msgs";
    /// Gauge, labelled by transport backend name: payload bytes put on the
    /// wire (0 for by-reference in-process backends).
    pub const TRANSPORT_BYTES: &str = "transport.bytes";
}

/// One recorded exchange point of one rank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelineEvent {
    /// LTS level of the force exchange.
    pub level: u8,
    /// Global step index.
    pub step: u32,
    /// Seconds spent computing since the previous event.
    pub busy_s: f64,
    /// Seconds spent blocked waiting for peers at this exchange.
    pub wait_s: f64,
    /// Cumulative masked element products on this rank at this exchange
    /// (drives the Chrome-trace counter track).
    pub elem_ops: u64,
    /// Cumulative interface DOF values sent by this rank at this exchange.
    pub dofs_sent: u64,
}

/// Per-LTS-level slice of one rank's accounting.
#[derive(Debug, Clone, Copy, Default)]
pub struct LevelStats {
    pub level: u8,
    /// Seconds of compute segments that ended at an exchange of this level.
    pub busy_s: f64,
    /// Seconds blocked at exchanges of this level.
    pub wait_s: f64,
    /// Masked element products at this level.
    pub elem_ops: u64,
    /// Exchange points awaited at this level.
    pub n_exchanges: u64,
    /// Partial-force messages posted at this level.
    pub msgs_sent: u64,
    /// Interface DOF values sent at this level.
    pub dofs_sent: u64,
}

/// Aggregated statistics of one rank after a run — a view over the rank's
/// [`MetricsRegistry`], which rides along in [`RankStats::registry`] for
/// exporters and per-level queries.
#[derive(Debug, Clone, Default)]
pub struct RankStats {
    pub rank: usize,
    /// Total seconds spent computing.
    pub busy_s: f64,
    /// Total seconds spent blocked in exchanges.
    pub wait_s: f64,
    /// Element-operations performed (masked products, one per element).
    pub elem_ops: u64,
    /// Number of exchange points.
    pub n_exchanges: u64,
    /// Partial-force messages posted.
    pub msgs_sent: u64,
    /// Interface DOF values sent (sum of message payload lengths).
    pub dofs_sent: u64,
    /// Optional fine-grained timeline (populated when requested).
    pub timeline: Vec<TimelineEvent>,
    /// The raw per-rank metrics this view was materialized from.
    pub registry: MetricsRegistry,
}

impl RankStats {
    /// Materialize the aggregate view from a rank's registry.
    pub fn from_registry(
        rank: usize,
        mut registry: MetricsRegistry,
        timeline: Vec<TimelineEvent>,
    ) -> Self {
        let busy_s = registry.histogram_sum_total(names::BUSY);
        let elem_ops = registry.counter_total(names::ELEM_OPS);
        if busy_s > 0.0 {
            registry.set_gauge(names::ELEM_OPS_PER_SEC, elem_ops as f64 / busy_s);
        }
        RankStats {
            rank,
            busy_s,
            wait_s: registry.histogram_sum_total(names::WAIT),
            elem_ops,
            n_exchanges: registry.counter_total(names::EXCHANGES),
            msgs_sent: registry.counter_total(names::MSGS_SENT),
            dofs_sent: registry.counter_total(names::DOFS_SENT),
            timeline,
            registry,
        }
    }

    /// Fraction of wall time spent waiting.
    pub fn wait_fraction(&self) -> f64 {
        let total = self.busy_s + self.wait_s;
        if total > 0.0 {
            self.wait_s / total
        } else {
            0.0
        }
    }

    /// Per-level breakdown, ascending by level. Levels are the union of all
    /// levels any metric was recorded under.
    pub fn per_level(&self) -> Vec<LevelStats> {
        let mut levels: Vec<u8> = self.registry.iter().filter_map(|(k, _)| k.level).collect();
        levels.sort_unstable();
        levels.dedup();
        levels
            .into_iter()
            .map(|l| LevelStats {
                level: l,
                busy_s: self
                    .registry
                    .histogram(names::BUSY, Some(l))
                    .map(|h| h.sum)
                    .unwrap_or(0.0),
                wait_s: self
                    .registry
                    .histogram(names::WAIT, Some(l))
                    .map(|h| h.sum)
                    .unwrap_or(0.0),
                elem_ops: self.registry.counter(names::ELEM_OPS, Some(l)),
                n_exchanges: self.registry.counter(names::EXCHANGES, Some(l)),
                msgs_sent: self.registry.counter(names::MSGS_SENT, Some(l)),
                dofs_sent: self.registry.counter(names::DOFS_SENT, Some(l)),
            })
            .collect()
    }
}

/// Build the machine-readable run profile (the Fig. 1 JSON): one entry per
/// rank with totals and the per-level busy/wait/exchange-volume breakdown.
pub fn profile_json(stats: &[RankStats]) -> Json {
    let ranks = stats
        .iter()
        .map(|s| {
            let levels = s
                .per_level()
                .into_iter()
                .map(|l| {
                    Json::Obj(vec![
                        ("level".to_string(), Json::UInt(l.level as u64)),
                        ("busy_s".to_string(), Json::Num(l.busy_s)),
                        ("wait_s".to_string(), Json::Num(l.wait_s)),
                        ("elem_ops".to_string(), Json::UInt(l.elem_ops)),
                        ("n_exchanges".to_string(), Json::UInt(l.n_exchanges)),
                        ("msgs_sent".to_string(), Json::UInt(l.msgs_sent)),
                        ("dofs_sent".to_string(), Json::UInt(l.dofs_sent)),
                    ])
                })
                .collect();
            let timeline = s
                .timeline
                .iter()
                .map(|ev| {
                    Json::Obj(vec![
                        ("level".to_string(), Json::UInt(ev.level as u64)),
                        ("step".to_string(), Json::UInt(ev.step as u64)),
                        ("busy_s".to_string(), Json::Num(ev.busy_s)),
                        ("wait_s".to_string(), Json::Num(ev.wait_s)),
                        ("elem_ops".to_string(), Json::UInt(ev.elem_ops)),
                        ("dofs_sent".to_string(), Json::UInt(ev.dofs_sent)),
                    ])
                })
                .collect();
            Json::Obj(vec![
                ("rank".to_string(), Json::UInt(s.rank as u64)),
                ("busy_s".to_string(), Json::Num(s.busy_s)),
                ("wait_s".to_string(), Json::Num(s.wait_s)),
                ("wait_fraction".to_string(), Json::Num(s.wait_fraction())),
                ("elem_ops".to_string(), Json::UInt(s.elem_ops)),
                ("n_exchanges".to_string(), Json::UInt(s.n_exchanges)),
                ("msgs_sent".to_string(), Json::UInt(s.msgs_sent)),
                ("dofs_sent".to_string(), Json::UInt(s.dofs_sent)),
                ("levels".to_string(), Json::Arr(levels)),
                ("timeline".to_string(), Json::Arr(timeline)),
            ])
        })
        .collect();
    Json::Obj(vec![("ranks".to_string(), Json::Arr(ranks))])
}

/// Post-hoc Eq. 21 λ per level over the ranks' measured busy seconds:
/// `λ_l = (max_r busy_l − min_r busy_l) / max_r busy_l`, as a fraction.
/// Levels are the union of levels any rank recorded; ranks without work at a
/// level contribute a zero load (λ → 1 when a level lives on one rank only).
///
/// This is the value the online monitor ([`crate::monitor::StallMonitor`])
/// converges to — its final [`names::STALL_LAMBDA`] gauge must match this
/// within nanosecond-rounding tolerance.
pub fn lambda_from_stats(stats: &[RankStats]) -> Vec<(u8, f64)> {
    let mut levels: Vec<u8> = stats
        .iter()
        .flat_map(|s| s.registry.iter().filter_map(|(k, _)| k.level))
        .collect();
    levels.sort_unstable();
    levels.dedup();
    levels
        .into_iter()
        .map(|l| {
            let loads: Vec<f64> = stats
                .iter()
                .map(|s| {
                    s.registry
                        .histogram(names::BUSY, Some(l))
                        .map(|h| h.sum)
                        .unwrap_or(0.0)
                })
                .collect();
            (l, crate::monitor::eq21_lambda(&loads))
        })
        .collect()
}

/// Render one or more runs' per-rank timelines as a Chrome trace:
/// **pid = run** (1-based, named by its label), **tid = rank**, one category
/// per LTS level. Each [`TimelineEvent`] becomes a `busy` slice, a `wait`
/// slice and a zero-width `exchange` marker, plus cumulative
/// `elem_ops`/`dofs_sent` counter samples. Any structured spans recorded in a
/// rank's registry (tracing-enabled runs) ride along on the same track.
pub fn chrome_trace(runs: &[(&str, &[RankStats])]) -> ChromeTrace {
    let mut t = ChromeTrace::new();
    for (run_idx, (label, stats)) in runs.iter().enumerate() {
        let pid = run_idx as u64 + 1;
        t.process_name(pid, label);
        for s in stats.iter() {
            let tid = s.rank as u64;
            t.thread_name(pid, tid, &format!("rank {}", s.rank));
            let mut ts_us = 0.0f64;
            for ev in &s.timeline {
                let cat = level_category(Some(ev.level));
                let args = vec![
                    ("step".to_string(), Json::UInt(ev.step as u64)),
                    ("level".to_string(), Json::UInt(ev.level as u64)),
                ];
                let busy_us = ev.busy_s * 1e6;
                let wait_us = ev.wait_s * 1e6;
                t.complete(pid, tid, "busy", &cat, ts_us, busy_us, args.clone());
                t.complete(
                    pid,
                    tid,
                    "wait",
                    &cat,
                    ts_us + busy_us,
                    wait_us,
                    args.clone(),
                );
                ts_us += busy_us + wait_us;
                t.complete(pid, tid, "exchange", &cat, ts_us, 0.0, args);
                t.counter(
                    pid,
                    tid,
                    &format!("elem_ops rank{}", s.rank),
                    ts_us,
                    &[("elem_ops", ev.elem_ops as f64)],
                );
                t.counter(
                    pid,
                    tid,
                    &format!("dofs_sent rank{}", s.rank),
                    ts_us,
                    &[("dofs_sent", ev.dofs_sent as f64)],
                );
            }
            t.add_registry_spans(&s.registry, pid, tid);
        }
    }
    t
}

/// Render per-rank busy/wait bars as ASCII (the Fig. 1 bottom panel). Each
/// bar is exactly `width` cells: `#` busy, `.` wait, padded with spaces.
pub fn ascii_timeline(stats: &[RankStats], width: usize) -> String {
    let max_total = stats
        .iter()
        .map(|s| s.busy_s + s.wait_s)
        .fold(0.0f64, f64::max)
        .max(1e-12);
    let mut out = String::new();
    for s in stats {
        // Clamp busy to the box, then wait to what remains: independent
        // rounding of the two segments can otherwise overflow `width` by one.
        let busy = (((s.busy_s / max_total) * width as f64).round() as usize).min(width);
        let wait = (((s.wait_s / max_total) * width as f64).round() as usize).min(width - busy);
        out.push_str(&format!(
            "rank {:>3} |{}{}{}| busy {:>7.3}ms wait {:>7.3}ms ({:>4.1}% stalled)\n",
            s.rank,
            "#".repeat(busy),
            ".".repeat(wait),
            " ".repeat(width - busy - wait),
            s.busy_s * 1e3,
            s.wait_s * 1e3,
            100.0 * s.wait_fraction(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bar_len(line: &str) -> usize {
        let open = line.find('|').unwrap();
        let close = line.rfind('|').unwrap();
        line[open + 1..close].chars().count()
    }

    #[test]
    fn wait_fraction_bounds() {
        let s = RankStats {
            busy_s: 3.0,
            wait_s: 1.0,
            ..Default::default()
        };
        assert!((s.wait_fraction() - 0.25).abs() < 1e-12);
        let z = RankStats::default();
        assert_eq!(z.wait_fraction(), 0.0);
    }

    #[test]
    fn ascii_contains_each_rank() {
        let stats = vec![
            RankStats {
                rank: 0,
                busy_s: 1.0,
                wait_s: 0.5,
                ..Default::default()
            },
            RankStats {
                rank: 1,
                busy_s: 0.5,
                wait_s: 1.0,
                ..Default::default()
            },
        ];
        let s = ascii_timeline(&stats, 40);
        assert!(s.contains("rank   0"));
        assert!(s.contains("rank   1"));
        assert_eq!(s.lines().count(), 2);
    }

    /// Regression: both segments round up (busy 4.5→5, wait 5.5→6 at
    /// width 10) — the bar must still be exactly `width` cells.
    #[test]
    fn ascii_bar_never_exceeds_width() {
        let width = 10;
        let stats = vec![RankStats {
            rank: 0,
            busy_s: 0.45,
            wait_s: 0.55,
            ..Default::default()
        }];
        let line = ascii_timeline(&stats, width);
        assert_eq!(bar_len(line.lines().next().unwrap()), width);

        // sweep many fractional splits across several ranks
        let stats: Vec<RankStats> = (0..50)
            .map(|i| RankStats {
                rank: i,
                busy_s: 0.01 + 0.02 * i as f64,
                wait_s: 1.0 - 0.017 * i as f64,
                ..Default::default()
            })
            .collect();
        for w in [1usize, 7, 10, 33, 80] {
            for line in ascii_timeline(&stats, w).lines() {
                assert_eq!(bar_len(line), w, "width {w}: {line}");
            }
        }
    }

    #[test]
    fn view_materializes_from_registry() {
        let mut reg = MetricsRegistry::new();
        reg.inc_level(names::ELEM_OPS, 0, 8);
        reg.inc_level(names::ELEM_OPS, 1, 24);
        reg.inc_level(names::EXCHANGES, 1, 4);
        reg.inc_level(names::MSGS_SENT, 1, 8);
        reg.inc_level(names::DOFS_SENT, 1, 40);
        reg.observe(names::BUSY, Some(1), 0.5);
        reg.observe(names::BUSY, None, 0.25); // end-of-run tail
        reg.observe(names::WAIT, Some(1), 0.125);
        let s = RankStats::from_registry(3, reg, Vec::new());
        assert_eq!(s.rank, 3);
        assert_eq!(s.elem_ops, 32);
        assert_eq!(s.n_exchanges, 4);
        assert_eq!(s.msgs_sent, 8);
        assert_eq!(s.dofs_sent, 40);
        assert!((s.busy_s - 0.75).abs() < 1e-12);
        assert!((s.wait_s - 0.125).abs() < 1e-12);
        let per = s.per_level();
        assert_eq!(per.len(), 2);
        assert_eq!(per[0].level, 0);
        assert_eq!(per[0].elem_ops, 8);
        assert_eq!(per[1].level, 1);
        assert_eq!(per[1].dofs_sent, 40);
        assert_eq!(per[1].n_exchanges, 4);
    }

    #[test]
    fn profile_json_has_rank_and_level_entries() {
        let mut reg = MetricsRegistry::new();
        reg.inc_level(names::ELEM_OPS, 0, 5);
        reg.inc_level(names::DOFS_SENT, 0, 10);
        reg.observe(names::BUSY, Some(0), 0.5);
        reg.observe(names::WAIT, Some(0), 0.25);
        let s = RankStats::from_registry(
            0,
            reg,
            vec![TimelineEvent {
                level: 0,
                step: 2,
                busy_s: 0.5,
                wait_s: 0.25,
                elem_ops: 5,
                dofs_sent: 10,
            }],
        );
        let json = profile_json(&[s]).render();
        assert!(json.contains(r#""rank":0"#));
        assert!(json.contains(r#""elem_ops":5"#));
        assert!(json.contains(r#""dofs_sent":10"#));
        assert!(json.contains(r#""levels":[{"level":0"#));
        assert!(json.contains(r#""timeline":[{"level":0,"step":2"#));
    }

    fn timed_rank(rank: usize, busy: &[(u8, f64)], wait: &[(u8, f64)]) -> RankStats {
        let mut reg = MetricsRegistry::new();
        for &(l, b) in busy {
            reg.observe(names::BUSY, Some(l), b);
        }
        for &(l, w) in wait {
            reg.observe(names::WAIT, Some(l), w);
        }
        RankStats::from_registry(rank, reg, Vec::new())
    }

    #[test]
    fn lambda_from_stats_matches_hand_computation() {
        let stats = vec![
            timed_rank(0, &[(0, 4.0), (1, 1.0)], &[]),
            timed_rank(1, &[(0, 2.0)], &[(1, 0.5)]),
        ];
        let lam = lambda_from_stats(&stats);
        assert_eq!(lam.len(), 2);
        assert_eq!(lam[0].0, 0);
        assert!((lam[0].1 - 0.5).abs() < 1e-12); // (4−2)/4
        assert_eq!(lam[1], (1, 1.0)); // level 1 busy only on rank 0
    }

    #[test]
    fn chrome_trace_has_monotone_ts_per_tid_and_round_trips() {
        let mk = |rank: usize| {
            let mut reg = MetricsRegistry::new();
            reg.observe(names::BUSY, Some(0), 0.3);
            let timeline = vec![
                TimelineEvent {
                    level: 0,
                    step: 0,
                    busy_s: 0.1,
                    wait_s: 0.05,
                    elem_ops: 8,
                    dofs_sent: 4,
                },
                TimelineEvent {
                    level: 1,
                    step: 0,
                    busy_s: 0.2,
                    wait_s: 0.0,
                    elem_ops: 24,
                    dofs_sent: 12,
                },
            ];
            RankStats::from_registry(rank, reg, timeline)
        };
        let stats = vec![mk(0), mk(1)];
        let trace = chrome_trace(&[("run A", &stats)]);
        let rendered = trace.render();
        // the exporter's own validator parses the JSON back and checks that
        // ts never rewinds within a (pid, tid) track
        let n = lts_obs::validate_trace(&rendered).expect("valid trace_event JSON");
        // 1 process_name + per rank: 1 thread_name + 2·(3 slices + 2 counters)
        assert_eq!(n, 1 + 2 * (1 + 2 * 5));
        let doc = Json::parse(&rendered).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let busy0: Vec<&Json> = events
            .iter()
            .filter(|e| {
                e.get("name").and_then(|n| n.as_str()) == Some("busy")
                    && e.get("tid").and_then(|t| t.as_u64()) == Some(0)
            })
            .collect();
        assert_eq!(busy0.len(), 2);
        assert_eq!(busy0[0].get("cat").unwrap().as_str(), Some("level0"));
        assert_eq!(busy0[1].get("cat").unwrap().as_str(), Some("level1"));
        assert_eq!(busy0[1].get("ts").unwrap().as_f64(), Some(0.15e6));
    }
}
