//! A message-passing runtime for partitioned LTS-Newmark.
//!
//! Each rank is an OS thread with private state vectors; the only
//! communication is the *assembly exchange* of partial force contributions on
//! interface DOFs after every masked operator application — exactly the MPI
//! pattern of SPECFEM3D (Sec. III). A force at level `k` is exchanged `2^k`
//! times per LTS cycle, which is why an unbalanced partition stalls at every
//! sub-step (the paper's Fig. 1); per-rank busy/wait accounting makes that
//! stall measurable.
//!
//! Shared interface DOFs are updated redundantly by every touching rank from
//! identical assembled forces (partials are summed in rank order), so ranks
//! stay bitwise consistent with the serial stepper — asserted by the
//! integration tests.

#![forbid(unsafe_code)]

pub mod distributed;
pub mod error;
pub mod exchange;
pub mod local;
pub mod monitor;
pub mod postmortem;
#[cfg(unix)]
pub mod process;
pub mod stats;
pub mod transport;

pub use distributed::{
    flight_capacity_from_env, run_distributed, run_distributed_endpoints,
    run_distributed_endpoints_recorded, run_distributed_with_sources, run_rank_endpoint,
    run_rank_endpoint_recorded, DistributedConfig, RankRun,
};
pub use error::RuntimeError;
pub use local::{
    run_distributed_local_acoustic, run_distributed_local_acoustic_flight,
    run_distributed_local_acoustic_observed, run_distributed_local_elastic,
    run_distributed_local_elastic_flight, run_distributed_local_elastic_observed,
};
pub use monitor::{eq21_lambda, MonitorConfig, StallMonitor, StallWarning};
pub use postmortem::CrashReport;
pub use stats::{
    ascii_timeline, chrome_trace, lambda_from_stats, profile_json, LevelStats, RankStats,
    TimelineEvent,
};
pub use transport::faulty::FaultPlan;
pub use transport::{Transport, TransportError, TransportKind};
