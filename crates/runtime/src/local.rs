//! Distributed-*memory* execution: each rank builds a compact local
//! sub-operator over its own elements ([`lts_sem::UnstructuredAcoustic`]),
//! so per-rank state scales with the partition size instead of the mesh —
//! the actual memory model of an MPI code like SPECFEM3D.
//!
//! The stepping and exchange logic is the shared [`crate::distributed`]
//! rank context; only the index spaces change (everything is translated to
//! rank-local DOF/element numbering up front). Verified bitwise against the
//! serial stepper.

use crate::distributed::RunResult;
use crate::distributed::{
    run_rank_contexts_recorded, DistributedConfig, LocalRank, RankContextRun, RankResult,
};
use crate::exchange::build_plans;
use crate::exchange::RankPlan;
use crate::stats::RankStats;
use crate::RuntimeError;
use lts_core::{LtsSetup, Operator, Source};
use lts_mesh::{HexMesh, Levels};
use lts_obs::{MetricsRegistry, RankRecording};
use lts_sem::{AcousticOperator, ElasticOperator, UnstructuredAcoustic, UnstructuredElastic};

/// Run partitioned LTS with per-rank local memory on the acoustic SEM.
///
/// Builds the global setup and mass once (as a real code would during its
/// mesher/decomposer phase), then hands each rank only its own slice of the
/// world. Returns the assembled global `(u, v)` and per-rank statistics.
#[allow(clippy::too_many_arguments)]
pub fn run_distributed_local_acoustic(
    mesh: &HexMesh,
    levels: &Levels,
    order: usize,
    partition: &[u32],
    dt: f64,
    u0: &[f64],
    v0: &[f64],
    n_steps: usize,
    cfg: &DistributedConfig,
    sources: &[Source],
) -> RunResult {
    let mut host = MetricsRegistry::new();
    run_distributed_local_acoustic_observed(
        mesh, levels, order, partition, dt, u0, v0, n_steps, cfg, sources, &mut host,
    )
}

/// [`run_distributed_local_acoustic`] recording the decomposer phases
/// (`decompose.discretize`, `decompose.build_worlds`, `run.steps`) as spans
/// in `host`, and folding every rank's registry into it so `host` ends with
/// the global counter totals.
#[allow(clippy::too_many_arguments)]
pub fn run_distributed_local_acoustic_observed(
    mesh: &HexMesh,
    levels: &Levels,
    order: usize,
    partition: &[u32],
    dt: f64,
    u0: &[f64],
    v0: &[f64],
    n_steps: usize,
    cfg: &DistributedConfig,
    sources: &[Source],
    host: &mut MetricsRegistry,
) -> RunResult {
    run_distributed_local_acoustic_flight(
        mesh, levels, order, partition, dt, u0, v0, n_steps, cfg, sources, host,
    )
    .0
}

/// [`run_distributed_local_acoustic_observed`] that additionally returns
/// every rank's drained flight-recorder ring. Recordings come back on the
/// `Err` side too — that is the whole point: they are the crash-report
/// material when a rank dies mid-run (the error is the lowest failed
/// rank's, matching the non-flight variants).
#[allow(clippy::too_many_arguments)]
pub fn run_distributed_local_acoustic_flight(
    mesh: &HexMesh,
    levels: &Levels,
    order: usize,
    partition: &[u32],
    dt: f64,
    u0: &[f64],
    v0: &[f64],
    n_steps: usize,
    cfg: &DistributedConfig,
    sources: &[Source],
    host: &mut MetricsRegistry,
) -> (RunResult, Vec<RankRecording>) {
    let n_ranks = cfg.n_ranks;
    // global discretization (mass + level sets), as the decomposer computes
    let discretize = host.start_span("decompose.discretize", None);
    let global_op = AcousticOperator::new(mesh, order);
    let setup = LtsSetup::new(&global_op, &levels.elem_level);
    let ndof = Operator::ndof(&global_op);
    assert_eq!(u0.len(), ndof);
    let plans = build_plans(&global_op, &setup, partition, n_ranks);
    let global_mass = global_op.mass().to_vec();
    drop(discretize);
    host.set_gauge("ndof", ndof as f64);
    host.set_gauge("n_ranks", n_ranks as f64);

    // per-rank local worlds
    let worlds_span = host.start_span("decompose.build_worlds", None);
    let mut ranks: Vec<LocalRank<UnstructuredAcoustic>> = Vec::with_capacity(n_ranks);
    for (rank, plan) in plans.iter().enumerate() {
        let my_elems_global: Vec<u32> = (0..mesh.n_elems() as u32)
            .filter(|&e| partition[e as usize] == rank as u32)
            .collect();
        let (local_op, global_of_local) = UnstructuredAcoustic::from_subset(
            mesh,
            order,
            &my_elems_global,
            Some(&|g| global_mass[g as usize]),
        );
        // index translations
        let local_dof = |g: u32| -> u32 {
            // The plan only names DOFs of elements this rank owns, so a miss
            // is a plan-construction bug, not a runtime condition.
            global_of_local
                .binary_search(&g)
                .expect("dof not owned by rank") as u32 // lint: allow(no-panic) — plan-construction invariant, not a runtime condition
        };
        let local_elem: std::collections::HashMap<u32, u32> = my_elems_global
            .iter()
            .enumerate()
            .map(|(l, &g)| (g, l as u32))
            .collect();
        let nl = setup.n_levels;
        let map_dofs = |lists: &Vec<Vec<u32>>| -> Vec<Vec<u32>> {
            lists
                .iter()
                .map(|l| l.iter().map(|&d| local_dof(d)).collect())
                .collect()
        };
        let localized = RankPlan {
            my_elems: (0..nl)
                .map(|l| plan.my_elems[l].iter().map(|e| local_elem[e]).collect())
                .collect(),
            my_boundary_elems: (0..nl)
                .map(|l| {
                    plan.my_boundary_elems[l]
                        .iter()
                        .map(|e| local_elem[e])
                        .collect()
                })
                .collect(),
            my_interior_elems: (0..nl)
                .map(|l| {
                    plan.my_interior_elems[l]
                        .iter()
                        .map(|e| local_elem[e])
                        .collect()
                })
                .collect(),
            my_zero: map_dofs(&plan.my_zero),
            my_active: map_dofs(&plan.my_active),
            my_leaf: map_dofs(&plan.my_leaf),
            my_dofs: (0..global_of_local.len() as u32).collect(),
            peers: plan.peers.clone(),
            pair_dofs: plan
                .pair_dofs
                .iter()
                .map(|per_peer| {
                    per_peer
                        .iter()
                        .map(|l| l.iter().map(|&d| local_dof(d)).collect())
                        .collect()
                })
                .collect(),
            shared: plan
                .shared
                .iter()
                .map(|l| l.iter().map(|(d, r)| (local_dof(*d), r.clone())).collect())
                .collect(),
        };
        // local level metadata
        let dof_level: Vec<u8> = global_of_local
            .iter()
            .map(|&g| setup.dof_level[g as usize])
            .collect();
        let leaf_level: Vec<u8> = global_of_local
            .iter()
            .map(|&g| setup.leaf_level[g as usize])
            .collect();
        let u_local: Vec<f64> = global_of_local.iter().map(|&g| u0[g as usize]).collect();
        let v_local: Vec<f64> = global_of_local.iter().map(|&g| v0[g as usize]).collect();
        let my_sources: Vec<Vec<(usize, u32)>> = {
            let mut per_level = vec![Vec::new(); nl];
            for (si, src) in sources.iter().enumerate() {
                if let Ok(l) = global_of_local.binary_search(&src.dof) {
                    per_level[setup.leaf_level[src.dof as usize] as usize].push((si, l as u32));
                }
            }
            per_level
        };
        ranks.push(LocalRank {
            op: local_op,
            n_levels: nl,
            dof_level,
            leaf_level,
            plan: localized,
            u: u_local,
            v: v_local,
            my_sources,
            global_of_local,
        });
    }
    drop(worlds_span);

    let run_span = host.start_span("run.steps", None);
    let (outcomes, recordings) = run_rank_contexts_recorded(ranks, dt, n_steps, cfg, sources);
    drop(run_span);
    let (results, stats) = match split_outcomes(outcomes) {
        Ok(pair) => pair,
        Err(e) => return (Err(e), recordings),
    };
    for s in &stats {
        host.merge_from(&s.registry);
    }

    // assemble: lowest owning rank provides each dof
    let mut owner = vec![u32::MAX; ndof];
    for (rank, plan) in plans.iter().enumerate() {
        for &d in &plan.my_dofs {
            owner[d as usize] = owner[d as usize].min(rank as u32);
        }
    }
    let mut u = vec![0.0; ndof];
    let mut v = vec![0.0; ndof];
    for (rank, (u_local, v_local, global_of_local)) in results.into_iter().enumerate() {
        for (l, &g) in global_of_local.iter().enumerate() {
            if owner[g as usize] == rank as u32 {
                u[g as usize] = u_local[l];
                v[g as usize] = v_local[l];
            }
        }
    }
    (Ok((u, v, stats)), recordings)
}

/// Flatten per-rank outcomes: all `Ok` → `(results, stats)`, otherwise the
/// lowest failed rank's error (ID order — deterministic across runs).
fn split_outcomes(
    outcomes: Vec<RankContextRun>,
) -> Result<(Vec<RankResult>, Vec<RankStats>), RuntimeError> {
    let mut results = Vec::with_capacity(outcomes.len());
    let mut stats = Vec::with_capacity(outcomes.len());
    for o in outcomes {
        let (res, st) = o?;
        results.push(res);
        stats.push(st);
    }
    Ok((results, stats))
}

/// [`run_distributed_local_acoustic`] for the elastic operator: local node
/// numbering with three interleaved components per node.
#[allow(clippy::too_many_arguments)]
pub fn run_distributed_local_elastic(
    mesh: &HexMesh,
    levels: &Levels,
    order: usize,
    partition: &[u32],
    dt: f64,
    u0: &[f64],
    v0: &[f64],
    n_steps: usize,
    cfg: &DistributedConfig,
    sources: &[Source],
) -> RunResult {
    let mut host = MetricsRegistry::new();
    run_distributed_local_elastic_observed(
        mesh, levels, order, partition, dt, u0, v0, n_steps, cfg, sources, &mut host,
    )
}

/// [`run_distributed_local_elastic`] with decomposer-phase spans and global
/// counter totals recorded into `host` (see the acoustic observed variant).
#[allow(clippy::too_many_arguments)]
pub fn run_distributed_local_elastic_observed(
    mesh: &HexMesh,
    levels: &Levels,
    order: usize,
    partition: &[u32],
    dt: f64,
    u0: &[f64],
    v0: &[f64],
    n_steps: usize,
    cfg: &DistributedConfig,
    sources: &[Source],
    host: &mut MetricsRegistry,
) -> RunResult {
    run_distributed_local_elastic_flight(
        mesh, levels, order, partition, dt, u0, v0, n_steps, cfg, sources, host,
    )
    .0
}

/// [`run_distributed_local_elastic_observed`] returning the flight-recorder
/// rings alongside the result (see the acoustic flight variant).
#[allow(clippy::too_many_arguments)]
pub fn run_distributed_local_elastic_flight(
    mesh: &HexMesh,
    levels: &Levels,
    order: usize,
    partition: &[u32],
    dt: f64,
    u0: &[f64],
    v0: &[f64],
    n_steps: usize,
    cfg: &DistributedConfig,
    sources: &[Source],
    host: &mut MetricsRegistry,
) -> (RunResult, Vec<RankRecording>) {
    let n_ranks = cfg.n_ranks;
    let discretize = host.start_span("decompose.discretize", None);
    let global_op = ElasticOperator::poisson(mesh, order);
    let setup = LtsSetup::new(&global_op, &levels.elem_level);
    let ndof = Operator::ndof(&global_op);
    assert_eq!(u0.len(), ndof);
    let plans = build_plans(&global_op, &setup, partition, n_ranks);
    let global_mass = global_op.mass().to_vec();
    drop(discretize);
    host.set_gauge("ndof", ndof as f64);
    host.set_gauge("n_ranks", n_ranks as f64);

    let worlds_span = host.start_span("decompose.build_worlds", None);
    let mut ranks: Vec<LocalRank<UnstructuredElastic>> = Vec::with_capacity(n_ranks);
    for (rank, plan) in plans.iter().enumerate() {
        let my_elems_global: Vec<u32> = (0..mesh.n_elems() as u32)
            .filter(|&e| partition[e as usize] == rank as u32)
            .collect();
        let (local_op, node_of_local) = UnstructuredElastic::from_subset(
            mesh,
            order,
            &my_elems_global,
            Some(&|g| global_mass[3 * g as usize]),
        );
        // dof translation: global dof = 3·node + comp
        let local_dof = |g: u32| -> u32 {
            let node = g / 3;
            let comp = g % 3;
            // Same decompose-time invariant as the acoustic variant:
            // plans never name foreign nodes.
            // lint: allow(no-panic) — decompose-time structural invariant
            3 * node_of_local.binary_search(&node).expect("node not owned") as u32 + comp
        };
        let local_elem: std::collections::HashMap<u32, u32> = my_elems_global
            .iter()
            .enumerate()
            .map(|(l, &g)| (g, l as u32))
            .collect();
        let nl = setup.n_levels;
        let map_dofs = |lists: &Vec<Vec<u32>>| -> Vec<Vec<u32>> {
            lists
                .iter()
                .map(|l| l.iter().map(|&d| local_dof(d)).collect())
                .collect()
        };
        let n_local_dofs = 3 * node_of_local.len();
        let localized = RankPlan {
            my_elems: (0..nl)
                .map(|l| plan.my_elems[l].iter().map(|e| local_elem[e]).collect())
                .collect(),
            my_boundary_elems: (0..nl)
                .map(|l| {
                    plan.my_boundary_elems[l]
                        .iter()
                        .map(|e| local_elem[e])
                        .collect()
                })
                .collect(),
            my_interior_elems: (0..nl)
                .map(|l| {
                    plan.my_interior_elems[l]
                        .iter()
                        .map(|e| local_elem[e])
                        .collect()
                })
                .collect(),
            my_zero: map_dofs(&plan.my_zero),
            my_active: map_dofs(&plan.my_active),
            my_leaf: map_dofs(&plan.my_leaf),
            my_dofs: (0..n_local_dofs as u32).collect(),
            peers: plan.peers.clone(),
            pair_dofs: plan
                .pair_dofs
                .iter()
                .map(|per_peer| {
                    per_peer
                        .iter()
                        .map(|l| l.iter().map(|&d| local_dof(d)).collect())
                        .collect()
                })
                .collect(),
            shared: plan
                .shared
                .iter()
                .map(|l| l.iter().map(|(d, r)| (local_dof(*d), r.clone())).collect())
                .collect(),
        };
        let global_dof_of_local: Vec<u32> = (0..n_local_dofs as u32)
            .map(|ld| 3 * node_of_local[(ld / 3) as usize] + ld % 3)
            .collect();
        let dof_level: Vec<u8> = global_dof_of_local
            .iter()
            .map(|&g| setup.dof_level[g as usize])
            .collect();
        let leaf_level: Vec<u8> = global_dof_of_local
            .iter()
            .map(|&g| setup.leaf_level[g as usize])
            .collect();
        let u_local: Vec<f64> = global_dof_of_local
            .iter()
            .map(|&g| u0[g as usize])
            .collect();
        let v_local: Vec<f64> = global_dof_of_local
            .iter()
            .map(|&g| v0[g as usize])
            .collect();
        let my_sources: Vec<Vec<(usize, u32)>> = {
            let mut per_level = vec![Vec::new(); nl];
            for (si, src) in sources.iter().enumerate() {
                let node = src.dof / 3;
                if let Ok(ln) = node_of_local.binary_search(&node) {
                    let ld = 3 * ln as u32 + src.dof % 3;
                    per_level[setup.leaf_level[src.dof as usize] as usize].push((si, ld));
                }
            }
            per_level
        };
        ranks.push(LocalRank {
            op: local_op,
            n_levels: nl,
            dof_level,
            leaf_level,
            plan: localized,
            u: u_local,
            v: v_local,
            my_sources,
            global_of_local: global_dof_of_local,
        });
    }
    drop(worlds_span);

    let run_span = host.start_span("run.steps", None);
    let (outcomes, recordings) = run_rank_contexts_recorded(ranks, dt, n_steps, cfg, sources);
    drop(run_span);
    let (results, stats) = match split_outcomes(outcomes) {
        Ok(pair) => pair,
        Err(e) => return (Err(e), recordings),
    };
    for s in &stats {
        host.merge_from(&s.registry);
    }

    let mut owner = vec![u32::MAX; ndof];
    for (rank, plan) in plans.iter().enumerate() {
        for &d in &plan.my_dofs {
            owner[d as usize] = owner[d as usize].min(rank as u32);
        }
    }
    let mut u = vec![0.0; ndof];
    let mut v = vec![0.0; ndof];
    for (rank, (u_local, v_local, global_of_local)) in results.into_iter().enumerate() {
        for (l, &g) in global_of_local.iter().enumerate() {
            if owner[g as usize] == rank as u32 {
                u[g as usize] = u_local[l];
                v[g as usize] = v_local[l];
            }
        }
    }
    (Ok((u, v, stats)), recordings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lts_core::LtsNewmark;
    use lts_mesh::BenchmarkMesh;
    use lts_mesh::MeshKind;
    use lts_partition::{partition_mesh, Strategy};
    use lts_sem::gll::cfl_dt_scale;

    fn serial(
        mesh: &HexMesh,
        levels: &Levels,
        order: usize,
        dt: f64,
        u0: &[f64],
        steps: usize,
        sources: &[Source],
    ) -> Vec<f64> {
        let op = AcousticOperator::new(mesh, order);
        let setup = LtsSetup::new(&op, &levels.elem_level);
        let mut u = u0.to_vec();
        let mut v = vec![0.0; u0.len()];
        let mut lts = LtsNewmark::new(&op, &setup, dt);
        lts.run(&mut u, &mut v, 0.0, steps, sources);
        u
    }

    #[test]
    fn local_memory_matches_serial() {
        let b = BenchmarkMesh::build(MeshKind::Trench, 600);
        let order = 2;
        let dt = b.levels.dt_global * cfl_dt_scale(order, 3);
        let op = AcousticOperator::new(&b.mesh, order);
        let ndof = Operator::ndof(&op);
        let u0: Vec<f64> = (0..ndof).map(|i| ((i as f64) * 0.07).sin()).collect();
        let reference = serial(&b.mesh, &b.levels, order, dt, &u0, 4, &[]);

        let n_ranks = 3;
        let part = partition_mesh(&b.mesh, &b.levels, n_ranks, Strategy::ScotchP, 1);
        let cfg = DistributedConfig::new(n_ranks);
        let (u, _, stats) = run_distributed_local_acoustic(
            &b.mesh,
            &b.levels,
            order,
            &part,
            dt,
            &u0,
            &vec![0.0; ndof],
            4,
            &cfg,
            &[],
        )
        .unwrap();
        let scale = reference.iter().fold(1.0f64, |m, &x| m.max(x.abs()));
        for i in 0..ndof {
            assert!(
                (u[i] - reference[i]).abs() <= 1e-12 * scale,
                "dof {i}: {} vs {}",
                u[i],
                reference[i]
            );
        }
        assert_eq!(stats.len(), n_ranks);
    }

    #[test]
    fn local_memory_with_sources_and_overlap() {
        let b = BenchmarkMesh::build(MeshKind::Embedding, 500);
        let order = 2;
        let dt = b.levels.dt_global * cfl_dt_scale(order, 3);
        let op = AcousticOperator::new(&b.mesh, order);
        let setup = LtsSetup::new(&op, &b.levels.elem_level);
        let ndof = Operator::ndof(&op);
        let src_dof = setup.leaf[0][setup.leaf[0].len() / 3];
        let mk = || vec![Source::ricker(src_dof, 0.3, 1.0, 1.0)];
        let reference = serial(&b.mesh, &b.levels, order, dt, &vec![0.0; ndof], 5, &mk());

        let n_ranks = 4;
        let part = partition_mesh(&b.mesh, &b.levels, n_ranks, Strategy::ScotchBaseline, 2);
        let cfg = DistributedConfig {
            overlap: true,
            ..DistributedConfig::new(n_ranks)
        };
        let srcs = mk();
        let (u, _, _) = run_distributed_local_acoustic(
            &b.mesh,
            &b.levels,
            order,
            &part,
            dt,
            &vec![0.0; ndof],
            &vec![0.0; ndof],
            5,
            &cfg,
            &srcs,
        )
        .unwrap();
        let scale = reference.iter().fold(1e-30f64, |m, &x| m.max(x.abs()));
        for i in 0..ndof {
            assert!(
                (u[i] - reference[i]).abs() <= 1e-11 * scale,
                "dof {i}: {} vs {}",
                u[i],
                reference[i]
            );
        }
    }

    #[test]
    fn local_memory_elastic_matches_serial() {
        let b = BenchmarkMesh::build(MeshKind::Trench, 400);
        let order = 2;
        let dt = b.levels.dt_global * cfl_dt_scale(order, 3);
        let op = lts_sem::ElasticOperator::poisson(&b.mesh, order);
        let setup = LtsSetup::new(&op, &b.levels.elem_level);
        let ndof = Operator::ndof(&op);
        let u0: Vec<f64> = (0..ndof).map(|i| ((i as f64) * 0.05).sin()).collect();
        let mut u_ref = u0.clone();
        let mut v_ref = vec![0.0; ndof];
        let mut lts = LtsNewmark::new(&op, &setup, dt);
        lts.run(&mut u_ref, &mut v_ref, 0.0, 3, &[]);

        let n_ranks = 3;
        let part = partition_mesh(&b.mesh, &b.levels, n_ranks, Strategy::ScotchP, 1);
        let cfg = DistributedConfig::new(n_ranks);
        let (u, _, _) = run_distributed_local_elastic(
            &b.mesh,
            &b.levels,
            order,
            &part,
            dt,
            &u0,
            &vec![0.0; ndof],
            3,
            &cfg,
            &[],
        )
        .unwrap();
        let scale = u_ref.iter().fold(1.0f64, |m, &x| m.max(x.abs()));
        for i in 0..ndof {
            assert!(
                (u[i] - u_ref[i]).abs() <= 1e-12 * scale,
                "dof {i}: {} vs {}",
                u[i],
                u_ref[i]
            );
        }
    }

    #[test]
    fn rank_memory_is_local() {
        // the per-rank DOF count must be ≈ ndof/k + surface, far below ndof
        let b = BenchmarkMesh::build(MeshKind::Crust, 1_500);
        let order = 2;
        let op = AcousticOperator::new(&b.mesh, order);
        let ndof = Operator::ndof(&op);
        let n_ranks = 8;
        let part = partition_mesh(&b.mesh, &b.levels, n_ranks, Strategy::ScotchP, 1);
        for rank in 0..n_ranks as u32 {
            let mine: Vec<u32> = (0..b.mesh.n_elems() as u32)
                .filter(|&e| part[e as usize] == rank)
                .collect();
            let (local, map) = UnstructuredAcoustic::from_subset(&b.mesh, order, &mine, None);
            assert!(
                lts_core::DofTopology::n_dofs(&local) < ndof / 4,
                "rank {rank}: {} local dofs of {} global",
                map.len(),
                ndof
            );
        }
    }
}
