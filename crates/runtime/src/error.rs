//! Error type for the distributed runtime.
//!
//! The rank loops used to `expect()` on channel operations; under the
//! workspace `no-panic` lint every fallible exchange step now surfaces a
//! [`RuntimeError`] instead. Failure of one rank cascades deterministically
//! through the transport's *goodbye* protocol (see
//! [`crate::transport::Transport`]): when a rank's endpoint closes — whether
//! from a clean exit, a panic unwinding the rank thread, or an injected
//! fault killing it mid-run — every peer observes a goodbye after the dead
//! rank's already-posted messages drain. A survivor that still awaits a
//! partial from that rank turns the goodbye into
//! [`RuntimeError::PeerDisconnected`] and unwinds, closing its own endpoint,
//! so the cascade reaches every rank of the communicator instead of
//! deadlocking the survivors. The fault-injection suite in
//! `tests/distributed_integration.rs` exercises exactly this property at
//! every LTS level.

use std::fmt;

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// A peer's endpoint is gone mid-exchange: either a send to it was
    /// refused, or its goodbye arrived while this rank still awaited a
    /// partial from it.
    PeerDisconnected {
        rank: usize,
        peer: usize,
        level: usize,
    },
    /// The whole fabric is gone: nothing can ever arrive again.
    ChannelClosed { rank: usize, level: usize },
    /// The exchange plan's shared-DOF list references a rank that is not in
    /// this rank's peer list for the level (plan construction bug).
    NotAPeer {
        rank: usize,
        peer: usize,
        level: usize,
    },
    /// A receive timed out while awaiting assembly partials (only with a
    /// timeout-injecting transport wrapper; real backends block).
    ExchangeTimeout { rank: usize, level: usize },
    /// An injected fault fired on this rank (see
    /// [`crate::transport::faulty::FaultyTransport`]).
    FaultInjected { rank: usize, level: usize },
    /// A peer's payload length did not match the exchange plan's shared-DOF
    /// count, or its level tag did not match the awaited exchange.
    BadPayload {
        rank: usize,
        peer: usize,
        level: usize,
    },
    /// The transport failed below the exchange protocol (socket I/O, wire
    /// codec).
    TransportIo {
        rank: usize,
        level: usize,
        detail: String,
    },
    /// A rank thread panicked (the panic payload is not preserved; the
    /// panic message itself goes to stderr when it happens).
    RankPanicked { rank: usize },
    /// A rank produced no result slot (internal bookkeeping bug).
    MissingRank { rank: usize },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::PeerDisconnected { rank, peer, level } => write!(
                f,
                "rank {rank}: peer {peer} hung up during level-{level} exchange"
            ),
            RuntimeError::ChannelClosed { rank, level } => write!(
                f,
                "rank {rank}: transport closed while awaiting level-{level} partials"
            ),
            RuntimeError::NotAPeer { rank, peer, level } => write!(
                f,
                "rank {rank}: shared-DOF list names rank {peer}, not a level-{level} peer"
            ),
            RuntimeError::ExchangeTimeout { rank, level } => {
                write!(f, "rank {rank}: timed out awaiting level-{level} partials")
            }
            RuntimeError::FaultInjected { rank, level } => write!(
                f,
                "rank {rank}: injected fault fired during level-{level} exchange"
            ),
            RuntimeError::BadPayload { rank, peer, level } => write!(
                f,
                "rank {rank}: malformed level-{level} partial from peer {peer}"
            ),
            RuntimeError::TransportIo {
                rank,
                level,
                detail,
            } => write!(
                f,
                "rank {rank}: transport failure during level-{level} exchange: {detail}"
            ),
            RuntimeError::RankPanicked { rank } => write!(f, "rank {rank} panicked"),
            RuntimeError::MissingRank { rank } => write!(f, "no result from rank {rank}"),
        }
    }
}

impl std::error::Error for RuntimeError {}
