//! Error type for the distributed runtime.
//!
//! The rank loops used to `expect()` on channel operations; under the
//! workspace `no-panic` lint every fallible exchange step now surfaces a
//! [`RuntimeError`] instead. Failure of one rank cascades cleanly: when its
//! thread returns, its channel senders drop, peers' `recv()` calls fail
//! with [`RuntimeError::ChannelClosed`], and the whole run unwinds to the
//! caller rather than deadlocking the surviving ranks.

use std::fmt;

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// A send to `peer` failed: its receiver was dropped mid-exchange.
    PeerDisconnected {
        rank: usize,
        peer: usize,
        level: usize,
    },
    /// `recv()` failed while awaiting assembly partials: every sender is
    /// gone, so some peer exited early.
    ChannelClosed { rank: usize, level: usize },
    /// The exchange plan's shared-DOF list references a rank that is not in
    /// this rank's peer list for the level (plan construction bug).
    NotAPeer {
        rank: usize,
        peer: usize,
        level: usize,
    },
    /// A rank thread panicked (the panic payload is not preserved; the
    /// panic message itself goes to stderr when it happens).
    RankPanicked { rank: usize },
    /// A rank produced no result slot (internal bookkeeping bug).
    MissingRank { rank: usize },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            RuntimeError::PeerDisconnected { rank, peer, level } => write!(
                f,
                "rank {rank}: peer {peer} hung up during level-{level} exchange"
            ),
            RuntimeError::ChannelClosed { rank, level } => write!(
                f,
                "rank {rank}: channel closed while awaiting level-{level} partials"
            ),
            RuntimeError::NotAPeer { rank, peer, level } => write!(
                f,
                "rank {rank}: shared-DOF list names rank {peer}, not a level-{level} peer"
            ),
            RuntimeError::RankPanicked { rank } => write!(f, "rank {rank} panicked"),
            RuntimeError::MissingRank { rank } => write!(f, "no result from rank {rank}"),
        }
    }
}

impl std::error::Error for RuntimeError {}
