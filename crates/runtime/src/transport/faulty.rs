//! Fault injection: wrap any [`Transport`] and make it misbehave on cue.
//!
//! The decorator is how the fault-cascade tests turn "a rank dies mid-run"
//! from a thought experiment into a deterministic event: *die on the first
//! send at LTS level k* kills the victim exactly at that barrier point, and
//! death is implemented by dropping the inner endpoint — so peers observe
//! the same goodbye cascade a real crash would produce.

use super::{Recv, Transport, TransportError, TransportMetrics};
use std::time::Duration;

/// What to inject. All fields compose; `Default` injects nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultPlan {
    /// Sleep this long before every send (slow-network shaping).
    pub send_delay_us: u64,
    /// Silently drop every `n`-th send (1-based count; `Some(3)` drops
    /// sends 3, 6, 9, …).
    pub drop_every: Option<u64>,
    /// Die (drop the inner endpoint) on the first send tagged with this
    /// LTS level.
    pub die_on_send_at_level: Option<u8>,
    /// Die after this many successful sends.
    pub die_after_sends: Option<u64>,
    /// Impose a receive timeout even when the caller blocks, so a peer's
    /// dropped message surfaces as [`TransportError::Timeout`] instead of a
    /// hang.
    pub recv_timeout_ms: Option<u64>,
}

/// A [`Transport`] that follows a [`FaultPlan`]. Once dead, every call
/// returns [`TransportError::Injected`].
pub struct FaultyTransport<T: Transport> {
    inner: Option<T>,
    plan: FaultPlan,
    sends: u64,
}

impl<T: Transport> FaultyTransport<T> {
    pub fn new(inner: T, plan: FaultPlan) -> FaultyTransport<T> {
        FaultyTransport {
            inner: Some(inner),
            plan,
            sends: 0,
        }
    }

    /// Kill this endpoint now: drops the inner transport, which delivers
    /// its goodbye to every peer.
    pub fn die(&mut self) {
        self.inner = None;
    }

    pub fn is_dead(&self) -> bool {
        self.inner.is_none()
    }
}

/// Box a faulty wrapper over an already boxed endpoint (what the test
/// harness pulls out of a cluster).
pub fn wrap(inner: Box<dyn Transport>, plan: FaultPlan) -> Box<dyn Transport> {
    Box::new(FaultyTransport::new(inner, plan))
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn rank(&self) -> usize {
        self.inner.as_ref().map_or(usize::MAX, |t| t.rank())
    }

    fn n_ranks(&self) -> usize {
        self.inner.as_ref().map_or(0, |t| t.n_ranks())
    }

    fn backend(&self) -> &'static str {
        "faulty"
    }

    fn send(
        &mut self,
        peer: usize,
        level: u8,
        seq: u64,
        payload: &[f64],
    ) -> Result<(), TransportError> {
        let Some(inner) = self.inner.as_mut() else {
            return Err(TransportError::Injected);
        };
        if self.plan.die_on_send_at_level == Some(level) {
            self.die();
            return Err(TransportError::Injected);
        }
        if self.plan.send_delay_us > 0 {
            std::thread::sleep(Duration::from_micros(self.plan.send_delay_us));
        }
        self.sends += 1;
        if let Some(n) = self.plan.drop_every {
            if n > 0 && self.sends.is_multiple_of(n) {
                // swallowed: the peer never sees it, and no error here
                return Ok(());
            }
        }
        let r = inner.send(peer, level, seq, payload);
        if let Some(limit) = self.plan.die_after_sends {
            if self.sends >= limit {
                self.die();
            }
        }
        r
    }

    fn flush(&mut self) -> Result<(), TransportError> {
        match self.inner.as_mut() {
            Some(t) => t.flush(),
            None => Err(TransportError::Injected),
        }
    }

    fn recv_into_timeout(
        &mut self,
        buf: &mut Vec<f64>,
        timeout: Option<Duration>,
    ) -> Result<Recv, TransportError> {
        let Some(inner) = self.inner.as_mut() else {
            return Err(TransportError::Injected);
        };
        let injected = self.plan.recv_timeout_ms.map(Duration::from_millis);
        let effective = match (timeout, injected) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        inner.recv_into_timeout(buf, effective)
    }

    fn try_recv_into(&mut self, buf: &mut Vec<f64>) -> Result<Option<Recv>, TransportError> {
        match self.inner.as_mut() {
            Some(inner) => inner.try_recv_into(buf),
            None => Err(TransportError::Injected),
        }
    }

    fn metrics(&self) -> TransportMetrics {
        self.inner.as_ref().map(|t| t.metrics()).unwrap_or_default()
    }

    fn close(&mut self) {
        if let Some(t) = self.inner.as_mut() {
            t.close();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::channel::channel_cluster;
    use super::super::Recv;
    use super::*;

    #[test]
    fn death_at_level_cascades_a_goodbye() {
        let mut eps = channel_cluster(2);
        let mut b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let mut a = FaultyTransport::new(
            a,
            FaultPlan {
                die_on_send_at_level: Some(2),
                ..FaultPlan::default()
            },
        );
        a.send(1, 0, 0, &[1.0]).unwrap();
        assert_eq!(a.send(1, 2, 1, &[2.0]), Err(TransportError::Injected));
        assert!(a.is_dead());
        assert_eq!(a.send(1, 0, 2, &[3.0]), Err(TransportError::Injected));
        let mut buf = Vec::new();
        assert_eq!(
            b.recv_into(&mut buf).unwrap(),
            Recv::Msg {
                from: 0,
                level: 0,
                seq: 0
            }
        );
        assert_eq!(b.recv_into(&mut buf).unwrap(), Recv::Goodbye { from: 0 });
    }

    #[test]
    fn dropped_sends_vanish_silently() {
        let mut eps = channel_cluster(2);
        let mut b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let mut a = FaultyTransport::new(
            a,
            FaultPlan {
                drop_every: Some(2),
                ..FaultPlan::default()
            },
        );
        for i in 0..4u32 {
            a.send(1, 0, u64::from(i), &[f64::from(i)]).unwrap();
        }
        drop(a);
        let mut buf = Vec::new();
        let mut got = Vec::new();
        while let Recv::Msg { .. } = b.recv_into(&mut buf).unwrap() {
            got.push(buf[0]);
        }
        assert_eq!(got, vec![0.0, 2.0]);
    }
}
