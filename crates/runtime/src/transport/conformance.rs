//! The transport-conformance battery: one parametric suite every backend
//! must pass, so "pluggable" means *interchangeable* rather than "compiles
//! against the trait".
//!
//! The checks pin down exactly the contract the distributed stepper relies
//! on (see the [`super::Transport`] docs): per-sender FIFO, correct
//! addressing, payload bit integrity through whatever encoding the backend
//! uses, level-tag preservation, delivery under backpressure with a slow
//! receiver, and the goodbye-based disconnect semantics. Each check builds
//! a fresh cluster from the caller's factory; `tests/transport_conformance.rs`
//! runs the suite over all three backends (plus a delay-injecting faulty
//! wrapper, which must change nothing).

use super::faulty::{self, FaultPlan};
use super::{Recv, Transport, TransportError};
use lts_obs::{merge_recordings, EventKind, FlightRecorder};
use std::time::Duration;

/// Per-check patience: generous, because CI machines stall, but bounded,
/// because a deadlocked backend must fail rather than hang the suite.
const PATIENCE: Duration = Duration::from_secs(5);

/// Which optional checks to run. All on by default; a harness wrapping the
/// fabric in message-dropping faults would disable the delivery checks.
#[derive(Debug, Clone, Copy)]
pub struct Checks {
    pub backpressure: bool,
    pub disconnect: bool,
}

impl Default for Checks {
    fn default() -> Self {
        Checks {
            backpressure: true,
            disconnect: true,
        }
    }
}

/// The suite's assertion primitive for fallible transport calls.
fn must<T, E: std::fmt::Debug>(what: &str, r: Result<T, E>) -> T {
    match r {
        Ok(v) => v,
        // lint: allow(no-panic) — conformance failures must abort the test
        Err(e) => panic!("conformance: {what}: {e:?}"),
    }
}

/// Receive the next *message* (skipping goodbyes) within [`PATIENCE`].
fn next_msg(ep: &mut dyn Transport, buf: &mut Vec<f64>, what: &str) -> (usize, u8, u64) {
    loop {
        match must(what, ep.recv_into_timeout(buf, Some(PATIENCE))) {
            Recv::Msg { from, level, seq } => return (from, level, seq),
            Recv::Goodbye { .. } => {}
        }
    }
}

/// Run every check against clusters built by `make`.
pub fn run_suite<F>(make: F, checks: Checks)
where
    F: Fn(usize) -> Vec<Box<dyn Transport>>,
{
    fifo_and_addressing(&make);
    payload_bit_integrity(&make);
    level_tags_preserved(&make);
    polling_loses_nothing(&make);
    goodbye_after_drain(&make);
    if checks.backpressure {
        delivery_under_backpressure(&make);
    }
    if checks.disconnect {
        disconnect_observed(&make);
        survivors_keep_talking(&make);
    }
}

/// Two senders interleave K numbered messages to one receiver; each
/// sender's stream must arrive in order, and a third party's single message
/// must reach *it* and nobody else.
fn fifo_and_addressing<F: Fn(usize) -> Vec<Box<dyn Transport>>>(make: &F) {
    const K: u32 = 40;
    let mut eps = make(3);
    let mut receiver = must("cluster of 3", eps.pop().ok_or("missing ep2"));
    let bystander = must("cluster of 3", eps.pop().ok_or("missing ep1"));
    let mut sender0 = must("cluster of 3", eps.pop().ok_or("missing ep0"));

    must("side send 0→1", sender0.send(1, 9, 7, &[42.0]));
    let senders: Vec<_> = [sender0, bystander]
        .into_iter()
        .enumerate()
        .map(|(who, mut ep)| {
            std::thread::spawn(move || {
                for i in 0..K {
                    let payload = [who as f64 * 1000.0 + f64::from(i)];
                    let seq = u64::from(i) * 2 + who as u64;
                    must("numbered send", ep.send(2, (i % 3) as u8, seq, &payload));
                }
                ep
            })
        })
        .collect();

    let mut buf = Vec::new();
    let mut next_expected = [0u32; 2];
    for _ in 0..2 * K {
        let (from, level, seq) = next_msg(receiver.as_mut(), &mut buf, "numbered recv");
        assert!(from < 2, "receiver 2 got a message from itself?");
        let i = next_expected[from];
        assert_eq!(
            buf,
            &[from as f64 * 1000.0 + f64::from(i)],
            "sender {from}: message {i} out of order"
        );
        assert_eq!(level, (i % 3) as u8, "sender {from}: level tag wrong");
        assert_eq!(
            seq,
            u64::from(i) * 2 + from as u64,
            "sender {from}: seq mangled"
        );
        next_expected[from] = i + 1;
    }
    assert_eq!(next_expected, [K; 2]);

    // the bystander (rank 1) got exactly the one side message
    let mut eps_back: Vec<Box<dyn Transport>> = senders
        .into_iter()
        .map(|h| must("join sender", h.join().map_err(|_| "sender panicked")))
        .collect();
    let mut ep1 = must("rank 1 endpoint", eps_back.pop().ok_or("missing ep1"));
    let (from, level, seq) = next_msg(ep1.as_mut(), &mut buf, "side recv");
    assert_eq!((from, level, seq), (0, 9, 7));
    assert_eq!(buf, &[42.0]);
}

/// Interleaving non-blocking polls with blocking receives must observe the
/// same per-sender FIFO stream — `try_recv_into` may say "nothing ready"
/// (a backend that cannot poll always does) but must never lose, duplicate
/// or reorder a message.
fn polling_loses_nothing<F: Fn(usize) -> Vec<Box<dyn Transport>>>(make: &F) {
    const K: u32 = 30;
    let mut eps = make(2);
    let mut receiver = must("cluster of 2", eps.pop().ok_or("missing ep1"));
    let sender = must("cluster of 2", eps.pop().ok_or("missing ep0"));
    // send from a thread: a bounded backend would deadlock a same-thread
    // send-all-then-receive loop on backpressure
    let sender = std::thread::spawn(move || {
        let mut sender = sender;
        for i in 0..K {
            must(
                "poll send",
                sender.send(1, (i % 5) as u8, u64::from(i), &[f64::from(i)]),
            );
        }
        sender
    });
    let mut buf = Vec::new();
    let mut got = 0u32;
    let deadline = std::time::Instant::now() + PATIENCE;
    while got < K {
        // alternate polls and blocking receives so both paths interleave
        let recv = if got.is_multiple_of(2) {
            match must("try_recv", receiver.try_recv_into(&mut buf)) {
                Some(r) => r,
                None => {
                    assert!(
                        std::time::Instant::now() < deadline,
                        "poll/recv mix starved after {got} of {K} messages"
                    );
                    must(
                        "recv after empty poll",
                        receiver.recv_into_timeout(&mut buf, Some(PATIENCE)),
                    )
                }
            }
        } else {
            must("recv", receiver.recv_into_timeout(&mut buf, Some(PATIENCE)))
        };
        if let Recv::Msg { from, level, seq } = recv {
            assert_eq!(from, 0);
            assert_eq!(buf, &[f64::from(got)], "message {got} lost or reordered");
            assert_eq!(level, (got % 5) as u8, "message {got}: level tag wrong");
            assert_eq!(seq, u64::from(got), "message {got}: seq mangled");
            got += 1;
        }
    }
    drop(must(
        "join poll sender",
        sender.join().map_err(|_| "sender panicked"),
    ));
}

/// Every special `f64` must cross the fabric with an identical bit pattern.
fn payload_bit_integrity<F: Fn(usize) -> Vec<Box<dyn Transport>>>(make: &F) {
    let specials: Vec<Vec<f64>> = vec![
        vec![
            f64::from_bits(0x7ff8_0000_dead_beef), // a payloaded NaN
            f64::INFINITY,
            f64::NEG_INFINITY,
            -0.0,
            f64::from_bits(1), // smallest subnormal
            1e-310,
            1.0 + f64::EPSILON,
        ],
        vec![], // empty halo (a rank with peers but no shared DOFs at a level)
        (0..8192)
            .map(|i| f64::from_bits((i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
            .collect(),
    ];
    let mut eps = make(2);
    let mut b = must("cluster of 2", eps.pop().ok_or("missing ep1"));
    let a = must("cluster of 2", eps.pop().ok_or("missing ep0"));
    let expected = specials.clone();
    let sender = std::thread::spawn(move || {
        let mut a = a;
        for (i, p) in specials.iter().enumerate() {
            must("special send", a.send(1, 0, i as u64, p));
        }
        a
    });
    let mut buf = Vec::new();
    for want in &expected {
        let (from, _, _) = next_msg(b.as_mut(), &mut buf, "special recv");
        assert_eq!(from, 0);
        assert_eq!(buf.len(), want.len());
        for (got, want) in buf.iter().zip(want) {
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "payload bits mangled: {got:?} vs {want:?}"
            );
        }
    }
    drop(must("join sender", sender.join().map_err(|_| "panicked")));
}

/// The level byte rides along untouched, over its full range.
fn level_tags_preserved<F: Fn(usize) -> Vec<Box<dyn Transport>>>(make: &F) {
    let levels = [0u8, 1, 2, 7, 31, 254, 255];
    let mut eps = make(2);
    let mut b = must("cluster of 2", eps.pop().ok_or("missing ep1"));
    let a = must("cluster of 2", eps.pop().ok_or("missing ep0"));
    // a bounded fabric may block the sender, so it gets its own thread
    let sender = std::thread::spawn(move || {
        let mut a = a;
        for &l in &levels {
            // stress the full seq width alongside the level byte
            let seq = u64::from(l).wrapping_mul(0x0101_0101_0101_0101);
            must("tagged send", a.send(1, l, seq, &[f64::from(l)]));
        }
        a
    });
    let mut buf = Vec::new();
    for &l in &levels {
        let (_, level, seq) = next_msg(b.as_mut(), &mut buf, "tagged recv");
        assert_eq!(level, l);
        assert_eq!(seq, u64::from(l).wrapping_mul(0x0101_0101_0101_0101));
        assert_eq!(buf, &[f64::from(l)]);
    }
    drop(must("join sender", sender.join().map_err(|_| "panicked")));
}

/// A closed endpoint's goodbye arrives strictly after its queued messages.
fn goodbye_after_drain<F: Fn(usize) -> Vec<Box<dyn Transport>>>(make: &F) {
    let mut eps = make(2);
    let mut b = must("cluster of 2", eps.pop().ok_or("missing ep1"));
    let a = must("cluster of 2", eps.pop().ok_or("missing ep0"));
    // sends may block on a bounded fabric; drop-at-thread-end is the close
    let sender = std::thread::spawn(move || {
        let mut a = a;
        for i in 0..3u32 {
            must(
                "pre-goodbye send",
                a.send(1, 0, u64::from(i), &[f64::from(i)]),
            );
        }
    });
    let mut buf = Vec::new();
    for i in 0..3u32 {
        match must("drain recv", b.recv_into_timeout(&mut buf, Some(PATIENCE))) {
            Recv::Msg { from, .. } => {
                assert_eq!(from, 0);
                assert_eq!(buf, &[f64::from(i)], "drain out of order");
            }
            Recv::Goodbye { .. } => {
                // lint: allow(no-panic) — conformance assertion
                panic!("goodbye overtook {} undelivered messages", 3 - i);
            }
        }
    }
    let r = must(
        "goodbye recv",
        b.recv_into_timeout(&mut buf, Some(PATIENCE)),
    );
    assert_eq!(r, Recv::Goodbye { from: 0 });
    must("join sender", sender.join().map_err(|_| "panicked"));
}

/// A slow receiver must still get every message, in order — bounded
/// backends block the sender (backpressure), unbounded ones buffer; either
/// way nothing is lost or reordered.
fn delivery_under_backpressure<F: Fn(usize) -> Vec<Box<dyn Transport>>>(make: &F) {
    const K: u32 = 100;
    const WIDTH: usize = 256;
    let mut eps = make(2);
    let mut b = must("cluster of 2", eps.pop().ok_or("missing ep1"));
    let a = must("cluster of 2", eps.pop().ok_or("missing ep0"));
    let sender = std::thread::spawn(move || {
        let mut a = a;
        let mut payload = [0.0f64; WIDTH];
        for i in 0..K {
            payload[0] = f64::from(i);
            must("bulk send", a.send(1, 0, u64::from(i), &payload));
        }
        a.metrics()
    });
    std::thread::sleep(Duration::from_millis(25)); // let the fabric fill
    let mut buf = Vec::new();
    for i in 0..K {
        let (from, _, _) = next_msg(b.as_mut(), &mut buf, "bulk recv");
        assert_eq!(from, 0);
        assert_eq!(buf.len(), WIDTH);
        assert_eq!(
            buf[0].to_bits(),
            f64::from(i).to_bits(),
            "bulk out of order"
        );
    }
    let m = must("join sender", sender.join().map_err(|_| "panicked"));
    assert_eq!(m.msgs_sent, u64::from(K));
}

/// Dropping one endpoint must surface as a goodbye on every survivor within
/// the patience window — the property the fault-cascade tests build on.
fn disconnect_observed<F: Fn(usize) -> Vec<Box<dyn Transport>>>(make: &F) {
    let mut eps = make(3);
    let victim = eps.remove(0);
    drop(victim);
    let mut buf = Vec::new();
    for ep in &mut eps {
        let r = must(
            "disconnect recv",
            ep.recv_into_timeout(&mut buf, Some(PATIENCE)),
        );
        assert_eq!(
            r,
            Recv::Goodbye { from: 0 },
            "rank {} did not observe the disconnect",
            ep.rank()
        );
    }
}

/// After one rank dies, the survivors' links still work.
fn survivors_keep_talking<F: Fn(usize) -> Vec<Box<dyn Transport>>>(make: &F) {
    let mut eps = make(3);
    let victim = eps.remove(0);
    drop(victim);
    let mut b = must("cluster of 3", eps.pop().ok_or("missing ep2"));
    let mut a = must("cluster of 3", eps.pop().ok_or("missing ep1"));
    must("survivor send", a.send(2, 1, 0, &[3.5]));
    let mut buf = Vec::new();
    let (from, level, _) = next_msg(b.as_mut(), &mut buf, "survivor recv");
    assert_eq!((from, level), (1, 1));
    assert_eq!(buf, &[3.5]);
}

/// Flight-recorder seq matching survives injected faults: silently dropped
/// sends leave *gaps* in the delivered seq stream and forced receive
/// timeouts interleave with real deliveries, yet the recorder events taken
/// at the transport boundary still merge into a causally valid order — no
/// recv ever pairs with the wrong send, and a drop never shifts later
/// payloads onto earlier seqs.
pub fn seq_integrity_under_faults<F: Fn(usize) -> Vec<Box<dyn Transport>>>(make: F) {
    const K: u64 = 30;
    let mut eps = make(2);
    let receiver = must("cluster of 2", eps.pop().ok_or("missing ep1"));
    let sender = must("cluster of 2", eps.pop().ok_or("missing ep0"));
    let mut sender = faulty::wrap(
        sender,
        FaultPlan {
            drop_every: Some(3),
            ..FaultPlan::default()
        },
    );
    // force short receive timeouts so the Timeout path interleaves with
    // real deliveries on the receiver side
    let mut receiver = faulty::wrap(
        receiver,
        FaultPlan {
            recv_timeout_ms: Some(5),
            ..FaultPlan::default()
        },
    );

    let epoch = std::time::Instant::now();
    let send_thread = std::thread::spawn(move || {
        let mut flight = FlightRecorder::with_epoch(256, epoch);
        for seq in 0..K {
            if seq % 7 == 0 {
                // pace a few sends so receiver timeouts actually fire
                std::thread::sleep(Duration::from_millis(12));
            }
            must(
                "faulty send",
                sender.send(1, (seq % 3) as u8, seq, &[seq as f64]),
            );
            flight.record(EventKind::Send, (seq % 3) as u8, 0, 1, seq);
        }
        drop(sender); // goodbye unblocks the receive loop
        flight.snapshot(0)
    });

    let mut flight = FlightRecorder::with_epoch(256, epoch);
    let mut buf = Vec::new();
    let mut delivered = Vec::new();
    let mut timeouts = 0u64;
    let deadline = std::time::Instant::now() + PATIENCE;
    loop {
        match receiver.recv_into_timeout(&mut buf, Some(PATIENCE)) {
            Ok(Recv::Msg { from, level, seq }) => {
                assert_eq!(from, 0);
                assert_eq!(level, (seq % 3) as u8, "level/seq desync after drops");
                assert_eq!(buf, &[seq as f64], "payload/seq desync after drops");
                flight.record(EventKind::Recv, level, 0, from as u32, seq);
                delivered.push(seq);
            }
            Ok(Recv::Goodbye { .. }) => break,
            Err(TransportError::Timeout) => timeouts += 1,
            // lint: allow(no-panic) — conformance assertion
            Err(e) => panic!("conformance: faulty recv: {e:?}"),
        }
        assert!(
            std::time::Instant::now() < deadline,
            "faulty receive loop starved after {} of {K} messages",
            delivered.len()
        );
    }
    let send_rec = must("join sender", send_thread.join().map_err(|_| "panicked"));
    let _ = timeouts; // timeouts are legal in any count, including zero

    // drop-every-3 swallows seqs 2, 5, 8, …; everything else arrives in
    // order with gaps, on its original seq
    let expected: Vec<u64> = (0..K).filter(|s| (s + 1) % 3 != 0).collect();
    assert_eq!(delivered, expected, "drops desynced the seq stream");

    // the two recordings — with send-side gaps unmatched — still merge into
    // a causal order in which every recv is lamport-after its matching send
    let recv_rec = flight.snapshot(1);
    let merged = must("causal merge", merge_recordings(&[send_rec, recv_rec]));
    let mut send_lamport = std::collections::BTreeMap::new();
    for m in &merged {
        if m.rank == 0 && m.ev.kind == EventKind::Send {
            send_lamport.insert(m.ev.seq, m.lamport);
        }
    }
    for m in &merged {
        if m.rank == 1 && m.ev.kind == EventKind::Recv {
            let sent = must(
                "recv without a send",
                send_lamport.get(&m.ev.seq).ok_or(m.ev.seq),
            );
            assert!(
                m.lamport > *sent,
                "recv of seq {} ordered before its send",
                m.ev.seq
            );
        }
    }
}
