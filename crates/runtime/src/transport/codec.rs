//! The versioned, length-prefixed wire codec for halo payloads and monitor
//! stats — what [`super::socket::SocketTransport`] and the multi-process
//! runner ([`crate::process`]) put on the wire.
//!
//! Every frame is a 12-byte little-endian header followed by `body_len`
//! bytes of body:
//!
//! ```text
//! offset  size  field
//!      0     4  magic      0x5754_4C53 ("SLTW" on the wire, LE)
//!      4     2  version    2
//!      6     1  kind       0 Hello · 1 Halo · 2 Goodbye · 3 Stats · 4 Done
//!                          · 5 Flight
//!      7     1  reserved   0
//!      8     4  body_len
//! ```
//!
//! Version 2 extends the Halo body with the sender's per-directed-edge
//! sequence number (after the level byte — `src`/`dst` keep their offsets
//! so the star router's destination peek is layout-stable) and adds the
//! `Flight` frame carrying a rank's drained flight-recorder ring, so
//! recordings from real OS processes causally align with in-process runs.
//!
//! Payload `f64`s travel as raw IEEE-754 bit patterns (`to_bits`, LE), so a
//! multi-process run reproduces in-process fields *bitwise* — including NaN
//! payloads, signed zeros and subnormals. Decoding never panics: every read
//! is bounds-checked and malformed input surfaces a [`CodecError`].

use crate::stats::{names, RankStats, TimelineEvent};
use lts_obs::{
    EventKind, FlightEvent, Histogram, Key, MetricsRegistry, RankRecording, HIST_BUCKETS,
};

pub const MAGIC: u32 = 0x5754_4C53;
pub const VERSION: u16 = 2;
/// Upper bound on `body_len`: rejects absurd allocations from corrupt
/// headers before any buffer is sized.
pub const MAX_BODY: u32 = 1 << 28;
/// Header size in bytes.
pub const HEADER_LEN: usize = 12;

/// `level` encoding for level-less metric keys.
const NO_LEVEL: u8 = u8::MAX;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// Fewer bytes than a complete frame; not an error on a growing buffer.
    Truncated,
    BadMagic(u32),
    BadVersion(u16),
    UnknownKind(u8),
    /// `body_len` exceeds [`MAX_BODY`].
    Oversize(u32),
    /// Structurally invalid body (internal counts disagree with the length).
    Malformed(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            CodecError::Truncated => write!(f, "frame truncated"),
            CodecError::BadMagic(m) => write!(f, "bad magic 0x{m:08x}"),
            CodecError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            CodecError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            CodecError::Oversize(n) => write!(f, "body length {n} exceeds cap"),
            CodecError::Malformed(what) => write!(f, "malformed body: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// A rank's metrics in wire form: the runtime's fixed metric table (id ↔
/// name) plus the optional exchange timeline. Only metrics in the table
/// cross the wire; free-form keys stay process-local.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WireStats {
    /// `(metric id, level | 255, value)`
    pub counters: Vec<(u8, u8, u64)>,
    /// `(metric id, level | 255, histogram)`
    pub hists: Vec<(u8, u8, Histogram)>,
    /// `(metric id, level | 255, value)`
    pub gauges: Vec<(u8, u8, f64)>,
    pub timeline: Vec<TimelineEvent>,
}

/// The fixed metric-id tables. `Key.name` is `&'static str`, so wire-decoded
/// stats can only rebuild metrics whose names are baked in here.
const COUNTER_NAMES: [&str; 7] = [
    names::ELEM_OPS,
    names::EXCHANGES,
    names::MSGS_SENT,
    names::DOFS_SENT,
    names::STALL_WARNINGS,
    names::EXCHANGE_READY,
    // appended in wire version 2; appending keeps earlier ids stable
    names::STALL_WINDOWS,
];
const HIST_NAMES: [&str; 2] = [names::BUSY, names::WAIT];
const GAUGE_NAMES: [&str; 4] = [
    names::STALL_WAIT_FRAC_WM,
    names::STALL_LAMBDA,
    names::STALL_LAMBDA_WM,
    names::ELEM_OPS_PER_SEC,
];

fn table_id(table: &[&str], name: &str) -> Option<u8> {
    table.iter().position(|&n| n == name).map(|i| i as u8)
}

fn wire_level(level: Option<u8>) -> u8 {
    match level {
        Some(l) if l < NO_LEVEL => l,
        _ => NO_LEVEL,
    }
}

fn key_level(wire: u8) -> Option<u8> {
    if wire == NO_LEVEL {
        None
    } else {
        Some(wire)
    }
}

impl WireStats {
    /// Capture the table-known metrics of one rank's view.
    pub fn from_rank_stats(stats: &RankStats) -> WireStats {
        let mut out = WireStats {
            timeline: stats.timeline.clone(),
            ..WireStats::default()
        };
        for (key, metric) in stats.registry.iter() {
            if key.label.is_some() {
                continue;
            }
            let lvl = wire_level(key.level);
            match metric {
                lts_obs::Metric::Counter(c) => {
                    if let Some(id) = table_id(&COUNTER_NAMES, key.name) {
                        out.counters.push((id, lvl, *c));
                    }
                }
                lts_obs::Metric::Histogram(h) => {
                    if let Some(id) = table_id(&HIST_NAMES, key.name) {
                        out.hists.push((id, lvl, h.clone()));
                    }
                }
                lts_obs::Metric::Gauge(g) => {
                    if let Some(id) = table_id(&GAUGE_NAMES, key.name) {
                        out.gauges.push((id, lvl, *g));
                    }
                }
            }
        }
        out
    }

    /// Rebuild a [`RankStats`] view (exact counters, exact histogram
    /// contents) for `rank`.
    pub fn into_rank_stats(self, rank: usize) -> RankStats {
        let mut reg = MetricsRegistry::new();
        for (id, lvl, c) in &self.counters {
            if let Some(&name) = COUNTER_NAMES.get(*id as usize) {
                reg.inc_key(
                    Key {
                        name,
                        level: key_level(*lvl),
                        label: None,
                    },
                    *c,
                );
            }
        }
        for (id, lvl, h) in &self.hists {
            if let Some(&name) = HIST_NAMES.get(*id as usize) {
                reg.set_histogram(
                    Key {
                        name,
                        level: key_level(*lvl),
                        label: None,
                    },
                    h.clone(),
                );
            }
        }
        for (id, lvl, g) in &self.gauges {
            if let Some(&name) = GAUGE_NAMES.get(*id as usize) {
                match key_level(*lvl) {
                    Some(l) => reg.set_gauge_level(name, l, *g),
                    None => reg.set_gauge(name, *g),
                }
            }
        }
        RankStats::from_registry(rank, reg, self.timeline)
    }
}

/// One wire frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Worker → router handshake: which rank this connection carries.
    Hello { rank: u32 },
    /// A halo payload from `src` to `dst`, tagged with its LTS level and
    /// the sender's per-directed-edge sequence number.
    Halo {
        src: u32,
        dst: u32,
        level: u8,
        seq: u64,
        payload: Vec<f64>,
    },
    /// `rank`'s endpoint is gone; no further frames from it.
    Goodbye { rank: u32 },
    /// End-of-run metrics of `rank`.
    Stats { rank: u32, stats: WireStats },
    /// End-of-run fields of `rank` in rank-local numbering plus the
    /// local→global DOF map.
    Done {
        rank: u32,
        u: Vec<f64>,
        v: Vec<f64>,
        global_of_local: Vec<u32>,
    },
    /// A rank's drained flight-recorder ring (post-mortem collection).
    Flight { recording: RankRecording },
}

impl Frame {
    fn kind(&self) -> u8 {
        match self {
            Frame::Hello { .. } => 0,
            Frame::Halo { .. } => 1,
            Frame::Goodbye { .. } => 2,
            Frame::Stats { .. } => 3,
            Frame::Done { .. } => 4,
            Frame::Flight { .. } => 5,
        }
    }
}

// ---- encoding ------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_f64s(out: &mut Vec<u8>, vs: &[f64]) {
    put_u32(out, vs.len() as u32);
    for &x in vs {
        put_f64(out, x);
    }
}

fn put_hist(out: &mut Vec<u8>, h: &Histogram) {
    put_u64(out, h.count);
    put_f64(out, h.sum);
    put_f64(out, h.min);
    put_f64(out, h.max);
    for &b in h.buckets.iter() {
        put_u64(out, b);
    }
}

/// Append `frame`'s bytes (header + body) to `out`.
pub fn encode(frame: &Frame, out: &mut Vec<u8>) {
    let header_at = out.len();
    put_u32(out, MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.push(frame.kind());
    out.push(0); // reserved
    put_u32(out, 0); // body_len backpatched below
    let body_at = out.len();
    match frame {
        Frame::Hello { rank } | Frame::Goodbye { rank } => put_u32(out, *rank),
        Frame::Halo {
            src,
            dst,
            level,
            seq,
            payload,
        } => {
            put_u32(out, *src);
            put_u32(out, *dst);
            out.push(*level);
            put_u64(out, *seq);
            put_f64s(out, payload);
        }
        Frame::Stats { rank, stats } => {
            put_u32(out, *rank);
            put_u32(out, stats.counters.len() as u32);
            for &(id, lvl, v) in &stats.counters {
                out.push(id);
                out.push(lvl);
                put_u64(out, v);
            }
            put_u32(out, stats.hists.len() as u32);
            for (id, lvl, h) in &stats.hists {
                out.push(*id);
                out.push(*lvl);
                put_hist(out, h);
            }
            put_u32(out, stats.gauges.len() as u32);
            for &(id, lvl, g) in &stats.gauges {
                out.push(id);
                out.push(lvl);
                put_f64(out, g);
            }
            put_u32(out, stats.timeline.len() as u32);
            for ev in &stats.timeline {
                out.push(ev.level);
                put_u32(out, ev.step);
                put_f64(out, ev.busy_s);
                put_f64(out, ev.wait_s);
                put_u64(out, ev.elem_ops);
                put_u64(out, ev.dofs_sent);
            }
        }
        Frame::Done {
            rank,
            u,
            v,
            global_of_local,
        } => {
            put_u32(out, *rank);
            put_f64s(out, u);
            put_f64s(out, v);
            put_u32(out, global_of_local.len() as u32);
            for &g in global_of_local {
                put_u32(out, g);
            }
        }
        Frame::Flight { recording } => {
            put_u32(out, recording.rank);
            put_u64(out, recording.dropped);
            put_u32(out, recording.events.len() as u32);
            for ev in &recording.events {
                put_u64(out, ev.t_ns);
                out.push(ev.kind as u8);
                out.push(ev.level);
                put_u32(out, ev.step);
                put_u32(out, ev.peer);
                put_u64(out, ev.seq);
            }
        }
    }
    let body_len = (out.len() - body_at) as u32;
    out[header_at + 8..header_at + 12].copy_from_slice(&body_len.to_le_bytes());
}

/// Convenience: one frame as a fresh byte vector.
pub fn encode_vec(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::new();
    encode(frame, &mut out);
    out
}

/// Encode a `Halo` frame straight from a payload slice — the socket hot
/// path, which must not copy the payload into a `Frame` first.
pub fn encode_halo_into(
    src: u32,
    dst: u32,
    level: u8,
    seq: u64,
    payload: &[f64],
    out: &mut Vec<u8>,
) {
    let header_at = out.len();
    put_u32(out, MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.push(1); // kind: Halo
    out.push(0); // reserved
    put_u32(out, 0); // body_len backpatched below
    let body_at = out.len();
    put_u32(out, src);
    put_u32(out, dst);
    out.push(level);
    put_u64(out, seq);
    put_f64s(out, payload);
    let body_len = (out.len() - body_at) as u32;
    out[header_at + 8..header_at + 12].copy_from_slice(&body_len.to_le_bytes());
}

// ---- decoding ------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self
            .at
            .checked_add(n)
            .ok_or(CodecError::Malformed("length overflow"))?;
        let s = self
            .buf
            .get(self.at..end)
            .ok_or(CodecError::Malformed("body shorter than its contents"))?;
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        let s = self.take(8)?;
        Ok(u64::from_le_bytes([
            s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7],
        ]))
    }

    fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A `u32` count that must be payable by the remaining bytes at
    /// `elem_bytes` each — rejects allocation bombs from corrupt counts.
    fn count(&mut self, elem_bytes: usize) -> Result<usize, CodecError> {
        let n = self.u32()? as usize;
        let need = n
            .checked_mul(elem_bytes)
            .ok_or(CodecError::Malformed("count overflow"))?;
        if self.buf.len() - self.at < need {
            return Err(CodecError::Malformed("count exceeds body"));
        }
        Ok(n)
    }

    fn f64s(&mut self) -> Result<Vec<f64>, CodecError> {
        let n = self.count(8)?;
        // lint: allow(hot-path-alloc) — the codec's ownership boundary: a
        // decoded frame owns its payload; halo payloads land in the
        // caller's reused buffer one copy later
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.f64()?);
        }
        Ok(out)
    }

    fn hist(&mut self) -> Result<Histogram, CodecError> {
        let mut h = Histogram {
            count: self.u64()?,
            sum: self.f64()?,
            min: self.f64()?,
            max: self.f64()?,
            buckets: [0; HIST_BUCKETS],
        };
        for b in h.buckets.iter_mut() {
            *b = self.u64()?;
        }
        Ok(h)
    }

    fn done(&self) -> Result<(), CodecError> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(CodecError::Malformed("trailing bytes after body"))
        }
    }
}

/// Validate a 12-byte header; returns `(kind, body_len)`.
pub fn decode_header(h: &[u8]) -> Result<(u8, u32), CodecError> {
    if h.len() < HEADER_LEN {
        return Err(CodecError::Truncated);
    }
    let magic = u32::from_le_bytes([h[0], h[1], h[2], h[3]]);
    if magic != MAGIC {
        return Err(CodecError::BadMagic(magic));
    }
    let version = u16::from_le_bytes([h[4], h[5]]);
    if version != VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let kind = h[6];
    if kind > 5 {
        return Err(CodecError::UnknownKind(kind));
    }
    let body_len = u32::from_le_bytes([h[8], h[9], h[10], h[11]]);
    if body_len > MAX_BODY {
        return Err(CodecError::Oversize(body_len));
    }
    Ok((kind, body_len))
}

/// Decode a frame body already split off by its header.
pub fn decode_body(kind: u8, body: &[u8]) -> Result<Frame, CodecError> {
    let mut r = Reader { buf: body, at: 0 };
    let frame = match kind {
        0 => Frame::Hello { rank: r.u32()? },
        1 => Frame::Halo {
            src: r.u32()?,
            dst: r.u32()?,
            level: r.u8()?,
            seq: r.u64()?,
            payload: r.f64s()?,
        },
        2 => Frame::Goodbye { rank: r.u32()? },
        3 => {
            let rank = r.u32()?;
            let mut stats = WireStats::default();
            for _ in 0..r.count(10)? {
                stats.counters.push((r.u8()?, r.u8()?, r.u64()?));
            }
            for _ in 0..r.count(2 + 8 * (4 + HIST_BUCKETS))? {
                stats.hists.push((r.u8()?, r.u8()?, r.hist()?));
            }
            for _ in 0..r.count(10)? {
                stats.gauges.push((r.u8()?, r.u8()?, r.f64()?));
            }
            for _ in 0..r.count(1 + 4 + 4 * 8)? {
                stats.timeline.push(TimelineEvent {
                    level: r.u8()?,
                    step: r.u32()?,
                    busy_s: r.f64()?,
                    wait_s: r.f64()?,
                    elem_ops: r.u64()?,
                    dofs_sent: r.u64()?,
                });
            }
            Frame::Stats { rank, stats }
        }
        4 => {
            let rank = r.u32()?;
            let u = r.f64s()?;
            let v = r.f64s()?;
            let n = r.count(4)?;
            // lint: allow(hot-path-alloc) — Done frames arrive once per rank at teardown
            let mut global_of_local = Vec::with_capacity(n);
            for _ in 0..n {
                global_of_local.push(r.u32()?);
            }
            Frame::Done {
                rank,
                u,
                v,
                global_of_local,
            }
        }
        5 => {
            let rank = r.u32()?;
            let dropped = r.u64()?;
            let n = r.count(26)?;
            // lint: allow(hot-path-alloc) — Flight frames arrive once per rank at teardown
            let mut events = Vec::with_capacity(n);
            for _ in 0..n {
                let t_ns = r.u64()?;
                let kind = EventKind::from_u8(r.u8()?)
                    .ok_or(CodecError::Malformed("unknown flight event kind"))?;
                events.push(FlightEvent {
                    t_ns,
                    kind,
                    level: r.u8()?,
                    step: r.u32()?,
                    peer: r.u32()?,
                    seq: r.u64()?,
                });
            }
            Frame::Flight {
                recording: RankRecording {
                    rank,
                    dropped,
                    events,
                },
            }
        }
        other => return Err(CodecError::UnknownKind(other)),
    };
    r.done()?;
    Ok(frame)
}

/// Decode the first frame in `buf`. Returns the frame and how many bytes it
/// consumed; [`CodecError::Truncated`] means "feed me more bytes".
pub fn decode(buf: &[u8]) -> Result<(Frame, usize), CodecError> {
    let (kind, body_len) = decode_header(buf)?;
    let total = HEADER_LEN + body_len as usize;
    let body = buf.get(HEADER_LEN..total).ok_or(CodecError::Truncated)?;
    Ok((decode_body(kind, body)?, total))
}

// ---- stream I/O ----------------------------------------------------------

/// Stream-side failures of [`read_frame`].
#[derive(Debug)]
pub enum StreamError {
    /// Clean end of stream at a frame boundary.
    Eof,
    Io(std::io::Error),
    Codec(CodecError),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Eof => write!(f, "end of stream"),
            StreamError::Io(e) => write!(f, "stream i/o: {e}"),
            StreamError::Codec(e) => write!(f, "stream codec: {e}"),
        }
    }
}

fn read_exact_or_eof<R: std::io::Read>(
    r: &mut R,
    buf: &mut [u8],
    eof_ok_at_start: bool,
) -> Result<(), StreamError> {
    let mut got = 0usize;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                return Err(if got == 0 && eof_ok_at_start {
                    StreamError::Eof
                } else {
                    StreamError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "eof mid-frame",
                    ))
                });
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(StreamError::Io(e)),
        }
    }
    Ok(())
}

/// Read one complete frame from `r`, using `scratch` as the body buffer.
/// [`StreamError::Eof`] is returned only at a clean frame boundary.
pub fn read_frame<R: std::io::Read>(
    r: &mut R,
    scratch: &mut Vec<u8>,
) -> Result<Frame, StreamError> {
    let mut header = [0u8; HEADER_LEN];
    read_exact_or_eof(r, &mut header, true)?;
    read_body(&header, r, scratch)
}

/// Finish reading a frame whose 12-byte header is already in hand (the
/// socket backend reads headers itself so a receive timeout can stay
/// byte-aligned).
pub fn read_body<R: std::io::Read>(
    header: &[u8],
    mut r: R,
    scratch: &mut Vec<u8>,
) -> Result<Frame, StreamError> {
    let (kind, body_len) = decode_header(header).map_err(StreamError::Codec)?;
    scratch.clear();
    scratch.resize(body_len as usize, 0);
    read_exact_or_eof(&mut r, scratch, false)?;
    decode_body(kind, scratch).map_err(StreamError::Codec)
}

/// Write one frame to `w` (no flush).
pub fn write_frame<W: std::io::Write>(w: &mut W, frame: &Frame) -> std::io::Result<()> {
    let mut bytes = Vec::new();
    encode(frame, &mut bytes);
    w.write_all(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frames() -> Vec<Frame> {
        let mut h = Histogram::default();
        h.observe(1e-4);
        h.observe(3.0);
        vec![
            Frame::Hello { rank: 7 },
            Frame::Goodbye { rank: 0 },
            Frame::Halo {
                src: 1,
                dst: 2,
                level: 3,
                seq: 0x0102_0304_0506_0708,
                payload: vec![0.0, -0.0, f64::NAN, f64::INFINITY, 1e-310, -2.5],
            },
            Frame::Halo {
                src: 0,
                dst: 1,
                level: 0,
                seq: 0,
                payload: vec![],
            },
            Frame::Stats {
                rank: 4,
                stats: WireStats {
                    counters: vec![(0, 0, 42), (3, 255, 9)],
                    hists: vec![(1, 2, h)],
                    gauges: vec![(1, 0, 0.75)],
                    timeline: vec![TimelineEvent {
                        level: 1,
                        step: 9,
                        busy_s: 0.25,
                        wait_s: 0.125,
                        elem_ops: 77,
                        dofs_sent: 12,
                    }],
                },
            },
            Frame::Done {
                rank: 2,
                u: vec![1.5, -2.5],
                v: vec![0.0],
                global_of_local: vec![10, 11, 12],
            },
            Frame::Flight {
                recording: RankRecording {
                    rank: 1,
                    dropped: 3,
                    events: vec![
                        FlightEvent {
                            t_ns: 123,
                            kind: EventKind::Send,
                            level: 2,
                            step: 7,
                            peer: 0,
                            seq: 41,
                        },
                        FlightEvent {
                            t_ns: 456,
                            kind: EventKind::Fault,
                            level: u8::MAX,
                            step: 7,
                            peer: u32::MAX,
                            seq: 0,
                        },
                    ],
                },
            },
        ]
    }

    #[test]
    fn round_trip_all_kinds() {
        for f in sample_frames() {
            let bytes = encode_vec(&f);
            let (g, used) = decode(&bytes).expect("decode");
            assert_eq!(used, bytes.len());
            // NaN payloads break PartialEq; compare re-encodings (bit-exact)
            assert_eq!(encode_vec(&g), bytes);
        }
    }

    #[test]
    fn truncation_is_always_truncated_error() {
        for f in sample_frames() {
            let bytes = encode_vec(&f);
            for cut in 0..bytes.len() {
                match decode(&bytes[..cut]) {
                    Err(CodecError::Truncated) => {}
                    other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn corrupt_headers_are_rejected() {
        let bytes = encode_vec(&Frame::Hello { rank: 1 });
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert!(matches!(decode(&bad), Err(CodecError::BadMagic(_))));
        let mut bad = bytes.clone();
        bad[4] = 0x7f;
        assert!(matches!(decode(&bad), Err(CodecError::BadVersion(_))));
        let mut bad = bytes.clone();
        bad[6] = 250;
        assert!(matches!(decode(&bad), Err(CodecError::UnknownKind(250))));
        let mut bad = bytes;
        bad[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode(&bad), Err(CodecError::Oversize(_))));
    }

    #[test]
    fn corrupt_counts_do_not_allocate_or_panic() {
        // a Halo whose ndof field claims more doubles than the body holds
        let mut bytes = encode_vec(&Frame::Halo {
            src: 0,
            dst: 1,
            level: 0,
            seq: 9,
            payload: vec![1.0, 2.0],
        });
        // ndof lives right after src+dst+level+seq in the body
        let ndof_at = HEADER_LEN + 17;
        bytes[ndof_at..ndof_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode(&bytes), Err(CodecError::Malformed(_))));
    }

    #[test]
    fn stream_read_write_round_trips() {
        let mut wire = Vec::new();
        for f in sample_frames() {
            write_frame(&mut wire, &f).unwrap();
        }
        let mut cursor = std::io::Cursor::new(wire);
        let mut scratch = Vec::new();
        for f in sample_frames() {
            let got = read_frame(&mut cursor, &mut scratch).expect("frame");
            assert_eq!(encode_vec(&got), encode_vec(&f));
        }
        assert!(matches!(
            read_frame(&mut cursor, &mut scratch),
            Err(StreamError::Eof)
        ));
    }

    #[test]
    fn wire_stats_rebuild_exact_counters_and_hists() {
        let mut reg = MetricsRegistry::new();
        reg.inc_level(names::ELEM_OPS, 0, 100);
        reg.inc_level(names::ELEM_OPS, 1, 23);
        reg.inc_level(names::EXCHANGES, 1, 4);
        reg.observe(names::BUSY, Some(0), 0.5);
        reg.observe(names::BUSY, None, 0.25);
        reg.observe(names::WAIT, Some(0), 0.0625);
        reg.set_gauge_level(names::STALL_LAMBDA, 0, 0.5);
        let stats = RankStats::from_registry(3, reg, Vec::new());
        let wire = WireStats::from_rank_stats(&stats);
        let back = wire.into_rank_stats(3);
        assert_eq!(back.elem_ops, 123);
        assert_eq!(back.n_exchanges, 4);
        assert_eq!(back.busy_s.to_bits(), stats.busy_s.to_bits());
        assert_eq!(back.wait_s.to_bits(), stats.wait_s.to_bits());
        assert_eq!(back.registry.gauge(names::STALL_LAMBDA, Some(0)), Some(0.5));
        let h = back.registry.histogram(names::BUSY, Some(0)).unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(h.sum.to_bits(), 0.5f64.to_bits());
    }
}
