//! Bounded shared-memory ring backend.
//!
//! One bounded ring of payload slots per *directed* rank pair plus a per-rank
//! doorbell, which is the shape of a real shared-memory MPI fabric: senders
//! copy into a bounded segment and block on backpressure when the consumer
//! lags; receivers sleep on their doorbell instead of polling n−1 rings.
//!
//! Slots are recycled through a per-ring free list, so the steady-state hot
//! path allocates nothing (see `lint/hotpaths.toml`). Disconnects follow the
//! module-level goodbye protocol: closing an endpoint marks every inbound
//! ring closed (waking any peer blocked in `send` with an error) and rings
//! every peer's doorbell with a goodbye bell, FIFO-after its earlier bells.

use super::{bad_peer, Recv, Transport, TransportError, TransportMetrics};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Slots per directed pair. Small enough that an imbalanced run actually
/// exercises backpressure, large enough that a balanced run never blocks.
pub const DEFAULT_CAPACITY: usize = 8;

/// Poison-tolerant lock: a panicking peer thread must degrade into the
/// goodbye/disconnect path, not propagate panics through the fabric.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

struct RingBuf {
    queue: VecDeque<(u8, u64, Vec<f64>)>,
    free: Vec<Vec<f64>>,
    closed: bool,
}

/// One directed sender→receiver ring.
struct PairRing {
    buf: Mutex<RingBuf>,
    not_full: Condvar,
    cap: usize,
}

enum Bell {
    Msg(usize),
    Bye(usize),
}

/// A rank's wake-up queue: one bell per inbound message or goodbye.
struct Doorbell {
    bells: Mutex<VecDeque<Bell>>,
    ready: Condvar,
}

struct ClusterState {
    /// Flat `[from * n + to]`; the diagonal is never used.
    rings: Vec<PairRing>,
    doorbells: Vec<Doorbell>,
    n: usize,
}

impl ClusterState {
    fn ring(&self, from: usize, to: usize) -> &PairRing {
        &self.rings[from * self.n + to]
    }
}

pub struct RingTransport {
    rank: usize,
    state: Arc<ClusterState>,
    closed: bool,
    metrics: TransportMetrics,
}

/// Build `n` endpoints over freshly allocated rings of `cap` slots each.
/// (The conformance suite uses a tiny `cap` to force the backpressure path.)
pub fn ring_cluster(n: usize, cap: usize) -> Vec<Box<dyn Transport>> {
    let cap = cap.max(1);
    let mut rings = Vec::with_capacity(n * n);
    for _ in 0..n * n {
        rings.push(PairRing {
            buf: Mutex::new(RingBuf {
                queue: VecDeque::with_capacity(cap),
                free: Vec::with_capacity(cap),
                closed: false,
            }),
            not_full: Condvar::new(),
            cap,
        });
    }
    let doorbells = (0..n)
        .map(|_| Doorbell {
            bells: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
        })
        .collect();
    let state = Arc::new(ClusterState {
        rings,
        doorbells,
        n,
    });
    (0..n)
        .map(|rank| {
            Box::new(RingTransport {
                rank,
                state: Arc::clone(&state),
                closed: false,
                metrics: TransportMetrics::default(),
            }) as Box<dyn Transport>
        })
        .collect()
}

#[cold]
fn desync() -> TransportError {
    TransportError::Io(String::from("ring/doorbell desync"))
}

impl RingTransport {
    /// Turn a popped doorbell into the received message/goodbye, recycling
    /// the ring slot and waking a sender blocked on backpressure.
    fn consume_bell(&mut self, bell: Bell, buf: &mut Vec<f64>) -> Result<Recv, TransportError> {
        match bell {
            Bell::Bye(from) => Ok(Recv::Goodbye { from }),
            Bell::Msg(from) => {
                let ring = self.state.ring(from, self.rank);
                let mut rb = lock(&ring.buf);
                let Some((level, seq, slot)) = rb.queue.pop_front() else {
                    return Err(desync());
                };
                buf.extend_from_slice(&slot);
                if rb.free.len() < ring.cap {
                    rb.free.push(slot);
                }
                drop(rb);
                ring.not_full.notify_one();
                Ok(Recv::Msg { from, level, seq })
            }
        }
    }
}

impl Transport for RingTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn n_ranks(&self) -> usize {
        self.state.n
    }

    fn backend(&self) -> &'static str {
        "shm-ring"
    }

    // lint: hot-path
    fn send(
        &mut self,
        peer: usize,
        level: u8,
        seq: u64,
        payload: &[f64],
    ) -> Result<(), TransportError> {
        if self.closed {
            return Err(TransportError::Closed);
        }
        if peer == self.rank || peer >= self.state.n {
            return Err(bad_peer(peer));
        }
        let ring = self.state.ring(self.rank, peer);
        let mut buf = lock(&ring.buf);
        while buf.queue.len() >= ring.cap && !buf.closed {
            let t0 = Instant::now();
            // lint: allow(lock-block) — backpressure by design: a full ring
            // must stall the producer, and a dead peer closes the ring
            buf = match ring.not_full.wait(buf) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            self.metrics.send_block_s += t0.elapsed().as_secs_f64();
        }
        if buf.closed {
            return Err(TransportError::Disconnected { peer });
        }
        let mut slot = buf.free.pop().unwrap_or_default();
        slot.clear();
        slot.extend_from_slice(payload);
        buf.queue.push_back((level, seq, slot));
        drop(buf);
        self.metrics.msgs_sent += 1;
        self.metrics.doubles_sent += payload.len() as u64;
        self.metrics.bytes_sent += 8 * payload.len() as u64;
        let db = &self.state.doorbells[peer];
        lock(&db.bells).push_back(Bell::Msg(self.rank));
        db.ready.notify_one();
        Ok(())
    }

    // lint: hot-path
    fn recv_into_timeout(
        &mut self,
        buf: &mut Vec<f64>,
        timeout: Option<Duration>,
    ) -> Result<Recv, TransportError> {
        buf.clear();
        let db = &self.state.doorbells[self.rank];
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut bells = lock(&db.bells);
        let bell = loop {
            if let Some(b) = bells.pop_front() {
                break b;
            }
            bells = match deadline {
                // lint: allow(lock-block) — the None deadline means block
                // by contract; the exchange loop passes a watchdog
                None => match db.ready.wait(bells) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                },
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return Err(TransportError::Timeout);
                    }
                    match db.ready.wait_timeout(bells, d - now) {
                        Ok((g, _)) => g,
                        Err(poisoned) => poisoned.into_inner().0,
                    }
                }
            };
        };
        drop(bells);
        self.consume_bell(bell, buf)
    }

    fn try_recv_into(&mut self, buf: &mut Vec<f64>) -> Result<Option<Recv>, TransportError> {
        buf.clear();
        let db = &self.state.doorbells[self.rank];
        let bell = match lock(&db.bells).pop_front() {
            Some(b) => b,
            None => return Ok(None),
        };
        self.consume_bell(bell, buf).map(Some)
    }

    fn metrics(&self) -> TransportMetrics {
        self.metrics
    }

    fn close(&mut self) {
        if self.closed {
            return;
        }
        self.closed = true;
        for peer in 0..self.state.n {
            if peer == self.rank {
                continue;
            }
            // wake peers blocked sending to us: their ring is now closed
            let inbound = self.state.ring(peer, self.rank);
            lock(&inbound.buf).closed = true;
            inbound.not_full.notify_all();
            // and ring their doorbell with the goodbye (after our messages)
            let db = &self.state.doorbells[peer];
            lock(&db.bells).push_back(Bell::Bye(self.rank));
            db.ready.notify_one();
        }
    }
}

impl Drop for RingTransport {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_ring_blocks_then_delivers_everything() {
        let mut eps = ring_cluster(2, 2);
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        let sender = std::thread::spawn(move || {
            for i in 0..50u32 {
                a.send(1, 0, u64::from(i), &[f64::from(i)]).unwrap();
            }
            a.metrics()
        });
        std::thread::sleep(Duration::from_millis(30));
        let mut buf = Vec::new();
        for i in 0..50u32 {
            assert_eq!(
                b.recv_into(&mut buf).unwrap(),
                Recv::Msg {
                    from: 0,
                    level: 0,
                    seq: u64::from(i)
                }
            );
            assert_eq!(buf, vec![f64::from(i)]);
        }
        let m = sender.join().unwrap();
        assert_eq!(m.msgs_sent, 50);
        assert!(m.send_block_s > 0.0, "2-slot ring never backpressured");
    }

    #[test]
    fn close_unblocks_a_sender_with_disconnect() {
        let mut eps = ring_cluster(2, 1);
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        a.send(1, 0, 0, &[1.0]).unwrap();
        let sender = std::thread::spawn(move || a.send(1, 0, 1, &[2.0]));
        std::thread::sleep(Duration::from_millis(20));
        b.close();
        assert_eq!(
            sender.join().unwrap(),
            Err(TransportError::Disconnected { peer: 1 })
        );
    }
}
