//! The pluggable halo-exchange transport.
//!
//! The distributed stepper ([`crate::distributed`]) speaks to its peers only
//! through the [`Transport`] trait: post a level-tagged partial-force payload
//! to a peer, receive the next incoming payload. Three backends implement the
//! contract:
//!
//! * [`channel::ChannelTransport`] — the original in-process crossbeam
//!   channels (unbounded FIFO per sender);
//! * [`ring::RingTransport`] — bounded shared-memory ring segments per
//!   directed rank pair, with condvar-based backpressure (the shape of a
//!   real shared-memory MPI fabric);
//! * [`socket::SocketTransport`] — length-prefixed frames over Unix domain
//!   sockets through a star router, the same wire codec the multi-process
//!   `wave-lts worker` runner uses (see [`crate::process`]).
//!
//! Every backend must pass the same [`conformance`] battery (ordering,
//! addressing, payload bit-integrity, backpressure, disconnect semantics),
//! and any backend can be wrapped in a [`faulty::FaultyTransport`] to inject
//! delays, drops and peer death for the fault-cascade tests.
//!
//! ## Disconnect semantics
//!
//! Dropping (or [`Transport::close`]-ing) an endpoint delivers a *goodbye*
//! to every peer, after all previously posted messages (FIFO). A receiver
//! that still awaits a payload from that peer surfaces the disconnect as an
//! error instead of blocking forever — this is what turns a mid-run rank
//! death into a clean [`crate::RuntimeError`] cascade on every rank.

pub mod channel;
pub mod codec;
pub mod conformance;
pub mod faulty;
pub mod ring;
#[cfg(unix)]
pub mod socket;

use std::fmt;
use std::time::Duration;

/// Which backend the runtime should build for an in-process run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// Unbounded in-process channels (the default).
    Channel,
    /// Bounded shared-memory rings per directed rank pair.
    SharedRing,
    /// Unix-socket star router speaking the versioned wire codec.
    UnixSocket,
}

impl TransportKind {
    pub fn name(self) -> &'static str {
        match self {
            TransportKind::Channel => "channel",
            TransportKind::SharedRing => "shm-ring",
            TransportKind::UnixSocket => "unix-socket",
        }
    }

    /// Parse a CLI spelling (`channel` | `shm` | `shm-ring` | `socket` |
    /// `unix-socket`).
    pub fn parse(s: &str) -> Option<TransportKind> {
        match s {
            "channel" => Some(TransportKind::Channel),
            "shm" | "shm-ring" | "ring" => Some(TransportKind::SharedRing),
            "socket" | "unix-socket" | "unix" => Some(TransportKind::UnixSocket),
            _ => None,
        }
    }
}

/// Classified error for an out-of-range peer index. `#[cold]` keeps the
/// message formatting off the hot send path (and out of the semantic
/// lint's hot-path traversal).
#[cold]
pub(crate) fn bad_peer(peer: usize) -> TransportError {
    TransportError::Io(format!("invalid peer {peer}"))
}

/// Transport-level failures. The rank loop maps these onto
/// [`crate::RuntimeError`] variants with rank/level context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The peer's endpoint is gone (send refused or goodbye observed).
    Disconnected { peer: usize },
    /// The whole fabric is gone: nothing can ever arrive again.
    Closed,
    /// A timed receive elapsed with no message.
    Timeout,
    /// A frame failed to decode (socket backends).
    Codec(codec::CodecError),
    /// An OS-level I/O failure (socket backends).
    Io(String),
    /// A configured fault fired (see [`faulty::FaultyTransport`]).
    Injected,
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Disconnected { peer } => write!(f, "peer {peer} disconnected"),
            TransportError::Closed => write!(f, "transport closed"),
            TransportError::Timeout => write!(f, "receive timed out"),
            TransportError::Codec(e) => write!(f, "wire codec error: {e}"),
            TransportError::Io(e) => write!(f, "transport i/o error: {e}"),
            TransportError::Injected => write!(f, "injected fault"),
        }
    }
}

impl std::error::Error for TransportError {}

/// What a successful receive yielded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recv {
    /// A halo payload from `from`, tagged with its LTS level and the
    /// sender-assigned per-edge sequence number; the payload doubles were
    /// appended to the caller's buffer.
    Msg { from: usize, level: u8, seq: u64 },
    /// `from`'s endpoint closed; no further message from it will ever
    /// arrive. Delivered after all of `from`'s earlier messages (FIFO).
    Goodbye { from: usize },
}

/// Per-endpoint traffic accounting, stamped into the rank's metrics registry
/// as backend-labelled gauges after the run.
#[derive(Debug, Clone, Copy, Default)]
pub struct TransportMetrics {
    /// Halo messages posted by this endpoint.
    pub msgs_sent: u64,
    /// Total `f64` values posted.
    pub doubles_sent: u64,
    /// Payload bytes put on the wire (0 for by-reference backends).
    pub bytes_sent: u64,
    /// Seconds this endpoint spent blocked in `send` on backpressure.
    pub send_block_s: f64,
}

/// One rank's endpoint of the halo-exchange fabric.
///
/// Contract every backend (and the conformance suite) relies on:
///
/// * **per-sender FIFO** — two messages from the same sender arrive in the
///   order they were sent; no ordering across senders;
/// * **bit integrity** — payload `f64`s arrive with identical bit patterns
///   (including NaN payloads, infinities, signed zeros, subnormals);
/// * **goodbye after drain** — a dropped endpoint's goodbye is observed
///   only after everything it sent has been received.
pub trait Transport: Send {
    fn rank(&self) -> usize;
    fn n_ranks(&self) -> usize;
    /// Stable backend label (metric gauge label, bench comparisons).
    fn backend(&self) -> &'static str;

    /// Post `payload` to `peer`, tagged with `level` and the caller's
    /// per-directed-edge sequence number `seq` (carried opaquely — the
    /// flight recorder matches a recv event to its send event by it, so a
    /// transport must deliver it bit-exactly, never synthesize it). May
    /// block on backpressure (bounded backends); must not block
    /// indefinitely once the peer is gone.
    fn send(
        &mut self,
        peer: usize,
        level: u8,
        seq: u64,
        payload: &[f64],
    ) -> Result<(), TransportError>;

    /// Push any buffered frames onto the wire (socket backends batch the
    /// per-peer sends of one exchange into one syscall burst).
    fn flush(&mut self) -> Result<(), TransportError> {
        Ok(())
    }

    /// Blocking receive: append the next payload to `buf` (which is cleared
    /// first) and return its origin, or the next goodbye.
    fn recv_into(&mut self, buf: &mut Vec<f64>) -> Result<Recv, TransportError> {
        // lint: allow(lock-block) — blocking forever is this method's contract; the exchange loop calls the watchdog variant
        self.recv_into_timeout(buf, None)
    }

    /// [`Transport::recv_into`] with an optional timeout; `None` blocks.
    fn recv_into_timeout(
        &mut self,
        buf: &mut Vec<f64>,
        timeout: Option<Duration>,
    ) -> Result<Recv, TransportError>;

    /// Best-effort non-blocking poll: `Ok(Some(..))` if a message or goodbye
    /// was already delivered, `Ok(None)` if nothing is ready *or the backend
    /// cannot poll cheaply* (the default — a blocking stream cannot peek
    /// without risking frame alignment). Callers must treat `None` as "use
    /// the blocking path", never as "the fabric is idle". Polling must not
    /// lose or reorder messages relative to [`Transport::recv_into`].
    fn try_recv_into(&mut self, buf: &mut Vec<f64>) -> Result<Option<Recv>, TransportError> {
        let _ = buf;
        Ok(None)
    }

    /// Traffic accounting so far.
    fn metrics(&self) -> TransportMetrics {
        TransportMetrics::default()
    }

    /// Tear this endpoint down so peers observe the disconnect. Dropping the
    /// endpoint must have the same effect; `close` makes it explicit (and
    /// idempotent) for fault injection.
    fn close(&mut self) {}
}

/// Boxed endpoints are endpoints too (what [`make_cluster`] hands out and
/// what [`faulty::wrap`] decorates).
impl Transport for Box<dyn Transport> {
    fn rank(&self) -> usize {
        (**self).rank()
    }

    fn n_ranks(&self) -> usize {
        (**self).n_ranks()
    }

    fn backend(&self) -> &'static str {
        (**self).backend()
    }

    fn send(
        &mut self,
        peer: usize,
        level: u8,
        seq: u64,
        payload: &[f64],
    ) -> Result<(), TransportError> {
        (**self).send(peer, level, seq, payload)
    }

    fn flush(&mut self) -> Result<(), TransportError> {
        (**self).flush()
    }

    fn recv_into_timeout(
        &mut self,
        buf: &mut Vec<f64>,
        timeout: Option<Duration>,
    ) -> Result<Recv, TransportError> {
        (**self).recv_into_timeout(buf, timeout)
    }

    fn try_recv_into(&mut self, buf: &mut Vec<f64>) -> Result<Option<Recv>, TransportError> {
        (**self).try_recv_into(buf)
    }

    fn metrics(&self) -> TransportMetrics {
        (**self).metrics()
    }

    fn close(&mut self) {
        (**self).close()
    }
}

/// Build one connected cluster of `n` endpoints of the requested backend.
///
/// On non-Unix hosts the `UnixSocket` kind falls back to `Channel` (the
/// socket backend is `cfg(unix)`); everywhere this repo builds, it is real.
pub fn make_cluster(kind: TransportKind, n: usize) -> Vec<Box<dyn Transport>> {
    match kind {
        TransportKind::Channel => channel::channel_cluster(n),
        TransportKind::SharedRing => ring::ring_cluster(n, ring::DEFAULT_CAPACITY),
        #[cfg(unix)]
        TransportKind::UnixSocket => match socket::in_process_cluster(n) {
            Ok(eps) => eps,
            // Socket-pair creation can only fail on fd exhaustion; degrade
            // to channels rather than aborting the run.
            Err(_) => channel::channel_cluster(n),
        },
        #[cfg(not(unix))]
        TransportKind::UnixSocket => channel::channel_cluster(n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_parse_round_trips() {
        for kind in [
            TransportKind::Channel,
            TransportKind::SharedRing,
            TransportKind::UnixSocket,
        ] {
            assert_eq!(TransportKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(TransportKind::parse("shm"), Some(TransportKind::SharedRing));
        assert_eq!(
            TransportKind::parse("socket"),
            Some(TransportKind::UnixSocket)
        );
        assert_eq!(TransportKind::parse("tcp6"), None);
    }

    #[test]
    fn make_cluster_builds_every_kind() {
        for kind in [
            TransportKind::Channel,
            TransportKind::SharedRing,
            TransportKind::UnixSocket,
        ] {
            let eps = make_cluster(kind, 3);
            assert_eq!(eps.len(), 3);
            for (r, ep) in eps.iter().enumerate() {
                assert_eq!(ep.rank(), r);
                assert_eq!(ep.n_ranks(), 3);
            }
        }
    }
}
