//! Unix-domain-socket backend: every endpoint holds one stream to a star
//! router, and halo payloads travel as [`super::codec`] frames — the same
//! bytes the multi-process `wave-lts worker` runner puts on the wire
//! (see [`crate::process`]).
//!
//! [`in_process_cluster`] builds the fabric inside one process from
//! `UnixStream::pair`s plus one detached router thread per rank, which is
//! how the conformance and bitwise-identity suites exercise the real codec
//! path without spawning OS processes. The router forwards frames verbatim
//! (header + body bytes, no re-encode) and converts a rank's EOF into a
//! `Goodbye` broadcast, after everything that rank already sent — preserving
//! per-sender FIFO and goodbye-after-drain end to end.

use super::codec::{self, decode_header, encode, Frame, StreamError, HEADER_LEN};
use super::{bad_peer, Recv, Transport, TransportError, TransportMetrics};
use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// One rank's endpoint: a single full-duplex stream carrying codec frames.
pub struct SocketTransport {
    rank: usize,
    n: usize,
    stream: UnixStream,
    /// Reused encode buffer; steady-state sends allocate nothing.
    wbuf: Vec<u8>,
    /// Reused body buffer for the blocking read path.
    scratch: Vec<u8>,
    closed: bool,
    /// A mid-frame failure desyncs the byte stream; everything after is noise.
    dead: bool,
    metrics: TransportMetrics,
}

impl SocketTransport {
    /// Wrap an already connected stream (in-process router or a real
    /// `wave-lts worker` connection).
    pub fn new(rank: usize, n: usize, stream: UnixStream) -> SocketTransport {
        SocketTransport {
            rank,
            n,
            stream,
            wbuf: Vec::new(),
            scratch: Vec::new(),
            closed: false,
            dead: false,
            metrics: TransportMetrics::default(),
        }
    }

    fn write_frame(&mut self, frame: &Frame) -> Result<(), TransportError> {
        self.wbuf.clear();
        encode(frame, &mut self.wbuf);
        self.metrics.bytes_sent += self.wbuf.len() as u64;
        (&self.stream)
            .write_all(&self.wbuf)
            .map_err(|e| io_err("send", &e))
    }

    /// Read one frame; `timeout` applies only until the first header byte
    /// arrives (a timeout there leaves the stream aligned), after which the
    /// rest of the frame is read blocking. A timeout that strikes mid-header
    /// marks the endpoint dead: the stream can no longer be trusted.
    fn read_frame_timeout(&mut self, timeout: Option<Duration>) -> Result<Frame, TransportError> {
        if self.dead {
            return Err(TransportError::Closed);
        }
        let mut header = [0u8; HEADER_LEN];
        let mut got = 0usize;
        if timeout.is_some() {
            let _ = self.stream.set_read_timeout(timeout);
        }
        while got < HEADER_LEN {
            match (&self.stream).read(&mut header[got..]) {
                Ok(0) => {
                    self.dead = true;
                    let _ = self.stream.set_read_timeout(None);
                    return Err(TransportError::Closed);
                }
                Ok(k) => {
                    if got == 0 {
                        // aligned again; the rest of the frame reads blocking
                        let _ = self.stream.set_read_timeout(None);
                    }
                    got += k;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    let _ = self.stream.set_read_timeout(None);
                    if got > 0 {
                        self.dead = true;
                    }
                    return Err(TransportError::Timeout);
                }
                Err(e) => {
                    self.dead = true;
                    let _ = self.stream.set_read_timeout(None);
                    return Err(io_err("recv", &e));
                }
            }
        }
        match codec::read_body(&header, &self.stream, &mut self.scratch) {
            Ok(frame) => Ok(frame),
            Err(StreamError::Eof) | Err(StreamError::Io(_)) => {
                self.dead = true;
                Err(TransportError::Closed)
            }
            Err(StreamError::Codec(e)) => {
                self.dead = true;
                Err(TransportError::Codec(e))
            }
        }
    }
}

#[cold]
fn io_err(what: &str, e: &std::io::Error) -> TransportError {
    TransportError::Io(format!("{what}: {e}"))
}

impl Transport for SocketTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn n_ranks(&self) -> usize {
        self.n
    }

    fn backend(&self) -> &'static str {
        "unix-socket"
    }

    fn send(
        &mut self,
        peer: usize,
        level: u8,
        seq: u64,
        payload: &[f64],
    ) -> Result<(), TransportError> {
        if self.closed || self.dead {
            return Err(TransportError::Closed);
        }
        if peer == self.rank || peer >= self.n {
            return Err(bad_peer(peer));
        }
        self.metrics.msgs_sent += 1;
        self.metrics.doubles_sent += payload.len() as u64;
        // frame assembly reuses wbuf; only first-use growth allocates
        self.wbuf.clear();
        encode_halo(self.rank, peer, level, seq, payload, &mut self.wbuf);
        self.metrics.bytes_sent += self.wbuf.len() as u64;
        let wbuf = std::mem::take(&mut self.wbuf);
        let r = (&self.stream)
            .write_all(&wbuf)
            .map_err(|e| io_err("send", &e));
        self.wbuf = wbuf;
        r
    }

    fn recv_into_timeout(
        &mut self,
        buf: &mut Vec<f64>,
        timeout: Option<Duration>,
    ) -> Result<Recv, TransportError> {
        buf.clear();
        loop {
            match self.read_frame_timeout(timeout)? {
                Frame::Halo {
                    src,
                    level,
                    seq,
                    payload,
                    ..
                } => {
                    buf.extend_from_slice(&payload);
                    return Ok(Recv::Msg {
                        from: src as usize,
                        level,
                        seq,
                    });
                }
                Frame::Goodbye { rank } => {
                    return Ok(Recv::Goodbye {
                        from: rank as usize,
                    })
                }
                // handshake/stats frames are router business; skip them here
                _ => {}
            }
        }
    }

    fn metrics(&self) -> TransportMetrics {
        self.metrics
    }

    fn close(&mut self) {
        if self.closed {
            return;
        }
        self.closed = true;
        let _ = self.write_frame(&Frame::Goodbye {
            rank: self.rank as u32,
        });
        let _ = self.stream.shutdown(std::net::Shutdown::Write);
    }
}

impl Drop for SocketTransport {
    fn drop(&mut self) {
        self.close();
    }
}

/// Encode a Halo frame without constructing a `Frame` (no payload copy).
fn encode_halo(src: usize, dst: usize, level: u8, seq: u64, payload: &[f64], out: &mut Vec<u8>) {
    codec::encode_halo_into(src as u32, dst as u32, level, seq, payload, out);
}

// ---- in-process star router ----------------------------------------------

/// Build `n` socket endpoints wired through detached router threads inside
/// this process. Fails only on fd exhaustion.
pub fn in_process_cluster(n: usize) -> std::io::Result<Vec<Box<dyn Transport>>> {
    let mut endpoints: Vec<Box<dyn Transport>> = Vec::with_capacity(n);
    let mut router_side = Vec::with_capacity(n);
    for rank in 0..n {
        let (ep, rt) = UnixStream::pair()?;
        endpoints.push(Box::new(SocketTransport::new(rank, n, ep)));
        router_side.push(rt);
    }
    let writers: Vec<Arc<Mutex<UnixStream>>> = router_side
        .iter()
        .map(|s| s.try_clone().map(|c| Arc::new(Mutex::new(c))))
        .collect::<std::io::Result<_>>()?;
    for (rank, stream) in router_side.into_iter().enumerate() {
        let writers = writers.clone();
        std::thread::spawn(move || route_rank(rank, stream, &writers));
    }
    Ok(endpoints)
}

/// Forward rank `from`'s frames until EOF/goodbye, then broadcast its
/// goodbye to everyone else. Frames are relayed verbatim. Shared with the
/// multi-process coordinator ([`crate::process`]), whose star router is the
/// same loop over real worker connections.
pub(crate) fn route_rank(from: usize, mut stream: UnixStream, writers: &[Arc<Mutex<UnixStream>>]) {
    let mut header = [0u8; HEADER_LEN];
    let mut body = Vec::new();
    loop {
        if read_exact(&mut stream, &mut header).is_err() {
            break;
        }
        let Ok((kind, body_len)) = decode_header(&header) else {
            break;
        };
        body.clear();
        body.resize(body_len as usize, 0);
        if read_exact(&mut stream, &mut body).is_err() {
            break;
        }
        match kind {
            // Halo: dst sits at body[4..8]
            1 => {
                let dst = u32::from_le_bytes([body[4], body[5], body[6], body[7]]) as usize;
                if dst < writers.len() && forward(&writers[dst], &header, &body).is_err() {
                    // dst gone; its goodbye will reach the sender separately
                }
            }
            // explicit goodbye: stop forwarding, fall through to broadcast
            2 => break,
            _ => {}
        }
    }
    let bye = codec::encode_vec(&Frame::Goodbye { rank: from as u32 });
    for (dst, w) in writers.iter().enumerate() {
        if dst != from {
            let mut s = lock(w);
            let _ = s.write_all(&bye);
        }
    }
    let _ = lock(&writers[from]).shutdown(std::net::Shutdown::Both);
}

fn forward(w: &Arc<Mutex<UnixStream>>, header: &[u8], body: &[u8]) -> std::io::Result<()> {
    let mut s = lock(w);
    s.write_all(header)?;
    s.write_all(body)
}

fn read_exact(stream: &mut UnixStream, buf: &mut [u8]) -> std::io::Result<()> {
    let mut got = 0usize;
    while got < buf.len() {
        match stream.read(&mut buf[got..]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "eof",
                ))
            }
            Ok(k) => got += k,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_route_between_endpoints() {
        let mut eps = in_process_cluster(3).unwrap();
        let mut c = eps.pop().unwrap();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        a.send(2, 1, 5, &[1.0, f64::NAN]).unwrap();
        b.send(2, 0, 6, &[2.0]).unwrap();
        let mut buf = Vec::new();
        let mut seen = Vec::new();
        for _ in 0..2 {
            match c.recv_into(&mut buf).unwrap() {
                Recv::Msg { from, level, seq } => seen.push((from, level, seq, buf.clone())),
                g => panic!("unexpected {g:?}"),
            }
        }
        seen.sort_by_key(|e| e.0);
        assert_eq!(seen[0].0, 0);
        assert_eq!(seen[0].1, 1);
        assert_eq!(seen[0].2, 5);
        assert_eq!(seen[0].3[0], 1.0);
        assert!(seen[0].3[1].is_nan());
        assert_eq!(seen[1], (1, 0, 6, vec![2.0]));
        drop(a);
        drop(b);
        assert!(matches!(c.recv_into(&mut buf), Ok(Recv::Goodbye { .. })));
        assert!(matches!(c.recv_into(&mut buf), Ok(Recv::Goodbye { .. })));
    }

    #[test]
    fn timed_recv_times_out_cleanly_and_stream_survives() {
        let mut eps = in_process_cluster(2).unwrap();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        let mut buf = Vec::new();
        assert_eq!(
            b.recv_into_timeout(&mut buf, Some(Duration::from_millis(20))),
            Err(TransportError::Timeout)
        );
        a.send(1, 9, 3, &[7.0]).unwrap();
        assert_eq!(
            b.recv_into(&mut buf).unwrap(),
            Recv::Msg {
                from: 0,
                level: 9,
                seq: 3
            }
        );
        assert_eq!(buf, vec![7.0]);
    }
}
