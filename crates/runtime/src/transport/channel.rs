//! The original in-process backend: one unbounded crossbeam channel per
//! receiving rank, every peer holding a sender clone.
//!
//! This is the PR-4 fabric with one correction: channel closure alone never
//! produced a reliable disconnect signal (every receiver kept live senders
//! from its *other* peers, so a dead rank left the survivors blocked in
//! `recv` forever). The [`super::Recv::Goodbye`] protocol fixes that — a
//! dropped endpoint posts an explicit goodbye to every peer, FIFO-after its
//! earlier messages, and the rank loop errors only when a peer it still
//! awaits is gone.

use super::{bad_peer, Recv, Transport, TransportError, TransportMetrics};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::time::{Duration, Instant};

enum Wire {
    Halo {
        from: usize,
        level: u8,
        seq: u64,
        payload: Vec<f64>,
        /// Maturation instant for link-latency shaping: the receiver may
        /// not observe this message before `ready_at` (`None` = immediate).
        ready_at: Option<Instant>,
    },
    Goodbye {
        from: usize,
    },
}

/// One rank's endpoint of the channel fabric.
pub struct ChannelTransport {
    rank: usize,
    n: usize,
    /// `tx[p]` posts into peer `p`'s inbox; `tx[rank]` is unused.
    tx: Vec<Sender<Wire>>,
    rx: Receiver<Wire>,
    /// A popped-but-immature message parked by `try_recv_into` (channels
    /// cannot peek); every receive path consumes this before the channel.
    staged: Option<Wire>,
    closed: bool,
    /// Emulated wire latency: messages are stamped `now + latency` at send
    /// and mature at the receiver (zero = classic immediate delivery).
    latency: Duration,
    metrics: TransportMetrics,
}

/// Build `n` fully connected endpoints.
pub fn channel_cluster(n: usize) -> Vec<Box<dyn Transport>> {
    channel_cluster_with_latency(n, Duration::ZERO)
}

/// Build `n` fully connected endpoints whose messages take `latency` to
/// "cross the wire": a send is visible to the receiver only `latency`
/// after it was posted, like an in-flight MPI message. The sender is never
/// blocked — this shapes *delivery*, unlike the `FaultyTransport` send
/// delay which stalls the sending rank. Used by the comm/compute-overlap
/// experiments to expose the latency-hiding the paper's asynchronous
/// exchange provides, even on hosts without real parallelism.
pub fn channel_cluster_with_latency(n: usize, latency: Duration) -> Vec<Box<dyn Transport>> {
    let mut txs = Vec::with_capacity(n);
    let mut rxs = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded();
        txs.push(tx);
        rxs.push(rx);
    }
    rxs.into_iter()
        .enumerate()
        .map(|(rank, rx)| {
            Box::new(ChannelTransport {
                rank,
                n,
                tx: txs.clone(),
                rx,
                staged: None,
                closed: false,
                latency,
                metrics: TransportMetrics::default(),
            }) as Box<dyn Transport>
        })
        .collect()
}

/// Granularity of the timed-receive poll; the shim channel (std `mpsc`
/// underneath) has no native `recv_timeout`.
const POLL: Duration = Duration::from_micros(200);

impl Transport for ChannelTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn n_ranks(&self) -> usize {
        self.n
    }

    fn backend(&self) -> &'static str {
        "channel"
    }

    fn send(
        &mut self,
        peer: usize,
        level: u8,
        seq: u64,
        payload: &[f64],
    ) -> Result<(), TransportError> {
        if self.closed {
            return Err(TransportError::Closed);
        }
        if peer == self.rank || peer >= self.n {
            return Err(bad_peer(peer));
        }
        self.metrics.msgs_sent += 1;
        self.metrics.doubles_sent += payload.len() as u64;
        let ready_at = if self.latency.is_zero() {
            None
        } else {
            Some(Instant::now() + self.latency)
        };
        self.tx[peer]
            .send(Wire::Halo {
                from: self.rank,
                level,
                seq,
                // lint: allow(hot-path-alloc) — ownership must cross the
                // channel; the ring/socket backends reuse slot buffers
                payload: payload.to_vec(),
                ready_at,
            })
            .map_err(|_| TransportError::Disconnected { peer })
    }

    fn recv_into_timeout(
        &mut self,
        buf: &mut Vec<f64>,
        timeout: Option<Duration>,
    ) -> Result<Recv, TransportError> {
        buf.clear();
        let wire = match self.staged.take() {
            Some(w) => w,
            None => match timeout {
                // lint: allow(lock-block) — the None deadline means block
                // by contract; the exchange loop passes a watchdog
                None => self.rx.recv().map_err(|_| TransportError::Closed)?,
                Some(t) => {
                    let deadline = Instant::now() + t;
                    loop {
                        match self.rx.try_recv() {
                            Ok(w) => break w,
                            Err(_) => {
                                if Instant::now() >= deadline {
                                    return Err(TransportError::Timeout);
                                }
                                std::thread::sleep(POLL);
                            }
                        }
                    }
                }
            },
        };
        match wire {
            Wire::Halo {
                from,
                level,
                seq,
                payload,
                ready_at,
            } => {
                // link-latency maturation: pop order (per-sender FIFO) is
                // unaffected, the message just isn't visible until its
                // stamp — exactly an in-flight wire message
                if let Some(ready) = ready_at {
                    let now = Instant::now();
                    if ready > now {
                        std::thread::sleep(ready - now);
                    }
                }
                buf.extend_from_slice(&payload);
                Ok(Recv::Msg { from, level, seq })
            }
            Wire::Goodbye { from } => Ok(Recv::Goodbye { from }),
        }
    }

    fn try_recv_into(&mut self, buf: &mut Vec<f64>) -> Result<Option<Recv>, TransportError> {
        buf.clear();
        let wire = match self.staged.take() {
            Some(w) => w,
            // an empty *or* disconnected channel is "nothing ready now";
            // the blocking path reports closure properly
            None => match self.rx.try_recv() {
                Ok(w) => w,
                Err(_) => return Ok(None),
            },
        };
        // an immature shaped message is still in flight: park it (FIFO —
        // every receive path drains `staged` first) and report nothing
        if let Wire::Halo {
            ready_at: Some(ready),
            ..
        } = &wire
        {
            if *ready > Instant::now() {
                self.staged = Some(wire);
                return Ok(None);
            }
        }
        match wire {
            Wire::Halo {
                from,
                level,
                seq,
                payload,
                ..
            } => {
                buf.extend_from_slice(&payload);
                Ok(Some(Recv::Msg { from, level, seq }))
            }
            Wire::Goodbye { from } => Ok(Some(Recv::Goodbye { from })),
        }
    }

    fn metrics(&self) -> TransportMetrics {
        self.metrics
    }

    fn close(&mut self) {
        if self.closed {
            return;
        }
        self.closed = true;
        for (peer, tx) in self.tx.iter().enumerate() {
            if peer != self.rank {
                // best effort: a peer that is itself gone no longer cares
                let _ = tx.send(Wire::Goodbye { from: self.rank });
            }
        }
    }
}

impl Drop for ChannelTransport {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_and_goodbye_order() {
        let mut eps = channel_cluster(2);
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        a.send(1, 3, 10, &[1.0, 2.0]).unwrap();
        a.send(1, 4, 11, &[-0.5]).unwrap();
        a.close();
        let mut buf = Vec::new();
        assert_eq!(
            b.recv_into(&mut buf).unwrap(),
            Recv::Msg {
                from: 0,
                level: 3,
                seq: 10
            }
        );
        assert_eq!(buf, vec![1.0, 2.0]);
        assert_eq!(
            b.recv_into(&mut buf).unwrap(),
            Recv::Msg {
                from: 0,
                level: 4,
                seq: 11
            }
        );
        assert_eq!(buf, vec![-0.5]);
        assert_eq!(b.recv_into(&mut buf).unwrap(), Recv::Goodbye { from: 0 });
    }

    #[test]
    fn link_latency_delays_delivery_but_not_the_sender() {
        let lat = Duration::from_millis(30);
        let mut eps = channel_cluster_with_latency(2, lat);
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        let posted = Instant::now();
        a.send(1, 0, 0, &[1.0]).unwrap();
        a.send(1, 1, 1, &[2.0]).unwrap();
        assert!(
            posted.elapsed() < lat,
            "sends must not block on the emulated wire"
        );
        let mut buf = Vec::new();
        assert_eq!(
            b.recv_into(&mut buf).unwrap(),
            Recv::Msg {
                from: 0,
                level: 0,
                seq: 0
            }
        );
        assert!(posted.elapsed() >= lat, "message visible before maturation");
        // FIFO survives shaping, and an already-matured message is free
        assert_eq!(
            b.recv_into(&mut buf).unwrap(),
            Recv::Msg {
                from: 0,
                level: 1,
                seq: 1
            }
        );
        assert_eq!(buf, vec![2.0]);
    }

    #[test]
    fn timed_recv_times_out() {
        let mut eps = channel_cluster(2);
        let mut a = eps.remove(0);
        let mut buf = Vec::new();
        let r = a.recv_into_timeout(&mut buf, Some(Duration::from_millis(20)));
        assert_eq!(r, Err(TransportError::Timeout));
    }
}
