//! Online stall/imbalance monitoring.
//!
//! The paper's diagnosis loop is post-hoc: run, dump `RankStats`, look at
//! Fig. 1. This module watches the same signals *while the run is live*:
//! each rank feeds its per-exchange busy/wait durations into a shared
//! [`StallMonitor`] (two relaxed atomic adds per exchange — the hot path
//! stays lock-free), and a per-rank [`RankMonitor`] tracks a sliding window
//! of `window_exchanges` exchanges. At every window boundary the rank
//!
//! * records its windowed per-level wait-fraction watermark as a gauge
//!   ([`crate::stats::names::STALL_WAIT_FRAC_WM`]),
//! * refreshes the per-level λ watermark (Eq. 21 over the ranks' measured
//!   busy time so far), and
//! * raises a [`StallWarning`] (once per rank × level) when the window's
//!   wait fraction crosses the configured threshold.
//!
//! Final λ gauges ([`crate::stats::names::STALL_LAMBDA`]) are stamped into
//! every rank's registry after the join, when all busy totals are complete —
//! they then agree with the post-hoc [`crate::stats::lambda_from_stats`].

use crate::stats::names;
use lts_obs::MetricsRegistry;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Stall-monitor knobs, carried inside [`crate::DistributedConfig`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonitorConfig {
    /// Exchanges per observation window (per rank).
    pub window_exchanges: u32,
    /// Warn when a window's per-level wait fraction reaches this value.
    pub wait_warn_fraction: f64,
    /// Print structured `[stall-monitor]` warning lines to stderr.
    pub log_warnings: bool,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            window_exchanges: 16,
            wait_warn_fraction: 0.5,
            log_warnings: true,
        }
    }
}

/// One threshold crossing: rank `rank` spent `wait_fraction` of the last
/// window blocked at exchanges of `level`, while the run-wide per-level
/// imbalance stood at `lambda`.
#[derive(Debug, Clone, PartialEq)]
pub struct StallWarning {
    pub rank: usize,
    pub level: u8,
    /// Exchanges this rank had completed when the warning fired.
    pub exchanges_seen: u64,
    pub wait_fraction: f64,
    pub lambda: f64,
}

/// Eq. 21 over a slice of per-rank loads: `(max − min) / max`, as a fraction
/// (0 = perfectly balanced, → 1 = one rank idles). Zero when nothing ran.
pub fn eq21_lambda(loads: &[f64]) -> f64 {
    let max = loads.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min = loads.iter().cloned().fold(f64::INFINITY, f64::min);
    if max > 0.0 {
        (max - min) / max
    } else {
        0.0
    }
}

/// Shared cross-rank accumulator. Ranks write only their own `(rank, level)`
/// slots, so the relaxed atomics never contend on the hot path; readers take
/// an instantaneous (slightly stale) snapshot.
#[derive(Debug)]
pub struct StallMonitor {
    cfg: MonitorConfig,
    n_ranks: usize,
    n_levels: usize,
    /// Busy/wait nanoseconds per `rank * n_levels + level`.
    busy_ns: Vec<AtomicU64>,
    wait_ns: Vec<AtomicU64>,
    /// Per-level watermark of λ snapshots, stored as `f64` bits.
    lambda_wm_bits: Vec<AtomicU64>,
    warnings: Mutex<Vec<StallWarning>>,
}

impl StallMonitor {
    pub fn new(cfg: MonitorConfig, n_ranks: usize, n_levels: usize) -> Arc<Self> {
        let slots = n_ranks * n_levels;
        Arc::new(StallMonitor {
            cfg,
            n_ranks,
            n_levels,
            busy_ns: (0..slots).map(|_| AtomicU64::new(0)).collect(),
            wait_ns: (0..slots).map(|_| AtomicU64::new(0)).collect(),
            lambda_wm_bits: (0..n_levels)
                .map(|_| AtomicU64::new(0f64.to_bits()))
                .collect(),
            warnings: Mutex::new(Vec::new()),
        })
    }

    pub fn config(&self) -> MonitorConfig {
        self.cfg
    }

    pub fn n_levels(&self) -> usize {
        self.n_levels
    }

    /// Fold one exchange's busy/wait seconds into `(rank, level)`.
    pub fn record(&self, rank: usize, level: u8, busy_s: f64, wait_s: f64) {
        let slot = rank * self.n_levels + level as usize;
        self.busy_ns[slot].fetch_add((busy_s * 1e9) as u64, Ordering::Relaxed);
        self.wait_ns[slot].fetch_add((wait_s * 1e9) as u64, Ordering::Relaxed);
    }

    /// Instantaneous Eq. 21 λ per level over the ranks' busy time so far.
    /// Callable from inside the exchange loop, so the per-level fold streams
    /// min/max instead of materializing a per-rank load vector.
    pub fn lambda_per_level(&self) -> Vec<f64> {
        (0..self.n_levels)
            .map(|l| {
                let (mut max, mut min) = (f64::NEG_INFINITY, f64::INFINITY);
                for r in 0..self.n_ranks {
                    let load = self.busy_ns[r * self.n_levels + l].load(Ordering::Relaxed) as f64;
                    max = max.max(load);
                    min = min.min(load);
                }
                if max > 0.0 {
                    (max - min) / max
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Refresh the per-level λ watermarks from a fresh snapshot and return it.
    pub fn update_lambda_watermarks(&self) -> Vec<f64> {
        let snap = self.lambda_per_level();
        for (l, &lam) in snap.iter().enumerate() {
            let cell = &self.lambda_wm_bits[l];
            let mut cur = cell.load(Ordering::Relaxed);
            while lam > f64::from_bits(cur) {
                match cell.compare_exchange_weak(
                    cur,
                    lam.to_bits(),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
        }
        snap
    }

    pub fn lambda_watermarks(&self) -> Vec<f64> {
        self.lambda_wm_bits
            .iter()
            .map(|b| f64::from_bits(b.load(Ordering::Relaxed)))
            .collect()
    }

    pub fn push_warning(&self, w: StallWarning) {
        if self.cfg.log_warnings {
            eprintln!(
                "[stall-monitor] rank={} level={} window_wait_frac={:.2} lambda={:.2} threshold={:.2} exchanges={}",
                w.rank, w.level, w.wait_fraction, w.lambda, self.cfg.wait_warn_fraction, w.exchanges_seen
            );
        }
        // A panicked rank may have poisoned the mutex; the warning list is
        // still coherent (push is atomic w.r.t. the lock), so recover it.
        self.warnings
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(w);
    }

    pub fn warnings(&self) -> Vec<StallWarning> {
        self.warnings
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }
}

/// The rank-thread side of the monitor: window accumulation and gauge
/// recording. Owned by one rank; `reg` is that rank's registry.
#[derive(Debug)]
pub struct RankMonitor {
    shared: Arc<StallMonitor>,
    rank: usize,
    exchanges: u64,
    win_busy: Vec<f64>,
    win_wait: Vec<f64>,
    warned: Vec<bool>,
}

impl RankMonitor {
    pub fn new(shared: Arc<StallMonitor>, rank: usize) -> Self {
        let n_levels = shared.n_levels();
        RankMonitor {
            shared,
            rank,
            exchanges: 0,
            win_busy: vec![0.0; n_levels],
            win_wait: vec![0.0; n_levels],
            warned: vec![false; n_levels],
        }
    }

    /// Called by the rank at every exchange point. Returns `true` when the
    /// call closed a window that raised a new stall warning (the flight
    /// recorder logs a `stall_warning` event off this).
    pub fn on_exchange(
        &mut self,
        reg: &mut MetricsRegistry,
        level: u8,
        busy_s: f64,
        wait_s: f64,
    ) -> bool {
        self.shared.record(self.rank, level, busy_s, wait_s);
        self.win_busy[level as usize] += busy_s;
        self.win_wait[level as usize] += wait_s;
        self.exchanges += 1;
        if self
            .exchanges
            .is_multiple_of(self.shared.config().window_exchanges.max(1) as u64)
        {
            self.flush_window(reg)
        } else {
            false
        }
    }

    /// Close the current window: count it, record watermarks, raise
    /// threshold warnings. Also called once at end of run for the final
    /// partial window. Returns whether a new warning fired.
    pub fn flush_window(&mut self, reg: &mut MetricsRegistry) -> bool {
        reg.inc(names::STALL_WINDOWS, 1);
        let mut warned_now = false;
        let lambda = self.shared.update_lambda_watermarks();
        let threshold = self.shared.config().wait_warn_fraction;
        for (l, &lam) in lambda.iter().enumerate().take(self.win_busy.len()) {
            let total = self.win_busy[l] + self.win_wait[l];
            if total <= 0.0 {
                continue;
            }
            let wf = self.win_wait[l] / total;
            let wm = reg
                .gauge(names::STALL_WAIT_FRAC_WM, Some(l as u8))
                .unwrap_or(0.0);
            if wf > wm {
                reg.set_gauge_level(names::STALL_WAIT_FRAC_WM, l as u8, wf);
            }
            if wf >= threshold && !self.warned[l] {
                self.warned[l] = true;
                warned_now = true;
                reg.inc_level(names::STALL_WARNINGS, l as u8, 1);
                self.shared.push_warning(StallWarning {
                    rank: self.rank,
                    level: l as u8,
                    exchanges_seen: self.exchanges,
                    wait_fraction: wf,
                    lambda: lam,
                });
            }
            self.win_busy[l] = 0.0;
            self.win_wait[l] = 0.0;
        }
        warned_now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq21_lambda_edge_cases() {
        assert_eq!(eq21_lambda(&[]), 0.0);
        assert_eq!(eq21_lambda(&[0.0, 0.0]), 0.0);
        assert_eq!(eq21_lambda(&[2.0, 2.0]), 0.0);
        assert!((eq21_lambda(&[1.0, 4.0]) - 0.75).abs() < 1e-12);
        assert_eq!(eq21_lambda(&[0.0, 3.0]), 1.0);
    }

    #[test]
    fn monitor_accumulates_and_snapshots_lambda() {
        let mon = StallMonitor::new(MonitorConfig::default(), 2, 2);
        mon.record(0, 0, 1.0, 0.0);
        mon.record(1, 0, 0.25, 0.75);
        mon.record(0, 1, 0.5, 0.0);
        let lam = mon.lambda_per_level();
        assert!((lam[0] - 0.75).abs() < 1e-9, "{lam:?}");
        assert_eq!(lam[1], 1.0); // rank 1 never busy at level 1
    }

    #[test]
    fn watermark_only_rises() {
        let mon = StallMonitor::new(MonitorConfig::default(), 2, 1);
        mon.record(0, 0, 1.0, 0.0);
        mon.record(1, 0, 0.5, 0.0);
        mon.update_lambda_watermarks();
        let wm1 = mon.lambda_watermarks()[0];
        assert!((wm1 - 0.5).abs() < 1e-9);
        // rank 1 catches up → snapshot drops, watermark must not
        mon.record(1, 0, 0.5, 0.0);
        let snap = mon.update_lambda_watermarks();
        assert!(snap[0].abs() < 1e-9);
        assert_eq!(mon.lambda_watermarks()[0], wm1);
    }

    #[test]
    fn rank_monitor_warns_once_per_level_and_records_gauges() {
        let cfg = MonitorConfig {
            window_exchanges: 2,
            wait_warn_fraction: 0.6,
            log_warnings: false,
        };
        let mon = StallMonitor::new(cfg, 2, 1);
        let mut rm = RankMonitor::new(mon.clone(), 0);
        let mut reg = MetricsRegistry::new();
        // window 1: 80 % wait → warning
        rm.on_exchange(&mut reg, 0, 0.2, 0.8);
        rm.on_exchange(&mut reg, 0, 0.2, 0.8);
        // window 2: still stalled → no second warning
        rm.on_exchange(&mut reg, 0, 0.2, 0.8);
        rm.on_exchange(&mut reg, 0, 0.2, 0.8);
        let warnings = mon.warnings();
        assert_eq!(warnings.len(), 1);
        assert_eq!(warnings[0].rank, 0);
        assert_eq!(warnings[0].level, 0);
        assert!((warnings[0].wait_fraction - 0.8).abs() < 1e-9);
        assert_eq!(reg.counter(names::STALL_WARNINGS, Some(0)), 1);
        assert_eq!(reg.counter(names::STALL_WINDOWS, None), 2);
        let wm = reg.gauge(names::STALL_WAIT_FRAC_WM, Some(0)).unwrap();
        assert!((wm - 0.8).abs() < 1e-9);
    }

    #[test]
    fn below_threshold_records_watermark_but_no_warning() {
        let cfg = MonitorConfig {
            window_exchanges: 1,
            wait_warn_fraction: 0.9,
            log_warnings: false,
        };
        let mon = StallMonitor::new(cfg, 1, 1);
        let mut rm = RankMonitor::new(mon.clone(), 0);
        let mut reg = MetricsRegistry::new();
        rm.on_exchange(&mut reg, 0, 0.5, 0.5);
        assert!(mon.warnings().is_empty());
        assert_eq!(reg.counter(names::STALL_WARNINGS, Some(0)), 0);
        assert!((reg.gauge(names::STALL_WAIT_FRAC_WM, Some(0)).unwrap() - 0.5).abs() < 1e-9);
    }
}
