//! Hand-rolled workspace lint for the wave-LTS codebase.
//!
//! Four rules, all motivated by production incidents waiting to happen in a
//! numerical hot loop (see `DESIGN.md` § Static analysis & soundness):
//!
//! 1. **hot-path-alloc** — functions tagged `// lint: hot-path` (or listed
//!    in `lint/hotpaths.toml`) must not heap-allocate: no `Vec::new`,
//!    `to_vec`, `clone`, `collect`, `format!`, … The SEM element kernels
//!    run millions of times per step; one stray `clone()` is a 2× slowdown
//!    that no unit test catches.
//! 2. **no-panic** — `crates/runtime` and `crates/sem` non-test code must
//!    not `unwrap`/`expect`/`panic!`: a rank that panics mid-exchange
//!    deadlocks its peers instead of failing cleanly.
//! 3. **unsafe-safety** — every `unsafe` block carries a `// SAFETY:`
//!    comment; `unsafe` items carry a `# Safety` doc section.
//! 4. **float-eq** — no `==`/`!=` against floating-point literals outside
//!    `to_bits()` comparisons.
//!
//! Per-line escape: `// lint: allow(<rule>) — <justification>`.
//!
//! Run as `cargo xtask lint` (alias in `.cargo/config.toml`); CI runs it
//! from `scripts/check.sh` and fails on any diagnostic.

#![forbid(unsafe_code)]

pub mod config;
pub mod rules;
pub mod source;

use config::HotPathConfig;
use rules::Diagnostic;
use source::Scrubbed;
use std::path::{Path, PathBuf};

/// Crates whose non-test code falls under the `no-panic` rule.
const NO_PANIC_SCOPES: &[&str] = &["crates/runtime/src", "crates/sem/src"];

/// Lint one file's contents. `rel` is the workspace-relative path with
/// forward slashes (used for rule scoping and `hotpaths.toml` matching).
pub fn lint_source(rel: &str, src: &str, cfg: &HotPathConfig) -> Vec<Diagnostic> {
    let s = Scrubbed::new(src);
    let path = Path::new(rel);
    let mut diags = Vec::new();
    rules::check_hot_path(path, rel, &s, cfg, &mut diags);
    if NO_PANIC_SCOPES.iter().any(|p| rel.starts_with(p)) {
        rules::check_no_panic(path, &s, &mut diags);
    }
    rules::check_unsafe(path, &s, &mut diags);
    rules::check_float_eq(path, &s, &mut diags);
    diags
}

/// Recursively collect the `.rs` files the lint governs: the root package's
/// `src/` and every `crates/*/src/`. `shims/` (offline stand-ins for
/// registry crates, not our code), `tests/`, `benches/` and `examples/`
/// trees are out of scope by construction.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut dirs = vec![root.join("src")];
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members: Vec<PathBuf> = std::fs::read_dir(&crates)?
            .filter_map(|e| e.ok())
            .map(|e| e.path().join("src"))
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        dirs.extend(members);
    }
    let mut files = Vec::new();
    while let Some(dir) = dirs.pop() {
        if !dir.is_dir() {
            continue;
        }
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .collect();
        entries.sort();
        for p in entries {
            if p.is_dir() {
                dirs.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                files.push(p);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Lint the whole workspace rooted at `root`. Returns the number of files
/// checked and all diagnostics, sorted by path and line.
pub fn lint_workspace(root: &Path) -> std::io::Result<(usize, Vec<Diagnostic>)> {
    let cfg_path = root.join("lint/hotpaths.toml");
    let cfg = if cfg_path.is_file() {
        HotPathConfig::parse(&std::fs::read_to_string(&cfg_path)?).unwrap_or_else(|e| {
            // a broken policy file must not silently disable the policy
            panic!("{e}");
        })
    } else {
        HotPathConfig::default()
    };
    let files = workspace_files(root)?;
    let mut diags = Vec::new();
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(file)?;
        for mut d in lint_source(&rel, &src, &cfg) {
            d.file = PathBuf::from(&rel);
            diags.push(d);
        }
    }
    diags.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok((files.len(), diags))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoping_applies_no_panic_only_to_runtime_and_sem() {
        let cfg = HotPathConfig::default();
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(lint_source("crates/runtime/src/a.rs", src, &cfg).len(), 1);
        assert_eq!(lint_source("crates/sem/src/a.rs", src, &cfg).len(), 1);
        assert!(lint_source("crates/mesh/src/a.rs", src, &cfg).is_empty());
        assert!(lint_source("src/bin/a.rs", src, &cfg).is_empty());
    }

    #[test]
    fn diagnostics_render_file_line_rule() {
        let cfg = HotPathConfig::default();
        let d = lint_source(
            "crates/sem/src/a.rs",
            "fn f() { None::<u32>.unwrap(); }\n",
            &cfg,
        );
        assert_eq!(format!("{}", d[0]), "crates/sem/src/a.rs:1: [no-panic] `.unwrap()` in non-test code (return a Result instead)");
    }
}
