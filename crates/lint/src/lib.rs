//! Hand-rolled workspace lint for the wave-LTS codebase.
//!
//! Two tiers, both motivated by production incidents waiting to happen in a
//! numerical hot loop (see `DESIGN.md` §11 Semantic analysis):
//!
//! **Semantic tier** (the default gate): a parsed workspace model — symbol
//! table + conservative call graph over every crate — with root sets from
//! `lint/hotpaths.toml`, runs four analyses with blame chains
//! (root → … → offending call):
//!
//! 1. **hot-path-alloc / hot-path-panic** — transitive purity: no
//!    allocation or panic-capable construct *reachable* from a hot root;
//! 2. **determinism** — no hash-order iteration, wall-clock reads, thread
//!    identity, or FMA/horizontal-reduction intrinsics reachable from the
//!    counter-gated kernels (the bitwise reproducibility contract);
//! 3. **lock-order / lock-block** — the transport's Mutex/condvar pairs
//!    must be cycle-free and must not block unboundedly on the exchange
//!    path;
//! 4. **protocol** — every `Frame`/`EventKind`/metric-id variant has
//!    encode+decode arms, and wire-shape changes bump `codec::VERSION`
//!    (checked against the committed fingerprint).
//!
//! **Lexer tier** (fallback): the original textual rules — `no-panic` in
//! runtime/sem (catches code the call graph can't prove reachable),
//! `unsafe-safety`, `float-eq`.
//!
//! Per-line escape: `// lint: allow(<rule>) — <justification>`; the
//! justification is mandatory (an unjustified allow is itself an error)
//! and every allow is counted in the summary.
//!
//! Run as `cargo xtask lint` (alias in `.cargo/config.toml`); CI runs it
//! from `scripts/check.sh` with `--sarif target/lint.sarif`.

#![forbid(unsafe_code)]

pub mod analyze;
pub mod cache;
pub mod cli;
pub mod config;
pub mod graph;
pub mod parse;
pub mod rules;
pub mod sarif;
pub mod source;

use cache::{Cache, FileSummary};
use config::{HotPathConfig, LintConfig};
use rules::{Diagnostic, Severity};
use source::Scrubbed;
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// Crates whose non-test code falls under the `no-panic` rule.
const NO_PANIC_SCOPES: &[&str] = &["crates/runtime/src", "crates/sem/src"];

/// FNV-1a 64-bit — content hashing for the parse cache and the wire
/// fingerprint.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Which analyses run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Semantic + lexer fallback (the gate default).
    All,
    /// Call-graph analyses only.
    Semantic,
    /// The original textual rules only.
    Lexer,
}

/// Driver options (what the CLI flags map to).
#[derive(Debug, Clone)]
pub struct Options {
    pub root: PathBuf,
    pub tier: Tier,
    pub verbose: bool,
    pub sarif: Option<PathBuf>,
    pub no_cache: bool,
}

impl Options {
    pub fn new(root: impl Into<PathBuf>) -> Options {
        Options {
            root: root.into(),
            tier: Tier::All,
            verbose: false,
            sarif: None,
            no_cache: false,
        }
    }
}

/// Everything one lint run produced.
#[derive(Debug, Default)]
pub struct Report {
    pub n_files: usize,
    pub n_cached: usize,
    pub n_fns: usize,
    pub n_edges: usize,
    /// `(rule, count)` of `// lint: allow(rule)` escapes in force.
    pub allows: BTreeMap<String, usize>,
    /// Sorted by (file, line, rule); errors and warnings together.
    pub diags: Vec<Diagnostic>,
    /// `--verbose` lines: resolved root sets, reach sizes.
    pub verbose_lines: Vec<String>,
}

impl Report {
    pub fn errors(&self) -> usize {
        self.diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    pub fn warnings(&self) -> usize {
        self.diags.len() - self.errors()
    }
}

/// Lint one file's contents with the lexer tier. `rel` is the
/// workspace-relative path with forward slashes (used for rule scoping and
/// `hotpaths.toml` matching).
pub fn lint_source(rel: &str, src: &str, cfg: &HotPathConfig) -> Vec<Diagnostic> {
    let s = Scrubbed::new(src);
    lint_scrubbed(rel, &s, cfg)
}

fn lint_scrubbed(rel: &str, s: &Scrubbed, cfg: &HotPathConfig) -> Vec<Diagnostic> {
    let path = Path::new(rel);
    let mut diags = Vec::new();
    rules::check_hot_path(path, rel, s, cfg, &mut diags);
    if NO_PANIC_SCOPES.iter().any(|p| rel.starts_with(p)) {
        rules::check_no_panic(path, s, &mut diags);
    }
    rules::check_unsafe(path, s, &mut diags);
    rules::check_float_eq(path, s, &mut diags);
    diags
}

/// Recursively collect the `.rs` files the lint governs: the root package's
/// `src/` and every `crates/*/src/`. `shims/` (offline stand-ins for
/// registry crates, not our code), `tests/`, `benches/` and `examples/`
/// trees are out of scope by construction.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut dirs = vec![root.join("src")];
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members: Vec<PathBuf> = std::fs::read_dir(&crates)?
            .filter_map(|e| e.ok())
            .map(|e| e.path().join("src"))
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        dirs.extend(members);
    }
    let mut files = Vec::new();
    while let Some(dir) = dirs.pop() {
        if !dir.is_dir() {
            continue;
        }
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .collect();
        entries.sort();
        for p in entries {
            if p.is_dir() {
                dirs.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                files.push(p);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Transitive workspace dependency map, crate key → crate keys it may call
/// into, from a line-oriented read of each `crates/*/Cargo.toml`. Only
/// `[dependencies]` count — test modules are already blanked, so
/// dev-dependency edges would only add noise.
pub fn crate_deps(root: &Path) -> BTreeMap<String, BTreeSet<String>> {
    // package name -> crate key, and crate key -> direct dep package names
    let mut key_of: BTreeMap<String, String> = BTreeMap::new();
    let mut direct: BTreeMap<String, Vec<String>> = BTreeMap::new();
    let crates = root.join("crates");
    let Ok(rd) = std::fs::read_dir(&crates) else {
        return BTreeMap::new();
    };
    for entry in rd.filter_map(|e| e.ok()) {
        let manifest = entry.path().join("Cargo.toml");
        let Ok(text) = std::fs::read_to_string(&manifest) else {
            continue;
        };
        let key = format!("crates/{}", entry.file_name().to_string_lossy());
        let mut section = String::new();
        let mut pkg_name = String::new();
        let mut deps = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if let Some(s) = line.strip_prefix('[') {
                section = s.trim_end_matches(']').to_string();
                continue;
            }
            let Some((k, v)) = line.split_once('=') else {
                continue;
            };
            let k = k.trim();
            if section == "package" && k == "name" {
                pkg_name = v.trim().trim_matches('"').to_string();
            } else if section == "dependencies" {
                // `lts-core.workspace = true` or `lts-core = { path = … }`
                deps.push(k.split('.').next().unwrap_or(k).to_string());
            }
        }
        if !pkg_name.is_empty() {
            key_of.insert(pkg_name, key.clone());
        }
        direct.insert(key, deps);
    }
    // resolve package names to keys, then take the transitive closure
    let mut out: BTreeMap<String, BTreeSet<String>> = direct
        .iter()
        .map(|(key, deps)| {
            let set: BTreeSet<String> =
                deps.iter().filter_map(|d| key_of.get(d).cloned()).collect();
            (key.clone(), set)
        })
        .collect();
    loop {
        let mut grew = false;
        for key in out.keys().cloned().collect::<Vec<_>>() {
            let reach: BTreeSet<String> = out[&key]
                .iter()
                .flat_map(|d| out.get(d).cloned().unwrap_or_default())
                .collect();
            let set = out.get_mut(&key).unwrap();
            for r in reach {
                grew |= set.insert(r);
            }
        }
        if !grew {
            break;
        }
    }
    out
}

fn load_config(root: &Path) -> std::io::Result<LintConfig> {
    let cfg_path = root.join("lint/hotpaths.toml");
    if cfg_path.is_file() {
        LintConfig::parse(&std::fs::read_to_string(&cfg_path)?).map_err(std::io::Error::other)
    } else {
        Ok(LintConfig::default())
    }
}

/// The parsed workspace: per-file facts plus the assembled call graph.
pub struct Model {
    pub cfg: LintConfig,
    pub files: BTreeMap<String, FileSummary>,
    pub ws: graph::Workspace,
    pub n_files: usize,
    pub n_cached: usize,
}

/// Read, scrub and parse every workspace file (through the cache unless
/// disabled) and build the call graph.
pub fn build_model(root: &Path, use_cache: bool) -> std::io::Result<Model> {
    let cfg = load_config(root)?;
    let cfg_text = std::fs::read_to_string(root.join("lint/hotpaths.toml")).unwrap_or_default();
    let cache_path = root.join("target/lint-parse.cache");
    let mut cache = if use_cache {
        Cache::load(&cache_path, fnv64(cfg_text.as_bytes()))
    } else {
        Cache::empty(fnv64(cfg_text.as_bytes()))
    };
    let paths = workspace_files(root)?;
    let mut files: BTreeMap<String, FileSummary> = BTreeMap::new();
    for file in &paths {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(file)?;
        let hash = fnv64(src.as_bytes());
        let (mtime, size) = cache::file_stamp(file)?;
        let summary = match cache.get(&rel, mtime, size, hash) {
            Some(s) => s,
            None => {
                let s = Scrubbed::new(&src);
                let legacy: Vec<Diagnostic> = lint_scrubbed(&rel, &s, &cfg)
                    .into_iter()
                    .map(|mut d| {
                        d.file = PathBuf::from(&rel);
                        d
                    })
                    .collect();
                let summary = FileSummary {
                    parsed: parse::parse_file(&s),
                    legacy,
                };
                cache.put(&rel, mtime, size, hash, summary.clone());
                summary
            }
        };
        files.insert(rel, summary);
    }
    let n_cached = cache.hits;
    if use_cache {
        // best-effort: a read-only target/ must not fail the lint
        let _ = cache.save(&cache_path);
    }
    let parsed: Vec<(String, parse::ParsedFile)> = files
        .iter()
        .map(|(rel, s)| (rel.clone(), s.parsed.clone()))
        .collect();
    let ws = graph::Workspace::build_with_deps(&parsed, crate_deps(root));
    Ok(Model {
        cfg,
        files,
        ws,
        n_files: paths.len(),
        n_cached,
    })
}

/// Run a full lint pass.
pub fn run(opts: &Options) -> std::io::Result<Report> {
    let model = build_model(&opts.root, !opts.no_cache)?;
    let mut report = Report {
        n_files: model.n_files,
        n_cached: model.n_cached,
        n_fns: model.ws.fns.len(),
        n_edges: model.ws.edges.len(),
        ..Report::default()
    };
    let parsed_only: BTreeMap<String, parse::ParsedFile> = model
        .files
        .iter()
        .map(|(rel, s)| (rel.clone(), s.parsed.clone()))
        .collect();

    let mut diags: Vec<Diagnostic> = Vec::new();
    if opts.tier != Tier::Lexer {
        let sem = analyze::run_semantic(&opts.root, &model.ws, &model.cfg, &parsed_only);
        if opts.verbose {
            let names = |ids: &[graph::FnId]| -> Vec<String> {
                ids.iter()
                    .map(|&id| {
                        format!(
                            "{} ({}:{})",
                            model.ws.qualified(id),
                            model.ws.fns[id].file,
                            model.ws.fns[id].f.line
                        )
                    })
                    .collect()
            };
            report
                .verbose_lines
                .push(format!("hot roots: {}", names(&sem.roots.hot).join(", ")));
            report.verbose_lines.push(format!(
                "kernel roots: {}",
                names(&sem.roots.kernels).join(", ")
            ));
            report.verbose_lines.push(format!(
                "reach: {} fns from hot roots, {} from kernel roots; {} stops",
                sem.hot_reached,
                sem.kernel_reached,
                sem.roots.stops.len()
            ));
        }
        diags.extend(sem.diags);
    }
    if opts.tier != Tier::Semantic {
        let semantic_panics: std::collections::BTreeSet<(PathBuf, usize)> = diags
            .iter()
            .filter(|d| d.rule == rules::RULE_HOT_PANIC)
            .map(|d| (d.file.clone(), d.line))
            .collect();
        for summary in model.files.values() {
            for d in &summary.legacy {
                if opts.tier == Tier::All {
                    // the semantic tier subsumes the tag-scoped alloc scan and
                    // any textual panic finding it already reported with a chain
                    if d.rule == rules::RULE_HOT_PATH {
                        continue;
                    }
                    if d.rule == rules::RULE_NO_PANIC
                        && semantic_panics.contains(&(d.file.clone(), d.line))
                    {
                        continue;
                    }
                }
                diags.push(d.clone());
            }
        }
    }

    // allow audit: count escapes, reject unjustified or unknown-rule ones
    for (rel, summary) in &model.files {
        for a in &summary.parsed.allows {
            *report.allows.entry(a.rule.clone()).or_default() += 1;
            if !rules::ALL_RULES.contains(&a.rule.as_str()) {
                diags.push(Diagnostic::new(
                    rel,
                    a.line,
                    rules::RULE_ALLOW_AUDIT,
                    format!("allow names unknown rule `{}`", a.rule),
                ));
            } else if !a.justified {
                diags.push(Diagnostic::new(
                    rel,
                    a.line,
                    rules::RULE_ALLOW_AUDIT,
                    format!(
                        "unjustified escape: `allow({})` needs a one-line reason after the closing paren",
                        a.rule
                    ),
                ));
            }
        }
    }

    diags.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    diags.dedup();
    report.diags = diags;

    if let Some(sarif_path) = &opts.sarif {
        let text = sarif::to_sarif(&report.diags);
        sarif::validate_json(&text).map_err(|e| {
            std::io::Error::other(format!("generated SARIF failed self-validation: {e}"))
        })?;
        if let Some(dir) = sarif_path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(sarif_path, text)?;
    }
    Ok(report)
}

/// Back-compat wrapper: lint the whole workspace with the default tier.
/// Returns the number of files checked and all diagnostics.
pub fn lint_workspace(root: &Path) -> std::io::Result<(usize, Vec<Diagnostic>)> {
    let report = run(&Options::new(root))?;
    Ok((report.n_files, report.diags))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoping_applies_no_panic_only_to_runtime_and_sem() {
        let cfg = HotPathConfig::default();
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(lint_source("crates/runtime/src/a.rs", src, &cfg).len(), 1);
        assert_eq!(lint_source("crates/sem/src/a.rs", src, &cfg).len(), 1);
        assert!(lint_source("crates/mesh/src/a.rs", src, &cfg).is_empty());
        assert!(lint_source("src/bin/a.rs", src, &cfg).is_empty());
    }

    #[test]
    fn diagnostics_render_file_line_rule() {
        let cfg = HotPathConfig::default();
        let d = lint_source(
            "crates/sem/src/a.rs",
            "fn f() { None::<u32>.unwrap(); }\n",
            &cfg,
        );
        assert_eq!(format!("{}", d[0]), "crates/sem/src/a.rs:1: [no-panic] `.unwrap()` in non-test code (return a Result instead)");
    }

    #[test]
    fn fnv64_is_stable() {
        // pinned: the wire fingerprint and cache key depend on these values
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
