//! SARIF 2.1.0 output for CI annotation, hand-rolled (no JSON dependency
//! exists offline) plus a small strict JSON syntax checker used to
//! self-validate every file we emit — a malformed SARIF artifact would
//! silently break CI ingestion, so `check.sh`'s artifact is verified at
//! write time.

use crate::rules::{Diagnostic, Severity};
use std::fmt::Write as _;

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn location(file: &str, line: usize) -> String {
    format!(
        "{{\"physicalLocation\":{{\"artifactLocation\":{{\"uri\":\"{}\"}},\"region\":{{\"startLine\":{}}}}}}}",
        esc(file),
        line.max(1)
    )
}

/// Render `diags` as a SARIF 2.1.0 log with one run. Blame chains become
/// `relatedLocations`, root-first.
pub fn to_sarif(diags: &[Diagnostic]) -> String {
    let mut rules: Vec<&str> = diags.iter().map(|d| d.rule).collect();
    rules.sort_unstable();
    rules.dedup();
    let rules_json: Vec<String> = rules
        .iter()
        .map(|r| format!("{{\"id\":\"{}\"}}", esc(r)))
        .collect();
    let results: Vec<String> = diags
        .iter()
        .map(|d| {
            let related: Vec<String> = d
                .chain
                .iter()
                .map(|h| {
                    format!(
                        "{{\"physicalLocation\":{{\"artifactLocation\":{{\"uri\":\"{}\"}},\"region\":{{\"startLine\":{}}}}},\"message\":{{\"text\":\"{}\"}}}}",
                        esc(&h.file),
                        h.line.max(1),
                        esc(&h.what)
                    )
                })
                .collect();
            let related = if related.is_empty() {
                String::new()
            } else {
                format!(",\"relatedLocations\":[{}]", related.join(","))
            };
            format!(
                "{{\"ruleId\":\"{}\",\"level\":\"{}\",\"message\":{{\"text\":\"{}\"}},\"locations\":[{}]{}}}",
                esc(d.rule),
                match d.severity {
                    Severity::Error => "error",
                    Severity::Warning => "warning",
                },
                esc(&d.msg),
                location(&d.file.to_string_lossy(), d.line),
                related
            )
        })
        .collect();
    format!(
        "{{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\"version\":\"2.1.0\",\"runs\":[{{\"tool\":{{\"driver\":{{\"name\":\"lts-lint\",\"informationUri\":\"https://example.invalid/lts-lint\",\"version\":\"{}\",\"rules\":[{}]}}}},\"results\":[{}]}}]}}\n",
        env!("CARGO_PKG_VERSION"),
        rules_json.join(","),
        results.join(",")
    )
}

/// Strict JSON syntax check (structure only, no data model). Returns the
/// byte offset of the first error.
pub fn validate_json(text: &str) -> Result<(), String> {
    let b: Vec<char> = text.chars().collect();
    let mut i = 0usize;
    fn ws(b: &[char], i: &mut usize) {
        while *i < b.len() && matches!(b[*i], ' ' | '\t' | '\n' | '\r') {
            *i += 1;
        }
    }
    fn value(b: &[char], i: &mut usize) -> Result<(), String> {
        ws(b, i);
        let Some(&c) = b.get(*i) else {
            return Err(format!("offset {}: unexpected end of input", i));
        };
        match c {
            '{' => {
                *i += 1;
                ws(b, i);
                if b.get(*i) == Some(&'}') {
                    *i += 1;
                    return Ok(());
                }
                loop {
                    ws(b, i);
                    string(b, i)?;
                    ws(b, i);
                    if b.get(*i) != Some(&':') {
                        return Err(format!("offset {}: expected ':'", i));
                    }
                    *i += 1;
                    value(b, i)?;
                    ws(b, i);
                    match b.get(*i) {
                        Some(',') => *i += 1,
                        Some('}') => {
                            *i += 1;
                            return Ok(());
                        }
                        _ => return Err(format!("offset {}: expected ',' or '}}'", i)),
                    }
                }
            }
            '[' => {
                *i += 1;
                ws(b, i);
                if b.get(*i) == Some(&']') {
                    *i += 1;
                    return Ok(());
                }
                loop {
                    value(b, i)?;
                    ws(b, i);
                    match b.get(*i) {
                        Some(',') => *i += 1,
                        Some(']') => {
                            *i += 1;
                            return Ok(());
                        }
                        _ => return Err(format!("offset {}: expected ',' or ']'", i)),
                    }
                }
            }
            '"' => string(b, i),
            't' => lit(b, i, "true"),
            'f' => lit(b, i, "false"),
            'n' => lit(b, i, "null"),
            '-' | '0'..='9' => {
                *i += 1;
                while *i < b.len() && matches!(b[*i], '0'..='9' | '.' | 'e' | 'E' | '+' | '-') {
                    *i += 1;
                }
                Ok(())
            }
            c => Err(format!("offset {}: unexpected char {c:?}", i)),
        }
    }
    fn string(b: &[char], i: &mut usize) -> Result<(), String> {
        if b.get(*i) != Some(&'"') {
            return Err(format!("offset {}: expected string", i));
        }
        *i += 1;
        while let Some(&c) = b.get(*i) {
            match c {
                '"' => {
                    *i += 1;
                    return Ok(());
                }
                '\\' => {
                    *i += 1;
                    match b.get(*i) {
                        Some('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') => *i += 1,
                        Some('u') => {
                            if b.len() < *i + 5
                                || !b[*i + 1..*i + 5].iter().all(char::is_ascii_hexdigit)
                            {
                                return Err(format!("offset {}: bad \\u escape", i));
                            }
                            *i += 5;
                        }
                        _ => return Err(format!("offset {}: bad escape", i)),
                    }
                }
                c if (c as u32) < 0x20 => {
                    return Err(format!("offset {}: raw control char in string", i));
                }
                _ => *i += 1,
            }
        }
        Err(format!("offset {}: unterminated string", i))
    }
    fn lit(b: &[char], i: &mut usize, word: &str) -> Result<(), String> {
        let w: Vec<char> = word.chars().collect();
        if b.len() >= *i + w.len() && b[*i..*i + w.len()] == w[..] {
            *i += w.len();
            Ok(())
        } else {
            Err(format!("offset {}: expected `{word}`", i))
        }
    }
    value(&b, &mut i)?;
    ws(&b, &mut i);
    if i != b.len() {
        return Err(format!("offset {}: trailing content", i));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::BlameHop;

    #[test]
    fn sarif_is_valid_json_with_chain() {
        let mut d = Diagnostic::new(
            "crates/a/src/lib.rs",
            7,
            "hot-path-alloc",
            "`vec!` allocates".into(),
        );
        d.chain = vec![
            BlameHop {
                file: "crates/a/src/lib.rs".into(),
                line: 1,
                what: "root".into(),
            },
            BlameHop {
                file: "crates/a/src/lib.rs".into(),
                line: 7,
                what: "`vec!`".into(),
            },
        ];
        let w = Diagnostic::warning(
            "b.rs",
            2,
            "hot-path-index",
            "msg with \"quotes\"\nand newline".into(),
        );
        let text = to_sarif(&[d, w]);
        validate_json(&text).expect("valid sarif json");
        assert!(text.contains("\"version\":\"2.1.0\""));
        assert!(text.contains("relatedLocations"));
        assert!(text.contains("\"level\":\"warning\""));
    }

    #[test]
    fn empty_report_is_valid() {
        validate_json(&to_sarif(&[])).expect("valid");
    }

    #[test]
    fn validator_rejects_malformed() {
        assert!(validate_json("{\"a\":1,}").is_err());
        assert!(validate_json("{\"a\" 1}").is_err());
        assert!(validate_json("[1, 2").is_err());
        assert!(validate_json("{} trailing").is_err());
        assert!(validate_json("{\"a\":\"\u{1}\"}").is_err());
        assert!(validate_json("{\"a\":[true,false,null,-1.5e3]}").is_ok());
    }
}
