//! The workspace model: a symbol table over every parsed function, a
//! conservative intra-workspace call graph, and a fixpoint reachability
//! engine that yields per-function blame chains (root → … → offender).
//!
//! Resolution is name-based — no type inference exists at this layer — and
//! errs toward over-approximation, ranked tightest-first:
//!
//! * `Type::name(…)` / `Self::name(…)` → functions named `name` whose impl
//!   target matches (`Self` resolves to the caller's own impl target);
//! * `.name(…)` method calls → every workspace method named `name`;
//! * bare `name(…)` → same-file functions named `name`, else same-crate,
//!   else every workspace function of that name.
//!
//! Calls that resolve to nothing are external (std or shims); their effects
//! are covered by the construct-token scan inside the caller instead.

use crate::parse::ParsedFile;
use std::collections::{BTreeMap, BTreeSet};

/// Index into [`Workspace::fns`].
pub type FnId = usize;

/// One symbol-table entry: a function plus its location and parsed facts.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Workspace-relative file with forward slashes.
    pub file: String,
    /// Crate key: `"crates/runtime"`, `"src"` (root package), …
    pub krate: String,
    pub f: crate::parse::ParsedFn,
}

/// One resolved call-graph edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    pub caller: FnId,
    pub callee: FnId,
    /// 1-based line of the call site in the caller's file.
    pub line: usize,
}

/// The whole-workspace model.
#[derive(Debug, Default)]
pub struct Workspace {
    pub fns: Vec<FnNode>,
    pub edges: Vec<Edge>,
    /// name → candidate FnIds (all files).
    by_name: BTreeMap<String, Vec<FnId>>,
    /// Adjacency: caller → (callee, line).
    adj: Vec<Vec<(FnId, usize)>>,
    /// Crate key → transitive workspace dependencies. Empty map = no
    /// dependency information, cross-crate edges unrestricted.
    deps: BTreeMap<String, BTreeSet<String>>,
}

/// One hop of a blame chain: `function` at `file:line` called the next hop
/// from `call_line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlameHop {
    pub file: String,
    pub line: usize,
    pub what: String,
}

fn crate_of(rel: &str) -> String {
    let parts: Vec<&str> = rel.split('/').collect();
    if parts.len() >= 2 && parts[0] == "crates" {
        format!("crates/{}", parts[1])
    } else {
        parts.first().unwrap_or(&"").to_string()
    }
}

impl Workspace {
    /// Assemble the model from parsed files: intern every function, then
    /// resolve every call site against the symbol table. Without dependency
    /// information — cross-crate candidates are unrestricted.
    pub fn build(files: &[(String, ParsedFile)]) -> Workspace {
        Workspace::build_with_deps(files, BTreeMap::new())
    }

    /// Like [`Workspace::build`], but cross-crate edges are only admitted
    /// along the real crate dependency graph: a call in crate A can only
    /// resolve into crate B if A (transitively) depends on B. This kills
    /// the method-name collisions that would otherwise link runtime code
    /// into crates nothing depends on (the lint crate itself, benches).
    pub fn build_with_deps(
        files: &[(String, ParsedFile)],
        deps: BTreeMap<String, BTreeSet<String>>,
    ) -> Workspace {
        let mut ws = Workspace {
            deps,
            ..Workspace::default()
        };
        for (rel, pf) in files {
            for f in &pf.fns {
                ws.fns.push(FnNode {
                    file: rel.clone(),
                    krate: crate_of(rel),
                    f: f.clone(),
                });
            }
        }
        let mut by_name: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        for (id, n) in ws.fns.iter().enumerate() {
            by_name.entry(n.f.name.clone()).or_default().push(id);
        }
        ws.by_name = by_name;
        let mut edges = Vec::new();
        for caller in 0..ws.fns.len() {
            let node = &ws.fns[caller];
            for call in &node.f.calls {
                if call.method && crate::parse::is_leaf_method(&call.path) {
                    continue;
                }
                // a written `drop(x)` is `std::mem::drop` (guard release);
                // `Drop::drop` cannot be called directly, so linking it to a
                // workspace `fn drop` would be a phantom edge into teardown
                if call.path == "drop" || call.path.ends_with("::drop") {
                    continue;
                }
                for callee in ws.resolve(caller, &call.path, call.method) {
                    if callee != caller {
                        edges.push(Edge {
                            caller,
                            callee,
                            line: call.line,
                        });
                    }
                }
            }
        }
        edges.sort_by_key(|e| (e.caller, e.callee, e.line));
        edges.dedup();
        ws.edges = edges;
        let mut adj = vec![Vec::new(); ws.fns.len()];
        for e in &ws.edges {
            adj[e.caller].push((e.callee, e.line));
        }
        ws.adj = adj;
        ws
    }

    /// Is an edge from crate `from` into crate `to` admissible? Same crate
    /// always; otherwise only along the dependency map (a crate missing
    /// from the map is unrestricted — no manifest was found for it).
    fn dep_ok(&self, from: &str, to: &str) -> bool {
        from == to
            || match self.deps.get(from) {
                Some(d) => d.contains(to),
                None => true,
            }
    }

    /// Candidate callees for one written call path, tightest rank first.
    fn resolve(&self, caller: FnId, path: &str, method: bool) -> Vec<FnId> {
        let segs: Vec<&str> = path.split("::").collect();
        let name = *segs.last().unwrap_or(&"");
        let Some(all_cands) = self.by_name.get(name) else {
            return Vec::new();
        };
        let from = self.fns[caller].krate.clone();
        let cands: Vec<FnId> = all_cands
            .iter()
            .copied()
            .filter(|&id| self.dep_ok(&from, &self.fns[id].krate))
            .collect();
        if method {
            // `.name(…)`: any workspace method (or free fn — trait fns on
            // primitives are written method-style too) of that name
            return cands;
        }
        if segs.len() >= 2 {
            // `Qual::name`: match the qualifier against the impl target
            // (`Self` → caller's own impl target) or the file's module stem
            let mut qual = segs[segs.len() - 2].to_string();
            if qual == "Self" {
                if let Some(t) = &self.fns[caller].f.impl_type {
                    qual = t.clone();
                }
            }
            let matched: Vec<FnId> = cands
                .iter()
                .copied()
                .filter(|&id| {
                    let n = &self.fns[id];
                    n.f.impl_type.as_deref() == Some(qual.as_str()) || module_stem(&n.file) == qual
                })
                .collect();
            // no workspace symbol matches the qualifier (e.g. `Vec::new`):
            // external, no edge
            return matched;
        }
        // bare `name(…)`: same file, else same crate, else everywhere
        let file = &self.fns[caller].file;
        let same_file: Vec<FnId> = cands
            .iter()
            .copied()
            .filter(|&id| &self.fns[id].file == file)
            .collect();
        if !same_file.is_empty() {
            return same_file;
        }
        let krate = &self.fns[caller].krate;
        let same_crate: Vec<FnId> = cands
            .iter()
            .copied()
            .filter(|&id| &self.fns[id].krate == krate)
            .collect();
        if !same_crate.is_empty() {
            return same_crate;
        }
        cands.clone()
    }

    /// All functions in `file` named `name`.
    pub fn lookup(&self, file: &str, name: &str) -> Vec<FnId> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, n)| n.file == file && n.f.name == name)
            .map(|(id, _)| id)
            .collect()
    }

    /// Human name for diagnostics: `Type::name` or `name`.
    pub fn qualified(&self, id: FnId) -> String {
        let n = &self.fns[id];
        match &n.f.impl_type {
            Some(t) => format!("{}::{}", t, n.f.name),
            None => n.f.name.clone(),
        }
    }

    /// BFS reachability from `roots`, stopping at `stop` functions (cold
    /// error paths, config-excluded amortized setup). Returns, per reached
    /// function, the parent pointer `(caller, call line)` of the *first*
    /// (shortest) path that reached it.
    pub fn reach(
        &self,
        roots: &[FnId],
        stop: &BTreeSet<FnId>,
    ) -> BTreeMap<FnId, Option<(FnId, usize)>> {
        let mut parent: BTreeMap<FnId, Option<(FnId, usize)>> = BTreeMap::new();
        let mut queue: std::collections::VecDeque<FnId> = std::collections::VecDeque::new();
        for &r in roots {
            if !stop.contains(&r) && !parent.contains_key(&r) {
                parent.insert(r, None);
                queue.push_back(r);
            }
        }
        while let Some(u) = queue.pop_front() {
            for &(v, line) in &self.adj[u] {
                if stop.contains(&v) || parent.contains_key(&v) {
                    continue;
                }
                parent.insert(v, Some((u, line)));
                queue.push_back(v);
            }
        }
        parent
    }

    /// Reconstruct the blame chain root → … → `id` from `reach` parents.
    /// Every hop names the function and the line the *next* hop is called
    /// from; the final entry is the offending function itself.
    pub fn blame_chain(
        &self,
        parents: &BTreeMap<FnId, Option<(FnId, usize)>>,
        id: FnId,
    ) -> Vec<BlameHop> {
        // walk up to the root collecting (fn, call-line-into-child)
        let mut rev: Vec<(FnId, Option<usize>)> = Vec::new();
        let mut cur = id;
        let mut call_into: Option<usize> = None;
        loop {
            rev.push((cur, call_into));
            match parents.get(&cur) {
                Some(Some((p, line))) => {
                    call_into = Some(*line);
                    cur = *p;
                }
                _ => break,
            }
        }
        rev.reverse();
        rev.into_iter()
            .map(|(fid, _)| {
                let n = &self.fns[fid];
                BlameHop {
                    file: n.file.clone(),
                    line: n.f.line,
                    what: self.qualified(fid),
                }
            })
            .collect()
    }

    /// Deterministic text dump of the call graph, with a self-check
    /// round-trip parser (see `--mode graph-dump`).
    pub fn dump(&self) -> String {
        let mut out = String::from("# lts-lint call graph v1\n");
        for (id, n) in self.fns.iter().enumerate() {
            out.push_str(&format!(
                "node {} {}:{} {}\n",
                id,
                n.file,
                n.f.line,
                self.qualified(id)
            ));
        }
        for e in &self.edges {
            out.push_str(&format!("edge {} {} {}\n", e.caller, e.callee, e.line));
        }
        out
    }

    /// Parse a [`dump`] back into `(nodes, edges)` for the round-trip smoke.
    #[allow(clippy::type_complexity)]
    pub fn parse_dump(text: &str) -> Result<(Vec<(usize, String)>, Vec<Edge>), String> {
        let mut nodes = Vec::new();
        let mut edges = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.starts_with('#') || line.trim().is_empty() {
                continue;
            }
            let mut it = line.split_whitespace();
            match it.next() {
                Some("node") => {
                    let id: usize = it
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| format!("dump line {}: bad node id", i + 1))?;
                    let loc = it
                        .next()
                        .ok_or_else(|| format!("dump line {}: missing location", i + 1))?;
                    nodes.push((id, loc.to_string()));
                }
                Some("edge") => {
                    let mut three = || -> Result<usize, String> {
                        it.next()
                            .and_then(|s| s.parse().ok())
                            .ok_or_else(|| format!("dump line {}: bad edge field", i + 1))
                    };
                    let caller = three()?;
                    let callee = three()?;
                    let line_no = three()?;
                    edges.push(Edge {
                        caller,
                        callee,
                        line: line_no,
                    });
                }
                other => return Err(format!("dump line {}: unknown record {:?}", i + 1, other)),
            }
        }
        Ok((nodes, edges))
    }

    /// Verify `dump()` round-trips through `parse_dump` losslessly.
    pub fn dump_round_trips(&self) -> Result<(), String> {
        let text = self.dump();
        let (nodes, edges) = Workspace::parse_dump(&text)?;
        if nodes.len() != self.fns.len() {
            return Err(format!(
                "round-trip lost nodes: {} vs {}",
                nodes.len(),
                self.fns.len()
            ));
        }
        for (id, loc) in &nodes {
            let n = self
                .fns
                .get(*id)
                .ok_or_else(|| format!("round-trip: node id {id} out of range"))?;
            let want = format!("{}:{}", n.file, n.f.line);
            if *loc != want {
                return Err(format!("round-trip: node {id} is {loc}, expected {want}"));
            }
        }
        if edges != self.edges {
            return Err("round-trip: edge set mismatch".into());
        }
        Ok(())
    }
}

fn module_stem(rel: &str) -> String {
    std::path::Path::new(rel)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;
    use crate::source::Scrubbed;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        let parsed: Vec<(String, ParsedFile)> = files
            .iter()
            .map(|(rel, src)| (rel.to_string(), parse_file(&Scrubbed::new(src))))
            .collect();
        Workspace::build(&parsed)
    }

    #[test]
    fn bare_calls_prefer_same_file_then_same_crate() {
        let w = ws(&[
            ("crates/a/src/lib.rs", "fn f() { g(); }\nfn g() {}\n"),
            ("crates/b/src/lib.rs", "fn g() {}\n"),
        ]);
        let f = w.lookup("crates/a/src/lib.rs", "f")[0];
        let g_same = w.lookup("crates/a/src/lib.rs", "g")[0];
        let callees: Vec<FnId> = w
            .edges
            .iter()
            .filter(|e| e.caller == f)
            .map(|e| e.callee)
            .collect();
        assert_eq!(callees, vec![g_same]);
    }

    #[test]
    fn method_calls_link_to_every_candidate() {
        let w = ws(&[
            (
                "crates/a/src/lib.rs",
                "impl X { fn send(&self) {} }\nfn f(t: &T) { t.send(); }\n",
            ),
            ("crates/b/src/lib.rs", "impl Y { fn send(&self) {} }\n"),
        ]);
        let f = w.lookup("crates/a/src/lib.rs", "f")[0];
        let callees: Vec<FnId> = w
            .edges
            .iter()
            .filter(|e| e.caller == f)
            .map(|e| e.callee)
            .collect();
        assert_eq!(callees.len(), 2, "conservative: both `send` impls linked");
    }

    #[test]
    fn dep_map_restricts_cross_crate_edges() {
        let parsed: Vec<(String, ParsedFile)> = [
            (
                "crates/a/src/lib.rs",
                "fn f(t: &T) { t.send(); }\nimpl X { fn send(&self) {} }\n",
            ),
            ("crates/b/src/lib.rs", "impl Y { fn send(&self) {} }\n"),
        ]
        .iter()
        .map(|(rel, src)| (rel.to_string(), parse_file(&Scrubbed::new(src))))
        .collect();
        // a depends on nothing: only the same-crate `send` is linked
        let deps: BTreeMap<String, BTreeSet<String>> =
            [("crates/a".to_string(), BTreeSet::new())].into();
        let w = Workspace::build_with_deps(&parsed, deps);
        let f = w.lookup("crates/a/src/lib.rs", "f")[0];
        let callees: Vec<String> = w
            .edges
            .iter()
            .filter(|e| e.caller == f)
            .map(|e| w.fns[e.callee].krate.clone())
            .collect();
        assert_eq!(callees, vec!["crates/a".to_string()]);
    }

    #[test]
    fn qualified_calls_filter_by_impl_target() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "impl A { fn new() {} }\nimpl B { fn new() {} }\nfn f() { A::new(); }\n",
        )]);
        let f = w.lookup("crates/a/src/lib.rs", "f")[0];
        let callees: Vec<String> = w
            .edges
            .iter()
            .filter(|e| e.caller == f)
            .map(|e| w.qualified(e.callee))
            .collect();
        assert_eq!(callees, vec!["A::new".to_string()]);
    }

    #[test]
    fn self_resolves_to_own_impl_target() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "impl A { fn go(&self) { Self::helper(); } fn helper() {} }\nimpl B { fn helper() {} }\n",
        )]);
        let go = w.lookup("crates/a/src/lib.rs", "go")[0];
        let callees: Vec<String> = w
            .edges
            .iter()
            .filter(|e| e.caller == go)
            .map(|e| w.qualified(e.callee))
            .collect();
        assert_eq!(callees, vec!["A::helper".to_string()]);
    }

    #[test]
    fn reach_and_blame_two_deep() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "fn root() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}\nfn island() {}\n",
        )]);
        let root = w.lookup("crates/a/src/lib.rs", "root")[0];
        let leaf = w.lookup("crates/a/src/lib.rs", "leaf")[0];
        let island = w.lookup("crates/a/src/lib.rs", "island")[0];
        let parents = w.reach(&[root], &BTreeSet::new());
        assert!(parents.contains_key(&leaf));
        assert!(!parents.contains_key(&island));
        let chain = w.blame_chain(&parents, leaf);
        let names: Vec<&str> = chain.iter().map(|h| h.what.as_str()).collect();
        assert_eq!(names, vec!["root", "mid", "leaf"]);
    }

    #[test]
    fn stop_set_terminates_traversal() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "fn root() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}\n",
        )]);
        let root = w.lookup("crates/a/src/lib.rs", "root")[0];
        let mid = w.lookup("crates/a/src/lib.rs", "mid")[0];
        let leaf = w.lookup("crates/a/src/lib.rs", "leaf")[0];
        let stop: BTreeSet<FnId> = [mid].into_iter().collect();
        let parents = w.reach(&[root], &stop);
        assert!(parents.contains_key(&root));
        assert!(!parents.contains_key(&mid));
        assert!(!parents.contains_key(&leaf));
    }

    #[test]
    fn dump_round_trips() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "fn root() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}\n",
        )]);
        w.dump_round_trips().expect("round trip");
        // and corruption is caught
        let text = w.dump().replace("edge 0 1", "edge 0 2");
        let (_, edges) = Workspace::parse_dump(&text).unwrap();
        assert_ne!(edges, w.edges);
    }
}
