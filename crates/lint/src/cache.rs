//! Per-file parse cache so the semantic gate stays fast in CI: parsing is
//! re-done only for files whose (mtime, size, content hash) changed. The
//! cache stores each file's [`ParsedFile`] facts *and* its legacy
//! lexer-tier diagnostics, because both are pure functions of the file
//! text; the call graph and semantic analyses are global and always run
//! fresh. A policy-file or lint-version change busts the whole cache via
//! the header key.
//!
//! The format is line-oriented text under `target/` — corrupt or
//! unrecognized content degrades to an empty cache, never to an error.

use crate::parse::{Allow, CallSite, Hit, HitKind, LockAcq, ParsedFile, ParsedFn, Wait};
use crate::rules::{Diagnostic, ALL_RULES};
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// Bump when the serialized schema or any parser/rule semantics change.
const SCHEMA: u32 = 2;

/// What one cached file contributes back to the driver.
#[derive(Debug, Clone, Default)]
pub struct FileSummary {
    pub parsed: ParsedFile,
    pub legacy: Vec<Diagnostic>,
}

struct Entry {
    mtime_ns: u128,
    size: u64,
    hash: u64,
    summary: FileSummary,
}

pub struct Cache {
    key: String,
    entries: BTreeMap<String, Entry>,
    pub hits: usize,
    pub misses: usize,
}

/// `(mtime_ns, size)` of a file — the cheap part of the cache key.
pub fn file_stamp(path: &Path) -> io::Result<(u128, u64)> {
    let md = std::fs::metadata(path)?;
    let mtime = md
        .modified()
        .ok()
        .and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok())
        .map_or(0, |d| d.as_nanos());
    Ok((mtime, md.len()))
}

fn cache_key(cfg_hash: u64) -> String {
    format!(
        "lts-lint-cache v{SCHEMA} cfg={cfg_hash:016x} pkg={}",
        env!("CARGO_PKG_VERSION")
    )
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '%' => out.push_str("%25"),
            ' ' => out.push_str("%20"),
            '\n' => out.push_str("%0a"),
            '\t' => out.push_str("%09"),
            c => out.push(c),
        }
    }
    if out.is_empty() {
        out.push_str("%00");
    }
    out
}

fn unesc(s: &str) -> String {
    if s == "%00" {
        return String::new();
    }
    let mut out = String::with_capacity(s.len());
    let cs: Vec<char> = s.chars().collect();
    let mut i = 0;
    while i < cs.len() {
        if cs[i] == '%' && i + 2 < cs.len() {
            let code: String = cs[i + 1..i + 3].iter().collect();
            if let Ok(b) = u8::from_str_radix(&code, 16) {
                out.push(b as char);
                i += 3;
                continue;
            }
        }
        out.push(cs[i]);
        i += 1;
    }
    out
}

const WAIT_WHATS: [&str; 4] = [
    "Condvar::wait (no timeout)",
    "recv() (no timeout)",
    "recv_into (no timeout)",
    "recv_into_timeout(None)",
];

fn static_rule(name: &str) -> Option<&'static str> {
    ALL_RULES.iter().copied().find(|r| *r == name)
}

impl Cache {
    pub fn empty(cfg_hash: u64) -> Cache {
        Cache {
            key: cache_key(cfg_hash),
            entries: BTreeMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Load from `path`; any mismatch or parse trouble yields an empty
    /// cache (a cache must never be able to fail the lint).
    pub fn load(path: &Path, cfg_hash: u64) -> Cache {
        let mut cache = Cache::empty(cfg_hash);
        let Ok(text) = std::fs::read_to_string(path) else {
            return cache;
        };
        let mut lines = text.lines();
        if lines.next() != Some(cache.key.as_str()) {
            return cache;
        }
        let mut cur: Option<(String, Entry)> = None;
        for line in lines {
            let parts: Vec<&str> = line.split(' ').collect();
            let ok = Self::apply_record(&mut cur, &mut cache.entries, &parts);
            if !ok {
                // corrupt record: drop everything parsed so far
                return Cache::empty(cfg_hash);
            }
        }
        if let Some((rel, e)) = cur.take() {
            cache.entries.insert(rel, e);
        }
        cache
    }

    #[allow(clippy::too_many_lines)]
    fn apply_record(
        cur: &mut Option<(String, Entry)>,
        entries: &mut BTreeMap<String, Entry>,
        parts: &[&str],
    ) -> bool {
        let p = |s: &str| -> Option<usize> { s.parse().ok() };
        match parts.first().copied() {
            Some("F") if parts.len() == 5 => {
                if let Some((rel, e)) = cur.take() {
                    entries.insert(rel, e);
                }
                let (Some(mtime), Some(size), Ok(hash)) = (
                    parts[2].parse::<u128>().ok(),
                    parts[3].parse::<u64>().ok(),
                    u64::from_str_radix(parts[4], 16),
                ) else {
                    return false;
                };
                *cur = Some((
                    unesc(parts[1]),
                    Entry {
                        mtime_ns: mtime,
                        size,
                        hash,
                        summary: FileSummary::default(),
                    },
                ));
                true
            }
            Some("f") if parts.len() == 6 => {
                let Some((_, e)) = cur.as_mut() else {
                    return false;
                };
                let Some(line) = p(parts[2]) else {
                    return false;
                };
                e.summary.parsed.fns.push(ParsedFn {
                    name: unesc(parts[1]),
                    impl_type: (parts[3] != "-").then(|| unesc(parts[3])),
                    line,
                    is_cold: parts[4] == "1",
                    tagged_hot: parts[5] == "1",
                    calls: Vec::new(),
                    hits: Vec::new(),
                    locks: Vec::new(),
                    lock_edges: Vec::new(),
                    waits: Vec::new(),
                });
                true
            }
            Some("c") if parts.len() == 5 => {
                let Some(f) = cur
                    .as_mut()
                    .and_then(|(_, e)| e.summary.parsed.fns.last_mut())
                else {
                    return false;
                };
                let Some(line) = p(parts[1]) else {
                    return false;
                };
                f.calls.push(CallSite {
                    path: unesc(parts[3]),
                    method: parts[2] == "1",
                    line,
                    holding: if parts[4] == "-" {
                        Vec::new()
                    } else {
                        parts[4].split(',').map(str::to_string).collect()
                    },
                });
                true
            }
            Some("h") if parts.len() == 4 => {
                let Some(f) = cur
                    .as_mut()
                    .and_then(|(_, e)| e.summary.parsed.fns.last_mut())
                else {
                    return false;
                };
                let (Some(line), Some(kind)) = (
                    p(parts[1]),
                    match parts[2] {
                        "A" => Some(HitKind::Alloc),
                        "P" => Some(HitKind::Panic),
                        "I" => Some(HitKind::Index),
                        "D" => Some(HitKind::Det),
                        _ => None,
                    },
                ) else {
                    return false;
                };
                f.hits.push(Hit {
                    kind,
                    token: unesc(parts[3]),
                    line,
                });
                true
            }
            Some("l") if parts.len() == 3 => {
                let Some(f) = cur
                    .as_mut()
                    .and_then(|(_, e)| e.summary.parsed.fns.last_mut())
                else {
                    return false;
                };
                let Some(line) = p(parts[1]) else {
                    return false;
                };
                f.locks.push(LockAcq {
                    lock: unesc(parts[2]),
                    line,
                });
                true
            }
            Some("e") if parts.len() == 5 => {
                let Some(f) = cur
                    .as_mut()
                    .and_then(|(_, e)| e.summary.parsed.fns.last_mut())
                else {
                    return false;
                };
                let (Some(l1), Some(l2)) = (p(parts[1]), p(parts[3])) else {
                    return false;
                };
                f.lock_edges
                    .push((unesc(parts[2]), l1, unesc(parts[4]), l2));
                true
            }
            Some("w") if parts.len() == 3 => {
                let Some(f) = cur
                    .as_mut()
                    .and_then(|(_, e)| e.summary.parsed.fns.last_mut())
                else {
                    return false;
                };
                let (Some(line), Some(idx)) = (p(parts[1]), p(parts[2])) else {
                    return false;
                };
                let Some(&what) = WAIT_WHATS.get(idx) else {
                    return false;
                };
                f.waits.push(Wait { what, line });
                true
            }
            Some("a") if parts.len() == 5 => {
                let Some((_, e)) = cur.as_mut() else {
                    return false;
                };
                let (Some(line), Some(covers)) = (p(parts[1]), p(parts[2])) else {
                    return false;
                };
                e.summary.parsed.allows.push(Allow {
                    rule: unesc(parts[3]),
                    line,
                    covers,
                    justified: parts[4] == "1",
                });
                true
            }
            Some("d") if parts.len() == 4 => {
                let Some((rel, e)) = cur.as_mut() else {
                    return false;
                };
                let (Some(line), Some(rule)) = (p(parts[1]), static_rule(&unesc(parts[2]))) else {
                    return false;
                };
                e.summary
                    .legacy
                    .push(Diagnostic::new(rel.clone(), line, rule, unesc(parts[3])));
                true
            }
            _ => false,
        }
    }

    pub fn get(&mut self, rel: &str, mtime_ns: u128, size: u64, hash: u64) -> Option<FileSummary> {
        match self.entries.get(rel) {
            Some(e) if e.mtime_ns == mtime_ns && e.size == size && e.hash == hash => {
                self.hits += 1;
                Some(e.summary.clone())
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    pub fn put(&mut self, rel: &str, mtime_ns: u128, size: u64, hash: u64, summary: FileSummary) {
        self.entries.insert(
            rel.to_string(),
            Entry {
                mtime_ns,
                size,
                hash,
                summary,
            },
        );
    }

    pub fn save(&self, path: &Path) -> io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut out = String::new();
        out.push_str(&self.key);
        out.push('\n');
        for (rel, e) in &self.entries {
            out.push_str(&format!(
                "F {} {} {} {:016x}\n",
                esc(rel),
                e.mtime_ns,
                e.size,
                e.hash
            ));
            for f in &e.summary.parsed.fns {
                out.push_str(&format!(
                    "f {} {} {} {} {}\n",
                    esc(&f.name),
                    f.line,
                    f.impl_type.as_deref().map_or("-".to_string(), esc),
                    u8::from(f.is_cold),
                    u8::from(f.tagged_hot)
                ));
                for c in &f.calls {
                    out.push_str(&format!(
                        "c {} {} {} {}\n",
                        c.line,
                        u8::from(c.method),
                        esc(&c.path),
                        if c.holding.is_empty() {
                            "-".to_string()
                        } else {
                            c.holding.join(",")
                        }
                    ));
                }
                for h in &f.hits {
                    let k = match h.kind {
                        HitKind::Alloc => "A",
                        HitKind::Panic => "P",
                        HitKind::Index => "I",
                        HitKind::Det => "D",
                    };
                    out.push_str(&format!("h {} {} {}\n", h.line, k, esc(&h.token)));
                }
                for l in &f.locks {
                    out.push_str(&format!("l {} {}\n", l.line, esc(&l.lock)));
                }
                for (a, al, b, bl) in &f.lock_edges {
                    out.push_str(&format!("e {al} {} {bl} {}\n", esc(a), esc(b)));
                }
                for w in &f.waits {
                    let idx = WAIT_WHATS
                        .iter()
                        .position(|&x| x == w.what)
                        .unwrap_or(WAIT_WHATS.len());
                    out.push_str(&format!("w {} {idx}\n", w.line));
                }
            }
            for a in &e.summary.parsed.allows {
                out.push_str(&format!(
                    "a {} {} {} {}\n",
                    a.line,
                    a.covers,
                    esc(&a.rule),
                    u8::from(a.justified)
                ));
            }
            for d in &e.summary.legacy {
                out.push_str(&format!("d {} {} {}\n", d.line, esc(d.rule), esc(&d.msg)));
            }
        }
        std::fs::write(path, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::Scrubbed;

    #[test]
    fn round_trips_a_parsed_file_and_legacy_diags() {
        let src = "\
// lint: hot-path
fn hot(v: &[f64]) {
    let g = lock(&s.buf);
    let h = s.bells.lock();
    helper(v[0]);
    let x = v.to_vec();
    x.unwrap();
    t.recv_into(buf);
}
// lint: allow(no-panic) — checked above
#[cold]
fn cold_fn() {}
";
        let parsed = crate::parse::parse_file(&Scrubbed::new(src));
        let legacy = vec![Diagnostic::new(
            "crates/a/src/lib.rs",
            6,
            crate::rules::RULE_NO_PANIC,
            "`.unwrap()` in non-test code (return a Result instead)".into(),
        )];
        let mut cache = Cache::empty(42);
        cache.put(
            "crates/a/src/lib.rs",
            123_456_789,
            src.len() as u64,
            crate::fnv64(src.as_bytes()),
            FileSummary {
                parsed: parsed.clone(),
                legacy: legacy.clone(),
            },
        );
        let dir = std::env::temp_dir().join(format!("lint-cache-test-{}", std::process::id()));
        let path = dir.join("cache.txt");
        cache.save(&path).unwrap();
        let mut loaded = Cache::load(&path, 42);
        let got = loaded
            .get(
                "crates/a/src/lib.rs",
                123_456_789,
                src.len() as u64,
                crate::fnv64(src.as_bytes()),
            )
            .expect("hit");
        assert_eq!(got.parsed.fns.len(), parsed.fns.len());
        let (a, b) = (&got.parsed.fns[0], &parsed.fns[0]);
        assert_eq!(a.name, b.name);
        assert_eq!(
            a.calls
                .iter()
                .map(|c| (&c.path, c.line))
                .collect::<Vec<_>>(),
            b.calls
                .iter()
                .map(|c| (&c.path, c.line))
                .collect::<Vec<_>>()
        );
        assert_eq!(
            a.hits
                .iter()
                .map(|h| (h.kind, &h.token, h.line))
                .collect::<Vec<_>>(),
            b.hits
                .iter()
                .map(|h| (h.kind, &h.token, h.line))
                .collect::<Vec<_>>()
        );
        assert_eq!(a.lock_edges, b.lock_edges);
        assert_eq!(
            a.waits.iter().map(|w| (w.what, w.line)).collect::<Vec<_>>(),
            b.waits.iter().map(|w| (w.what, w.line)).collect::<Vec<_>>()
        );
        assert!(got.parsed.fns[1].is_cold);
        assert_eq!(got.parsed.allows.len(), parsed.allows.len());
        assert_eq!(got.legacy, legacy);
        // stale stamp misses
        assert!(loaded
            .get("crates/a/src/lib.rs", 1, src.len() as u64, 0)
            .is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_mismatch_or_corruption_degrades_to_empty() {
        let dir = std::env::temp_dir().join(format!("lint-cache-test2-{}", std::process::id()));
        let path = dir.join("cache.txt");
        let cache = Cache::empty(7);
        cache.save(&path).unwrap();
        assert!(Cache::load(&path, 8).entries.is_empty(), "cfg change busts");
        std::fs::write(&path, "garbage\nF x\n").unwrap();
        assert!(Cache::load(&path, 7).entries.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
