//! Parser for `lint/hotpaths.toml`: the root sets and escape lists the
//! semantic analyses are driven by.
//!
//! The accepted grammar is the tiny TOML subset the file actually uses (a
//! real TOML crate is unavailable offline):
//!
//! ```toml
//! [[hotpath]]                        # transitive-purity root
//! file = "crates/core/src/lts.rs"    # workspace-relative, '/'-separated
//! function = "step"
//!
//! [[kernel]]                         # determinism root (counter-gated)
//! file = "crates/sem/src/simd.rs"
//! function = "scalar_stiffness_batch"
//!
//! [[exclude]]                        # traversal stop — reason mandatory
//! file = "crates/obs/src/registry.rs"
//! function = "inc_key"
//! reason = "amortized: key set is fixed after the first step"
//! ```
//!
//! `#` comments and blank lines are ignored; anything else is a hard error
//! with a line number, so a typo can't silently drop a policy entry. Every
//! entry is validated against the symbol table after parsing — an entry
//! naming a function that no longer exists is a lint violation, not a
//! silent un-gating (see `analyze::validate_config`).

/// One `(file, function)` root entry.
pub type Entry = (String, String);

/// The parsed policy file.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct LintConfig {
    /// Transitive hot-path purity roots.
    pub hot: Vec<Entry>,
    /// Determinism roots (bitwise counter-gated kernels).
    pub kernels: Vec<Entry>,
    /// Traversal stops: `(file, function, reason)`.
    pub excludes: Vec<(String, String, String)>,
    /// 1-based line of each entry's `[[table]]` header, parallel to the
    /// concatenation hot ++ kernels ++ excludes (for stale-entry blame).
    pub hot_lines: Vec<usize>,
    pub kernel_lines: Vec<usize>,
    pub exclude_lines: Vec<usize>,
}

/// Back-compat alias: the legacy lexer rule only sees the hot list.
pub type HotPathConfig = LintConfig;

impl LintConfig {
    /// Is `(file, function)` a hot-path root? (Legacy rule + root seeding.)
    pub fn contains(&self, file: &str, function: &str) -> bool {
        self.hot.iter().any(|(f, g)| f == file && g == function)
    }

    pub fn is_excluded(&self, file: &str, function: &str) -> Option<&str> {
        self.excludes
            .iter()
            .find(|(f, g, _)| f == file && g == function)
            .map(|(_, _, r)| r.as_str())
    }

    pub fn parse(text: &str) -> Result<LintConfig, String> {
        #[derive(Clone, Copy, PartialEq)]
        enum Table {
            Hot,
            Kernel,
            Exclude,
        }
        struct Pending {
            table: Table,
            line: usize,
            file: Option<String>,
            function: Option<String>,
            reason: Option<String>,
        }
        let mut entries: Vec<Pending> = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = match raw.find('#') {
                Some(p) => &raw[..p],
                None => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            let table = match line {
                "[[hotpath]]" => Some(Table::Hot),
                "[[kernel]]" => Some(Table::Kernel),
                "[[exclude]]" => Some(Table::Exclude),
                _ => None,
            };
            if let Some(table) = table {
                entries.push(Pending {
                    table,
                    line: i + 1,
                    file: None,
                    function: None,
                    reason: None,
                });
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!(
                    "hotpaths.toml:{}: expected `key = \"value\"` or a [[hotpath]]/[[kernel]]/[[exclude]] header",
                    i + 1
                ));
            };
            let value = value.trim();
            if !(value.starts_with('"') && value.ends_with('"') && value.len() >= 2) {
                return Err(format!("hotpaths.toml:{}: value must be quoted", i + 1));
            }
            let value = value[1..value.len() - 1].to_string();
            let Some(entry) = entries.last_mut() else {
                return Err(format!("hotpaths.toml:{}: key outside a table", i + 1));
            };
            match key.trim() {
                "file" => entry.file = Some(value),
                "function" => entry.function = Some(value),
                "reason" if entry.table == Table::Exclude => entry.reason = Some(value),
                k => return Err(format!("hotpaths.toml:{}: unknown key `{k}`", i + 1)),
            }
        }
        let mut out = LintConfig::default();
        for e in entries {
            let (Some(f), Some(g)) = (e.file.clone(), e.function.clone()) else {
                return Err(format!(
                    "hotpaths.toml:{}: entry is missing `file` or `function`",
                    e.line
                ));
            };
            match e.table {
                Table::Hot => {
                    out.hot.push((f, g));
                    out.hot_lines.push(e.line);
                }
                Table::Kernel => {
                    out.kernels.push((f, g));
                    out.kernel_lines.push(e.line);
                }
                Table::Exclude => {
                    let Some(r) = e.reason else {
                        return Err(format!(
                            "hotpaths.toml:{}: [[exclude]] requires a `reason`",
                            e.line
                        ));
                    };
                    if r.trim().len() < 8 {
                        return Err(format!(
                            "hotpaths.toml:{}: exclude reason must actually justify the stop",
                            e.line
                        ));
                    }
                    out.excludes.push((f, g, r));
                    out.exclude_lines.push(e.line);
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_three_tables() {
        let cfg = LintConfig::parse(
            "# policy\n\n[[hotpath]]\nfile = \"a/b.rs\"  # inline comment\nfunction = \"f\"\n\n[[kernel]]\nfile = \"c.rs\"\nfunction = \"k\"\n\n[[exclude]]\nfile = \"d.rs\"\nfunction = \"setup\"\nreason = \"amortized one-time table build\"\n",
        )
        .unwrap();
        assert_eq!(cfg.hot, vec![("a/b.rs".into(), "f".into())]);
        assert_eq!(cfg.kernels, vec![("c.rs".into(), "k".into())]);
        assert_eq!(cfg.excludes.len(), 1);
        assert!(cfg.contains("a/b.rs", "f"));
        assert!(!cfg.contains("c.rs", "k"), "kernels are not hot roots");
        assert_eq!(
            cfg.is_excluded("d.rs", "setup"),
            Some("amortized one-time table build")
        );
        assert_eq!(cfg.hot_lines, vec![3]);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(LintConfig::parse("file = \"x\"\n").is_err()); // outside table
        assert!(LintConfig::parse("[[hotpath]]\nfile = x\n").is_err()); // unquoted
        assert!(LintConfig::parse("[[hotpath]]\nfile = \"x\"\n").is_err()); // incomplete
        assert!(LintConfig::parse("[[hotpath]]\nnope = \"x\"\n").is_err()); // unknown key
        assert!(
            LintConfig::parse("[[hotpath]]\nfile = \"x\"\nfunction = \"f\"\nreason = \"r\"\n")
                .is_err()
        ); // reason only on excludes
        assert!(LintConfig::parse("[[exclude]]\nfile = \"x\"\nfunction = \"f\"\n").is_err()); // missing reason
        assert!(LintConfig::parse(
            "[[exclude]]\nfile = \"x\"\nfunction = \"f\"\nreason = \"no\"\n"
        )
        .is_err()); // vacuous reason
    }
}
