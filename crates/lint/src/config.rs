//! Parser for `lint/hotpaths.toml`: the out-of-band list of functions that
//! must satisfy the hot-path allocation policy in addition to those tagged
//! inline with `// lint: hot-path`.
//!
//! The accepted grammar is the tiny subset the file actually uses (a real
//! TOML crate is unavailable offline):
//!
//! ```toml
//! [[hotpath]]
//! file = "crates/core/src/lts.rs"   # workspace-relative, '/'-separated
//! function = "step"
//! ```
//!
//! `#` comments and blank lines are ignored; anything else is a hard error
//! with a line number, so a typo can't silently drop a policy entry.

/// The parsed hot-path list: `(workspace-relative file, function name)`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct HotPathConfig {
    pub entries: Vec<(String, String)>,
}

impl HotPathConfig {
    /// Is `(file, function)` listed? `file` is workspace-relative with
    /// forward slashes (the walker normalises before calling).
    pub fn contains(&self, file: &str, function: &str) -> bool {
        self.entries.iter().any(|(f, g)| f == file && g == function)
    }

    pub fn parse(text: &str) -> Result<HotPathConfig, String> {
        let mut entries: Vec<(Option<String>, Option<String>)> = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = match raw.find('#') {
                Some(p) => &raw[..p],
                None => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            if line == "[[hotpath]]" {
                entries.push((None, None));
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!(
                    "hotpaths.toml:{}: expected `key = \"value\"`",
                    i + 1
                ));
            };
            let value = value.trim();
            if !(value.starts_with('"') && value.ends_with('"') && value.len() >= 2) {
                return Err(format!("hotpaths.toml:{}: value must be quoted", i + 1));
            }
            let value = value[1..value.len() - 1].to_string();
            let Some(entry) = entries.last_mut() else {
                return Err(format!(
                    "hotpaths.toml:{}: key outside a [[hotpath]] table",
                    i + 1
                ));
            };
            match key.trim() {
                "file" => entry.0 = Some(value),
                "function" => entry.1 = Some(value),
                k => return Err(format!("hotpaths.toml:{}: unknown key `{k}`", i + 1)),
            }
        }
        let mut out = Vec::with_capacity(entries.len());
        for (i, (f, g)) in entries.into_iter().enumerate() {
            match (f, g) {
                (Some(f), Some(g)) => out.push((f, g)),
                _ => {
                    return Err(format!(
                        "hotpaths.toml: [[hotpath]] entry {} is missing `file` or `function`",
                        i + 1
                    ))
                }
            }
        }
        Ok(HotPathConfig { entries: out })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_comments() {
        let cfg = HotPathConfig::parse(
            "# policy list\n\n[[hotpath]]\nfile = \"a/b.rs\"  # inline comment\nfunction = \"f\"\n\n[[hotpath]]\nfile = \"c.rs\"\nfunction = \"g\"\n",
        )
        .unwrap();
        assert_eq!(cfg.entries.len(), 2);
        assert!(cfg.contains("a/b.rs", "f"));
        assert!(cfg.contains("c.rs", "g"));
        assert!(!cfg.contains("a/b.rs", "g"));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(HotPathConfig::parse("file = \"x\"\n").is_err()); // outside table
        assert!(HotPathConfig::parse("[[hotpath]]\nfile = x\n").is_err()); // unquoted
        assert!(HotPathConfig::parse("[[hotpath]]\nfile = \"x\"\n").is_err()); // incomplete
        assert!(HotPathConfig::parse("[[hotpath]]\nnope = \"x\"\n").is_err()); // unknown key
    }
}
