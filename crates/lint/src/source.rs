//! Lexical preprocessing: split a Rust source file into a *code* view and a
//! *comment* view with identical line structure.
//!
//! The lint rules are token-pattern based, so the one thing that must be
//! exact is knowing what is code and what is not: a `.unwrap()` inside a
//! string literal or a doc comment is not a violation, and a `// SAFETY:`
//! justification lives in comment text. Instead of a full parser (the usual
//! tool, `syn`, is not available offline) this module runs a small lexer
//! that understands exactly the constructs that matter:
//!
//! * line comments `//…` and (nested) block comments `/* … */`;
//! * string literals, byte strings, raw strings `r#"…"#` with any number of
//!   hashes, and their escapes;
//! * character literals vs. lifetimes (`'x'` vs `'a`);
//! * `#[cfg(test)] mod … { … }` regions, which are blanked entirely — the
//!   rules apply to non-test code only.
//!
//! Both views preserve every newline, so a char offset in either maps to
//! the same line number as in the original file.

/// A source file split into code and comment views of identical shape.
#[derive(Debug)]
pub struct Scrubbed {
    /// Comments blanked, string/char literal *contents* blanked (delimiters
    /// kept), test regions blanked.
    pub code: String,
    /// Everything except comment text blanked (test regions too).
    pub comments: String,
}

impl Scrubbed {
    pub fn new(src: &str) -> Scrubbed {
        let mut s = scrub(src);
        blank_test_regions(&mut s);
        s
    }

    pub fn code_lines(&self) -> Vec<&str> {
        self.code.lines().collect()
    }

    pub fn comment_lines(&self) -> Vec<&str> {
        self.comments.lines().collect()
    }
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Push `c` to whichever view is active, a space to the other; newlines go
/// to both so line structure is shared.
fn emit(code: &mut String, comments: &mut String, c: char, to_code: bool) {
    if c == '\n' {
        code.push('\n');
        comments.push('\n');
    } else if to_code {
        code.push(c);
        comments.push(' ');
    } else {
        code.push(' ');
        comments.push(c);
    }
}

fn scrub(src: &str) -> Scrubbed {
    let cs: Vec<char> = src.chars().collect();
    let n = cs.len();
    let mut code = String::with_capacity(src.len());
    let mut comments = String::with_capacity(src.len());
    let mut i = 0;
    while i < n {
        let c = cs[i];
        // line comment (also covers `///` and `//!` doc comments)
        if c == '/' && i + 1 < n && cs[i + 1] == '/' {
            while i < n && cs[i] != '\n' {
                emit(&mut code, &mut comments, cs[i], false);
                i += 1;
            }
            continue;
        }
        // nested block comment
        if c == '/' && i + 1 < n && cs[i + 1] == '*' {
            let mut depth = 0usize;
            while i < n {
                if i + 1 < n && cs[i] == '/' && cs[i + 1] == '*' {
                    depth += 1;
                    emit(&mut code, &mut comments, '/', false);
                    emit(&mut code, &mut comments, '*', false);
                    i += 2;
                } else if i + 1 < n && cs[i] == '*' && cs[i + 1] == '/' {
                    depth -= 1;
                    emit(&mut code, &mut comments, '*', false);
                    emit(&mut code, &mut comments, '/', false);
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    emit(&mut code, &mut comments, cs[i], false);
                    i += 1;
                }
            }
            continue;
        }
        // raw string r"…", r#"…"#, br#"…"# (only when not an identifier tail)
        if (c == 'r' || c == 'b') && (i == 0 || !is_ident(cs[i - 1])) {
            let mut j = i + 1;
            if c == 'b' && j < n && cs[j] == 'r' {
                j += 1;
            }
            let is_r = c == 'r' || (c == 'b' && j > i + 1);
            let hash_start = j;
            while is_r && j < n && cs[j] == '#' {
                j += 1;
            }
            let hashes = j - hash_start;
            if is_r && j < n && cs[j] == '"' {
                // prefix and opening quote stay in the code view
                for &c in &cs[i..=j] {
                    emit(&mut code, &mut comments, c, true);
                }
                i = j + 1;
                // contents blanked until `"` followed by `hashes` hashes
                'raw: while i < n {
                    if cs[i] == '"' {
                        let mut h = 0;
                        while h < hashes && i + 1 + h < n && cs[i + 1 + h] == '#' {
                            h += 1;
                        }
                        if h == hashes {
                            for &c in &cs[i..=i + hashes] {
                                emit(&mut code, &mut comments, c, true);
                            }
                            i += hashes + 1;
                            break 'raw;
                        }
                    }
                    emit(&mut code, &mut comments, cs[i], false);
                    i += 1;
                }
                continue;
            }
        }
        // plain / byte string
        if c == '"' {
            emit(&mut code, &mut comments, '"', true);
            i += 1;
            while i < n {
                if cs[i] == '\\' && i + 1 < n {
                    // an escaped newline (string continuation) must keep its
                    // newline in both views or every later line number shifts
                    for k in 0..2 {
                        let c = if cs[i + k] == '\n' { '\n' } else { ' ' };
                        emit(&mut code, &mut comments, c, true);
                    }
                    i += 2;
                } else if cs[i] == '"' {
                    emit(&mut code, &mut comments, '"', true);
                    i += 1;
                    break;
                } else {
                    emit(&mut code, &mut comments, cs[i], false);
                    i += 1;
                }
            }
            continue;
        }
        // char literal vs lifetime: `'\…'` or `'x'` is a literal, else `'a`
        if c == '\'' && i + 1 < n {
            let lit = cs[i + 1] == '\\' || (i + 2 < n && cs[i + 1] != '\'' && cs[i + 2] == '\'');
            if lit {
                emit(&mut code, &mut comments, '\'', true);
                i += 1;
                while i < n {
                    if cs[i] == '\\' && i + 1 < n {
                        for k in 0..2 {
                            let c = if cs[i + k] == '\n' { '\n' } else { ' ' };
                            emit(&mut code, &mut comments, c, true);
                        }
                        i += 2;
                    } else if cs[i] == '\'' {
                        emit(&mut code, &mut comments, '\'', true);
                        i += 1;
                        break;
                    } else {
                        emit(&mut code, &mut comments, cs[i], false);
                        i += 1;
                    }
                }
                continue;
            }
        }
        emit(&mut code, &mut comments, c, true);
        i += 1;
    }
    Scrubbed { code, comments }
}

/// Blank every `#[cfg(test)] mod … { … }` region in both views. Operates on
/// the already-scrubbed code so braces inside strings/comments are gone.
fn blank_test_regions(s: &mut Scrubbed) {
    let code: Vec<char> = s.code.chars().collect();
    let mut comments: Vec<char> = s.comments.chars().collect();
    let mut out = code.clone();
    let mut i = 0;
    let n = code.len();
    let pat: Vec<char> = "#[cfg(test)]".chars().collect();
    while i < n {
        if code[i] == '#' && code[i..].starts_with(&pat[..]) {
            let attr_start = i;
            let mut j = i + pat.len();
            // allow further attributes / whitespace before the item
            loop {
                while j < n && code[j].is_whitespace() {
                    j += 1;
                }
                if j < n && code[j] == '#' {
                    while j < n && code[j] != '\n' {
                        j += 1;
                    }
                } else {
                    break;
                }
            }
            // only whole `mod` regions are blanked; `#[cfg(test)]` on other
            // items (a use, a helper fn) is left for the rules to see
            let is_mod = code[j..].starts_with(&"mod ".chars().collect::<Vec<_>>()[..])
                || code[j..].starts_with(&"pub mod ".chars().collect::<Vec<_>>()[..]);
            if is_mod {
                while j < n && code[j] != '{' && code[j] != ';' {
                    j += 1;
                }
                if j < n && code[j] == '{' {
                    let mut depth = 0usize;
                    while j < n {
                        if code[j] == '{' {
                            depth += 1;
                        } else if code[j] == '}' {
                            depth -= 1;
                            if depth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        j += 1;
                    }
                    for k in attr_start..j.min(n) {
                        if out[k] != '\n' {
                            out[k] = ' ';
                        }
                        if comments[k] != '\n' {
                            comments[k] = ' ';
                        }
                    }
                    i = j;
                    continue;
                }
            }
        }
        i += 1;
    }
    s.code = out.into_iter().collect();
    s.comments = comments.into_iter().collect();
}

/// 1-based line number of char offset `pos` in `text`.
pub fn line_of(text: &str, pos: usize) -> usize {
    text.chars().take(pos).filter(|&c| c == '\n').count() + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_separated() {
        let s = Scrubbed::new("let x = \"a.unwrap()\"; // SAFETY: fine\n");
        assert!(!s.code.contains("unwrap"));
        assert!(!s.code.contains("SAFETY"));
        assert!(s.comments.contains("SAFETY: fine"));
        assert!(s.code.contains("let x ="));
    }

    #[test]
    fn nested_block_comments() {
        let s = Scrubbed::new("a /* x /* y */ z */ b\n");
        assert_eq!(s.code.trim(), "a                   b".trim());
        assert!(s.comments.contains('y'));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let s = Scrubbed::new("let j = r#\"panic!(\" inside \")\"#; let k = 1;\n");
        assert!(!s.code.contains("panic"));
        assert!(s.code.contains("let k = 1"));
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let s = Scrubbed::new("fn f<'a>(x: &'a str) -> char { '\\'' }\n");
        assert!(s.code.contains("<'a>"));
        assert!(s.code.contains("&'a str"));
        let s2 = Scrubbed::new("let c = '{'; let d = 0;\n");
        assert!(!s2.code.contains('{'), "brace literal must be blanked");
        assert!(s2.code.contains("let d = 0"));
    }

    #[test]
    fn test_mod_is_blanked() {
        let src = "fn real() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\nfn after() {}\n";
        let s = Scrubbed::new(src);
        assert!(s.code.contains("x.unwrap()"));
        assert!(!s.code.contains("y.unwrap()"));
        assert!(s.code.contains("fn after"));
        // line structure preserved
        assert_eq!(s.code.lines().count(), src.lines().count());
    }

    #[test]
    fn escaped_quote_in_string() {
        let s = Scrubbed::new("let a = \"he said \\\"hi\\\" ok\"; let b = 2;\n");
        assert!(s.code.contains("let b = 2"));
        assert!(!s.code.contains("hi"));
    }

    #[test]
    fn string_continuation_keeps_line_structure() {
        // regression: `"a \<newline>b"` used to emit a space for the escaped
        // newline, collapsing a line and shifting every later diagnostic —
        // float-eq then fired on `==` text sitting in doc comments and raw
        // strings because it read the wrong line.
        let src = "let s = \"a \\\n   b\";\n/// doc: x == 1.0 here\nlet t = r\"y == 2.0\";\nlet bad = x == 1.0;\n";
        let s = Scrubbed::new(src);
        assert_eq!(s.code.lines().count(), src.lines().count());
        // the real comparison is still on line 5 of the code view
        let code_lines: Vec<&str> = s.code.lines().collect();
        assert!(code_lines[4].contains("== 1.0"), "{code_lines:?}");
        assert!(
            !code_lines[2].contains("=="),
            "doc comment leaked into code"
        );
        assert!(
            !code_lines[3].contains("2.0"),
            "raw string leaked into code"
        );
    }

    #[test]
    fn line_numbers() {
        let t = "a\nb\nc";
        assert_eq!(line_of(t, 0), 1);
        assert_eq!(line_of(t, 2), 2);
        assert_eq!(line_of(t, 4), 3);
    }
}
