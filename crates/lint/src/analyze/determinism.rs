//! Determinism lint: constructs whose result depends on hash order, wall
//! clock, thread identity, or contracted floating-point (FMA / horizontal
//! reductions) must not be reachable from the counter-gated kernels — they
//! would break the bitwise SIMD/threads/transport reproducibility contract
//! the BENCH gates rely on.

use crate::graph::{BlameHop, FnId, Workspace};
use crate::parse::{HitKind, ParsedFile};
use crate::rules::{Diagnostic, RULE_DETERMINISM};
use std::collections::BTreeMap;

pub fn check(
    ws: &Workspace,
    files: &BTreeMap<String, ParsedFile>,
    parents: &BTreeMap<FnId, Option<(FnId, usize)>>,
    diags: &mut Vec<Diagnostic>,
) {
    for &id in parents.keys() {
        let n = &ws.fns[id];
        let Some(pf) = files.get(&n.file) else {
            continue;
        };
        for h in &n.f.hits {
            if h.kind != HitKind::Det {
                continue;
            }
            if super::allowed(pf, h.line, RULE_DETERMINISM) {
                continue;
            }
            let mut chain = ws.blame_chain(parents, id);
            let root = chain.first().map_or_else(String::new, |r| r.what.clone());
            chain.push(BlameHop {
                file: n.file.clone(),
                line: h.line,
                what: format!("`{}`", h.token),
            });
            let mut d = Diagnostic::new(
                &n.file,
                h.line,
                RULE_DETERMINISM,
                format!(
                    "`{}` is run-nondeterministic in `{}`, reachable from kernel root `{root}`",
                    h.token,
                    ws.qualified(id)
                ),
            );
            d.chain = chain;
            diags.push(d);
        }
    }
}
