//! The semantic analyses over the workspace model: root-set validation,
//! transitive hot-path purity, determinism, lock-and-block, and protocol
//! exhaustiveness. Each produces [`Diagnostic`]s carrying a blame chain
//! (root → … → offending construct) where a chain exists.

pub mod determinism;
pub mod hotpath;
pub mod locks;
pub mod protocol;

use crate::config::LintConfig;
use crate::graph::{FnId, Workspace};
use crate::parse::ParsedFile;
use crate::rules::{Diagnostic, RULE_CONFIG};
use std::collections::{BTreeMap, BTreeSet};

/// Policy file path, workspace-relative (where stale-entry blame points).
pub const CONFIG_REL: &str = "lint/hotpaths.toml";

/// The resolved root sets after config validation.
#[derive(Debug, Default)]
pub struct Roots {
    pub hot: Vec<FnId>,
    pub kernels: Vec<FnId>,
    /// Traversal stops: `#[cold]` functions plus `[[exclude]]` entries.
    pub stops: BTreeSet<FnId>,
}

/// Is there an `// lint: allow(rule)` escape covering `line` in this file?
/// An escape covers the line it trails, or — written on its own comment
/// line(s) — the next line carrying code.
pub fn allowed(pf: &ParsedFile, line: usize, rule: &str) -> bool {
    pf.allows.iter().any(|a| a.rule == rule && a.covers == line)
}

/// Validate every `hotpaths.toml` entry against the symbol table and build
/// the root sets. A stale entry (no such function anymore) is an error —
/// today it would silently un-gate a hot path.
pub fn validate_config(ws: &Workspace, cfg: &LintConfig, diags: &mut Vec<Diagnostic>) -> Roots {
    let mut roots = Roots::default();
    let mut resolve_list = |entries: &[(String, String)],
                            lines: &[usize],
                            what: &str|
     -> Vec<FnId> {
        let mut ids = Vec::new();
        for (i, (file, func)) in entries.iter().enumerate() {
            let found = ws.lookup(file, func);
            if found.is_empty() {
                diags.push(Diagnostic::new(
                    CONFIG_REL,
                    lines.get(i).copied().unwrap_or(1),
                    RULE_CONFIG,
                    format!("stale {what} entry: no function `{func}` in `{file}` (renamed or removed?)"),
                ));
            }
            ids.extend(found);
        }
        ids
    };
    roots.hot = resolve_list(&cfg.hot, &cfg.hot_lines, "[[hotpath]]");
    roots.kernels = resolve_list(&cfg.kernels, &cfg.kernel_lines, "[[kernel]]");
    let excl_entries: Vec<(String, String)> = cfg
        .excludes
        .iter()
        .map(|(f, g, _)| (f.clone(), g.clone()))
        .collect();
    let excl_ids = resolve_list(&excl_entries, &cfg.exclude_lines, "[[exclude]]");
    roots.stops.extend(excl_ids);
    // inline `// lint: hot-path` tags still seed roots (back-compat with the
    // lexer tier's convention)
    for (id, n) in ws.fns.iter().enumerate() {
        if n.f.tagged_hot {
            roots.hot.push(id);
        }
        if n.f.is_cold {
            roots.stops.insert(id);
        }
    }
    roots.hot.sort_unstable();
    roots.hot.dedup();
    roots
}

/// Run every call-graph analysis. Returns the diagnostics plus the reached
/// sets (for `--verbose` reporting).
pub struct SemanticRun {
    pub diags: Vec<Diagnostic>,
    pub roots: Roots,
    pub hot_reached: usize,
    pub kernel_reached: usize,
}

pub fn run_semantic(
    root: &std::path::Path,
    ws: &Workspace,
    cfg: &LintConfig,
    files: &BTreeMap<String, ParsedFile>,
) -> SemanticRun {
    let mut diags = Vec::new();
    let roots = validate_config(ws, cfg, &mut diags);
    let hot_parents = ws.reach(&roots.hot, &roots.stops);
    hotpath::check(ws, files, &hot_parents, &mut diags);
    let kernel_parents = ws.reach(&roots.kernels, &roots.stops);
    determinism::check(ws, files, &kernel_parents, &mut diags);
    locks::check(ws, files, &hot_parents, &mut diags);
    protocol::check(root, files, &mut diags);
    SemanticRun {
        diags,
        roots,
        hot_reached: hot_parents.len(),
        kernel_reached: kernel_parents.len(),
    }
}
