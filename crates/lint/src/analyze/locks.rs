//! Lock-and-block analysis over `crates/runtime/src/transport/`.
//!
//! Locks are identified structurally by the field name of the locked place
//! (`buf`, `bells`, …) — one name per lock *class*, which is exactly the
//! granularity a lock-order discipline is stated at. Two findings:
//!
//! * **lock-order**: a directed graph lock A → lock B is built from every
//!   "B acquired while A is held" site, both intra-function and through
//!   calls made with a guard live (using each callee's transitive
//!   acquisition set). Any cycle — including A → A re-entry — is a
//!   potential deadlock and is rejected.
//! * **lock-block**: an unbounded blocking site (`Condvar::wait` with no
//!   timeout, `recv`/`recv_into` with no deadline) reachable from a hot
//!   root turns a lost peer into a silent hang instead of a classified
//!   error; each one must be bounded or carry a justified allow.

use crate::graph::{BlameHop, FnId, Workspace};
use crate::parse::ParsedFile;
use crate::rules::{Diagnostic, RULE_LOCK_BLOCK, RULE_LOCK_ORDER};
use std::collections::{BTreeMap, BTreeSet};

const SCOPE: &str = "crates/runtime/src/transport/";

/// One witnessed lock-order edge: `from` was held when `to` was acquired.
struct Witness {
    file: String,
    line: usize,
    desc: String,
}

pub fn check(
    ws: &Workspace,
    files: &BTreeMap<String, ParsedFile>,
    hot_parents: &BTreeMap<FnId, Option<(FnId, usize)>>,
    diags: &mut Vec<Diagnostic>,
) {
    let in_scope: Vec<FnId> = (0..ws.fns.len())
        .filter(|&id| ws.fns[id].file.starts_with(SCOPE))
        .collect();
    let scoped: BTreeSet<FnId> = in_scope.iter().copied().collect();

    // transitive lock-acquisition set per scoped function (fixpoint)
    let mut acq: BTreeMap<FnId, BTreeSet<String>> = in_scope
        .iter()
        .map(|&id| {
            (
                id,
                ws.fns[id].f.locks.iter().map(|l| l.lock.clone()).collect(),
            )
        })
        .collect();
    loop {
        let mut changed = false;
        for e in &ws.edges {
            if !scoped.contains(&e.caller) || !scoped.contains(&e.callee) {
                continue;
            }
            let add: Vec<String> = acq[&e.callee].iter().cloned().collect();
            let set = acq.get_mut(&e.caller).expect("scoped caller");
            for l in add {
                changed |= set.insert(l);
            }
        }
        if !changed {
            break;
        }
    }

    // lock-order edges with a first witness each
    let mut order: BTreeMap<(String, String), Witness> = BTreeMap::new();
    let mut witness = |from: &str, to: &str, file: &str, line: usize, desc: String| {
        order
            .entry((from.to_string(), to.to_string()))
            .or_insert(Witness {
                file: file.to_string(),
                line,
                desc,
            });
    };
    for &id in &in_scope {
        let n = &ws.fns[id];
        for (held, _held_line, acquired, acq_line) in &n.f.lock_edges {
            witness(
                held,
                acquired,
                &n.file,
                *acq_line,
                format!(
                    "`{}` acquires `{acquired}` while holding `{held}`",
                    ws.qualified(id)
                ),
            );
        }
        for call in &n.f.calls {
            if call.holding.is_empty() {
                continue;
            }
            for e in ws
                .edges
                .iter()
                .filter(|e| e.caller == id && e.line == call.line && scoped.contains(&e.callee))
            {
                for held in &call.holding {
                    for inner in &acq[&e.callee] {
                        witness(
                            held,
                            inner,
                            &n.file,
                            call.line,
                            format!(
                                "`{}` calls `{}` (which acquires `{inner}`) while holding `{held}`",
                                ws.qualified(id),
                                ws.qualified(e.callee)
                            ),
                        );
                    }
                }
            }
        }
    }

    // cycle detection: for each edge a→b, BFS b→…→a over the order graph
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    for (a, b) in order.keys().cloned().collect::<Vec<_>>() {
        let Some(path) = shortest_path(&order, &b, &a) else {
            continue;
        };
        // cycle nodes: a, then the b→…→a path
        let mut nodes: Vec<String> = vec![a.clone()];
        nodes.extend(path.iter().cloned());
        let mut canon: Vec<String> = nodes.clone();
        canon.sort();
        canon.dedup();
        if !reported.insert(canon) {
            continue;
        }
        let w = &order[&(a.clone(), b.clone())];
        let pf = files.get(&w.file);
        if pf.is_some_and(|pf| super::allowed(pf, w.line, RULE_LOCK_ORDER)) {
            continue;
        }
        // chain: one hop per edge of the cycle
        let mut chain = Vec::new();
        let mut prev = a.clone();
        for next in nodes.iter().skip(1) {
            if let Some(w) = order.get(&(prev.clone(), next.clone())) {
                chain.push(BlameHop {
                    file: w.file.clone(),
                    line: w.line,
                    what: w.desc.clone(),
                });
            }
            prev = next.clone();
        }
        let cycle_str = nodes.join(" -> ");
        let mut d = Diagnostic::new(
            &w.file,
            w.line,
            RULE_LOCK_ORDER,
            format!("lock-order cycle: {cycle_str} (potential deadlock)"),
        );
        d.chain = chain;
        diags.push(d);
    }

    // unbounded blocking reachable from the hot roots (the exchange loop)
    for &id in hot_parents.keys() {
        let n = &ws.fns[id];
        let Some(pf) = files.get(&n.file) else {
            continue;
        };
        for w in &n.f.waits {
            if super::allowed(pf, w.line, RULE_LOCK_BLOCK) {
                continue;
            }
            let mut chain = ws.blame_chain(hot_parents, id);
            let root = chain.first().map_or_else(String::new, |r| r.what.clone());
            chain.push(BlameHop {
                file: n.file.clone(),
                line: w.line,
                what: format!("`{}`", w.what),
            });
            let mut d = Diagnostic::new(
                &n.file,
                w.line,
                RULE_LOCK_BLOCK,
                format!(
                    "`{}` blocks unboundedly in `{}`, reachable from hot root `{root}` — a lost peer hangs here instead of surfacing an error",
                    w.what,
                    ws.qualified(id)
                ),
            );
            d.chain = chain;
            diags.push(d);
        }
    }
}

/// Shortest node path `from → … → to` over the order graph (inclusive of
/// both endpoints), or `None`.
fn shortest_path(
    order: &BTreeMap<(String, String), Witness>,
    from: &str,
    to: &str,
) -> Option<Vec<String>> {
    let mut parent: BTreeMap<String, String> = BTreeMap::new();
    let mut queue = std::collections::VecDeque::new();
    parent.insert(from.to_string(), String::new());
    queue.push_back(from.to_string());
    while let Some(u) = queue.pop_front() {
        if u == to {
            let mut path = vec![u.clone()];
            let mut cur = u;
            while let Some(p) = parent.get(&cur) {
                if p.is_empty() {
                    break;
                }
                path.push(p.clone());
                cur = p.clone();
            }
            path.reverse();
            return Some(path);
        }
        for (a, b) in order.keys() {
            if *a == u && !parent.contains_key(b) {
                parent.insert(b.clone(), u.clone());
                queue.push_back(b.clone());
            }
        }
    }
    None
}
