//! Protocol exhaustiveness: every `Frame` variant must have a `kind()`
//! mapping, an `encode` arm and a `decode_body` arm; every `EventKind`
//! discriminant must round-trip through `from_u8`; the metric-id tables
//! must be duplicate-free; and any change to the wire *shape* (variants,
//! fields, kind numbers, tables, event discriminants) must bump
//! `codec::VERSION` — enforced against the committed fingerprint in
//! `lint/wire.fingerprint`.
//!
//! The scans are structural over the scrubbed source of `codec.rs` and
//! `flight.rs`; they need no type information because the wire contract is
//! by design written out literally in those two files.

use crate::graph::BlameHop;
use crate::parse::{fn_body_span, ParsedFile};
use crate::rules::{Diagnostic, RULE_CONFIG, RULE_PROTOCOL};
use crate::source::{line_of, Scrubbed};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

pub const CODEC_REL: &str = "crates/runtime/src/transport/codec.rs";
pub const FLIGHT_REL: &str = "crates/obs/src/flight.rs";
pub const FINGERPRINT_REL: &str = "lint/wire.fingerprint";

/// One enum variant: name, declaration line, `= N` discriminant if written,
/// and the whitespace-normalized field text (its wire shape).
#[derive(Debug, Clone)]
struct Variant {
    name: String,
    line: usize,
    disc: Option<u32>,
    fields: String,
}

/// Everything the checks need from the two protocol files.
#[derive(Debug, Default)]
struct Shape {
    frame_line: usize,
    frame: Vec<Variant>,
    /// `Frame::X => N` pairs from `fn kind`, plus the fn's line.
    kind_arms: Vec<(String, u32, usize)>,
    kind_line: usize,
    encode_refs: BTreeSet<String>,
    encode_line: usize,
    decode_ints: Vec<(u32, usize)>,
    decode_line: usize,
    /// `(bound, line)` of the `kind > N` header guard.
    header_bound: Option<(u32, usize)>,
    /// `(value, line)` of `const VERSION`.
    version: Option<(u32, usize)>,
    /// `(table name, line, entries)`.
    tables: Vec<(String, usize, Vec<String>)>,
    events: Vec<Variant>,
    from_u8_ints: Vec<(u32, usize)>,
    from_u8_line: usize,
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Parse the variants of `enum <name>` out of scrubbed code. Returns the
/// declaration line and the variants.
fn enum_variants(code: &str, name: &str) -> Option<(usize, Vec<Variant>)> {
    let cs: Vec<char> = code.chars().collect();
    for start in crate::parse::word_positions(code, "enum") {
        let mut j = start + 4;
        while j < cs.len() && cs[j].is_whitespace() {
            j += 1;
        }
        let n0 = j;
        while j < cs.len() && is_ident(cs[j]) {
            j += 1;
        }
        if cs[n0..j].iter().collect::<String>() != name {
            continue;
        }
        while j < cs.len() && cs[j] != '{' {
            j += 1;
        }
        if j >= cs.len() {
            return None;
        }
        let decl_line = line_of(code, start);
        let mut variants = Vec::new();
        let mut k = j + 1;
        loop {
            while k < cs.len() && (cs[k].is_whitespace() || cs[k] == ',') {
                k += 1;
            }
            if k >= cs.len() || cs[k] == '}' {
                break;
            }
            if cs[k] == '#' {
                // variant attribute: skip the line
                while k < cs.len() && cs[k] != '\n' {
                    k += 1;
                }
                continue;
            }
            if !is_ident(cs[k]) {
                k += 1;
                continue;
            }
            let v0 = k;
            while k < cs.len() && is_ident(cs[k]) {
                k += 1;
            }
            let vname: String = cs[v0..k].iter().collect();
            let vline = line_of(code, v0);
            // capture the variant tail up to the `,` (or enum `}`) at depth 0
            let t0 = k;
            let mut depth = 0i32;
            while k < cs.len() {
                match cs[k] {
                    '{' | '(' | '[' => depth += 1,
                    '}' | ')' | ']' => {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    }
                    ',' if depth == 0 => break,
                    _ => {}
                }
                k += 1;
            }
            let tail: String = cs[t0..k].iter().filter(|c| !c.is_whitespace()).collect();
            let disc = tail.strip_prefix('=').and_then(|t| {
                t.chars()
                    .take_while(char::is_ascii_digit)
                    .collect::<String>()
                    .parse()
                    .ok()
            });
            variants.push(Variant {
                name: vname,
                line: vline,
                disc,
                fields: tail,
            });
        }
        return Some((decl_line, variants));
    }
    None
}

/// `EnumName::Variant` references inside `body`, with the char offset of
/// each.
fn qual_refs(code: &str, body: &std::ops::Range<usize>, enum_name: &str) -> Vec<(String, usize)> {
    let cs: Vec<char> = code.chars().collect();
    let mut out = Vec::new();
    for p in crate::parse::word_positions(code, enum_name) {
        if p < body.start || p >= body.end {
            continue;
        }
        let mut j = p + enum_name.chars().count();
        if j + 1 < cs.len() && cs[j] == ':' && cs[j + 1] == ':' {
            j += 2;
            let v0 = j;
            while j < cs.len() && is_ident(cs[j]) {
                j += 1;
            }
            if j > v0 {
                out.push((cs[v0..j].iter().collect(), p));
            }
        }
    }
    out
}

/// Integer literals standing directly before a `=>` inside `body` — match
/// arm discriminants.
fn arm_ints(code: &str, body: &std::ops::Range<usize>) -> Vec<(u32, usize)> {
    let cs: Vec<char> = code.chars().collect();
    let mut out = Vec::new();
    let mut i = body.start;
    while i + 1 < body.end {
        if cs[i] == '=' && cs[i + 1] == '>' {
            let mut k = i;
            while k > body.start && cs[k - 1].is_whitespace() {
                k -= 1;
            }
            let d1 = k;
            while k > body.start && cs[k - 1].is_ascii_digit() {
                k -= 1;
            }
            let ok_prefix = k == body.start || !(is_ident(cs[k - 1]) || cs[k - 1] == '.');
            if k < d1 && ok_prefix {
                let digits: String = cs[k..d1].iter().collect();
                if let Ok(v) = digits.parse() {
                    out.push((v, line_of(code, k)));
                }
            }
            i += 2;
            continue;
        }
        i += 1;
    }
    out
}

/// `const <name> … = [ entries ];` — returns the const's line and the
/// top-level comma-separated entries.
fn const_table(code: &str, name: &str) -> Option<(usize, Vec<String>)> {
    let cs: Vec<char> = code.chars().collect();
    let p = crate::parse::word_positions(code, name)
        .into_iter()
        .find(|&p| {
            // must be a declaration: preceded by `const `
            let pre: String = cs[p.saturating_sub(6)..p].iter().collect();
            pre.ends_with("const ")
        })?;
    let mut j = p;
    while j < cs.len() && cs[j] != '=' {
        j += 1;
    }
    while j < cs.len() && cs[j] != '[' {
        j += 1;
    }
    if j >= cs.len() {
        return None;
    }
    let open = j;
    let mut depth = 0i32;
    let mut entries = Vec::new();
    let mut cur = String::new();
    while j < cs.len() {
        match cs[j] {
            '[' => {
                depth += 1;
                if depth > 1 {
                    cur.push('[');
                }
            }
            ']' => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
                cur.push(']');
            }
            ',' if depth == 1 => {
                entries.push(std::mem::take(&mut cur));
            }
            c => cur.push(c),
        }
        j += 1;
    }
    entries.push(cur);
    let entries: Vec<String> = entries
        .into_iter()
        .map(|e| e.split_whitespace().collect::<String>())
        .filter(|e| !e.is_empty())
        .collect();
    Some((line_of(code, open), entries))
}

/// `const VERSION … = N` value and line.
fn const_int(code: &str, name: &str) -> Option<(u32, usize)> {
    let cs: Vec<char> = code.chars().collect();
    let p = crate::parse::word_positions(code, name)
        .into_iter()
        .find(|&p| {
            let pre: String = cs[p.saturating_sub(6)..p].iter().collect();
            pre.ends_with("const ")
        })?;
    let mut j = p;
    while j < cs.len() && cs[j] != '=' {
        j += 1;
    }
    j += 1;
    while j < cs.len() && cs[j].is_whitespace() {
        j += 1;
    }
    let d0 = j;
    while j < cs.len() && (cs[j].is_ascii_digit() || cs[j] == '_') {
        j += 1;
    }
    let digits: String = cs[d0..j].iter().filter(|c| c.is_ascii_digit()).collect();
    digits.parse().ok().map(|v| (v, line_of(code, p)))
}

/// The `kind > N` bound inside `decode_header`.
fn header_bound(code: &str, body: &std::ops::Range<usize>) -> Option<(u32, usize)> {
    let cs: Vec<char> = code.chars().collect();
    for p in crate::parse::word_positions(code, "kind") {
        if p < body.start || p >= body.end {
            continue;
        }
        let mut j = p + 4;
        while j < cs.len() && cs[j].is_whitespace() {
            j += 1;
        }
        if j >= cs.len() || cs[j] != '>' || (j + 1 < cs.len() && cs[j + 1] == '=') {
            continue;
        }
        j += 1;
        while j < cs.len() && cs[j].is_whitespace() {
            j += 1;
        }
        let d0 = j;
        while j < cs.len() && cs[j].is_ascii_digit() {
            j += 1;
        }
        if j > d0 {
            let digits: String = cs[d0..j].iter().collect();
            if let Ok(v) = digits.parse() {
                return Some((v, line_of(code, p)));
            }
        }
    }
    None
}

fn parse_shape(root: &Path) -> Option<Shape> {
    let codec_src = std::fs::read_to_string(root.join(CODEC_REL)).ok()?;
    let codec = Scrubbed::new(&codec_src);
    let code = &codec.code;
    let mut sh = Shape::default();
    if let Some((line, vs)) = enum_variants(code, "Frame") {
        sh.frame_line = line;
        sh.frame = vs;
    }
    if let Some(body) = fn_body_span(&codec, "kind") {
        sh.kind_line = line_of(code, body.start);
        for (vname, at) in qual_refs(code, &body, "Frame") {
            // the arm's value is the next integer before a `=>`… simplest:
            // scan forward from the reference for `=> N`
            let cs: Vec<char> = code.chars().collect();
            let mut j = at;
            while j + 1 < body.end && !(cs[j] == '=' && cs[j + 1] == '>') {
                j += 1;
            }
            j += 2;
            while j < body.end && cs[j].is_whitespace() {
                j += 1;
            }
            let d0 = j;
            while j < body.end && cs[j].is_ascii_digit() {
                j += 1;
            }
            if j > d0 {
                let digits: String = cs[d0..j].iter().collect();
                if let Ok(v) = digits.parse() {
                    sh.kind_arms.push((vname, v, line_of(code, at)));
                }
            }
        }
    }
    if let Some(body) = fn_body_span(&codec, "encode") {
        sh.encode_line = line_of(code, body.start);
        sh.encode_refs = qual_refs(code, &body, "Frame")
            .into_iter()
            .map(|(n, _)| n)
            .collect();
    }
    if let Some(body) = fn_body_span(&codec, "decode_body") {
        sh.decode_line = line_of(code, body.start);
        sh.decode_ints = arm_ints(code, &body);
    }
    if let Some(body) = fn_body_span(&codec, "decode_header") {
        sh.header_bound = header_bound(code, &body);
    }
    sh.version = const_int(code, "VERSION");
    for t in ["COUNTER_NAMES", "HIST_NAMES", "GAUGE_NAMES"] {
        if let Some((line, entries)) = const_table(code, t) {
            sh.tables.push((t.to_string(), line, entries));
        }
    }
    if let Ok(flight_src) = std::fs::read_to_string(root.join(FLIGHT_REL)) {
        let flight = Scrubbed::new(&flight_src);
        if let Some((_, vs)) = enum_variants(&flight.code, "EventKind") {
            sh.events = vs;
        }
        if let Some(body) = fn_body_span(&flight, "from_u8") {
            sh.from_u8_line = line_of(&flight.code, body.start);
            sh.from_u8_ints = arm_ints(&flight.code, &body);
        }
    }
    Some(sh)
}

/// Canonical wire-shape string: what the committed fingerprint hashes.
fn canonical(sh: &Shape) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "wire-version {}\n",
        sh.version.map_or(0, |(v, _)| v)
    ));
    for v in &sh.frame {
        out.push_str(&format!("frame {} {}\n", v.name, v.fields));
    }
    for (name, val, _) in &sh.kind_arms {
        out.push_str(&format!("kind {name}={val}\n"));
    }
    for (t, _, entries) in &sh.tables {
        out.push_str(&format!("table {t} [{}]\n", entries.join(",")));
    }
    for v in &sh.events {
        out.push_str(&format!(
            "event {}={}\n",
            v.name,
            v.disc.map_or(u32::MAX, |d| d)
        ));
    }
    out
}

/// The generated content of `lint/wire.fingerprint` for the workspace at
/// `root`, or `None` when it has no codec (fixture workspaces).
pub fn fingerprint_file_text(root: &Path) -> Option<String> {
    let sh = parse_shape(root)?;
    let canon = canonical(&sh);
    Some(format!(
        "# wire-shape fingerprint — regenerate with: cargo xtask lint --mode wire-fingerprint\n\
         # hashes the canonical shape of Frame/EventKind/metric tables in codec.rs + flight.rs\n\
         version = {}\n\
         fingerprint = {:016x}\n",
        sh.version.map_or(0, |(v, _)| v),
        crate::fnv64(canon.as_bytes())
    ))
}

fn read_committed(root: &Path) -> Option<(u32, String)> {
    let text = std::fs::read_to_string(root.join(FINGERPRINT_REL)).ok()?;
    let mut version = None;
    let mut fp = None;
    for line in text.lines() {
        let line = line.trim();
        if let Some(v) = line.strip_prefix("version") {
            version = v.trim_start_matches([' ', '=']).trim().parse().ok();
        } else if let Some(f) = line.strip_prefix("fingerprint") {
            fp = Some(f.trim_start_matches([' ', '=']).trim().to_string());
        }
    }
    Some((version?, fp?))
}

pub fn check(root: &Path, files: &BTreeMap<String, ParsedFile>, diags: &mut Vec<Diagnostic>) {
    let Some(sh) = parse_shape(root) else {
        return; // no codec in this workspace: nothing to prove
    };
    let pf = files.get(CODEC_REL);
    let mut push = |mut d: Diagnostic| {
        if pf.is_some_and(|pf| super::allowed(pf, d.line, d.rule)) {
            return;
        }
        if d.chain.is_empty() {
            d.chain = vec![BlameHop {
                file: d.file.to_string_lossy().into_owned(),
                line: d.line,
                what: "wire contract".into(),
            }];
        }
        diags.push(d);
    };

    let kind_of: BTreeMap<&str, u32> = sh
        .kind_arms
        .iter()
        .map(|(n, v, _)| (n.as_str(), *v))
        .collect();
    let decode_set: BTreeSet<u32> = sh.decode_ints.iter().map(|(v, _)| *v).collect();
    for v in &sh.frame {
        match kind_of.get(v.name.as_str()) {
            None => push(Diagnostic::new(
                CODEC_REL,
                v.line,
                RULE_PROTOCOL,
                format!("`Frame::{}` has no `kind()` mapping", v.name),
            )),
            Some(&k) => {
                if !decode_set.contains(&k) {
                    let mut d = Diagnostic::new(
                        CODEC_REL,
                        v.line,
                        RULE_PROTOCOL,
                        format!("`Frame::{}` (kind {k}) has no `decode_body` arm", v.name),
                    );
                    d.chain = vec![
                        BlameHop {
                            file: CODEC_REL.into(),
                            line: v.line,
                            what: format!("Frame::{} declared", v.name),
                        },
                        BlameHop {
                            file: CODEC_REL.into(),
                            line: sh.decode_line,
                            what: format!("decode_body match has no `{k} =>` arm"),
                        },
                    ];
                    push(d);
                }
            }
        }
        if !sh.encode_refs.contains(&v.name) {
            let mut d = Diagnostic::new(
                CODEC_REL,
                v.line,
                RULE_PROTOCOL,
                format!("`Frame::{}` has no `encode` arm", v.name),
            );
            d.chain = vec![
                BlameHop {
                    file: CODEC_REL.into(),
                    line: v.line,
                    what: format!("Frame::{} declared", v.name),
                },
                BlameHop {
                    file: CODEC_REL.into(),
                    line: sh.encode_line,
                    what: "encode match never mentions it".into(),
                },
            ];
            push(d);
        }
    }
    // decode arms for kinds that no longer exist
    let kind_vals: BTreeSet<u32> = kind_of.values().copied().collect();
    for (v, line) in &sh.decode_ints {
        if !kind_vals.contains(v) {
            push(Diagnostic::new(
                CODEC_REL,
                *line,
                RULE_PROTOCOL,
                format!("`decode_body` arm `{v} =>` decodes no declared frame kind"),
            ));
        }
    }
    // header guard must admit exactly the declared kinds
    if let (Some((bound, line)), Some(&max)) = (sh.header_bound, kind_vals.iter().max()) {
        if bound != max {
            push(Diagnostic::new(
                CODEC_REL,
                line,
                RULE_PROTOCOL,
                format!(
                    "`decode_header` rejects kind > {bound} but the highest declared kind is {max}"
                ),
            ));
        }
    }
    // metric tables: duplicate ids are silent decode corruption
    for (t, line, entries) in &sh.tables {
        let mut seen = BTreeSet::new();
        for e in entries {
            if !seen.insert(e.clone()) {
                push(Diagnostic::new(
                    CODEC_REL,
                    *line,
                    RULE_PROTOCOL,
                    format!("duplicate entry `{e}` in metric table `{t}`"),
                ));
            }
        }
    }
    // EventKind: every discriminant must round-trip through from_u8
    let from_set: BTreeSet<u32> = sh.from_u8_ints.iter().map(|(v, _)| *v).collect();
    let disc_set: BTreeSet<u32> = sh.events.iter().filter_map(|v| v.disc).collect();
    for v in &sh.events {
        if let Some(d) = v.disc {
            if !from_set.contains(&d) {
                let mut diag = Diagnostic::new(
                    FLIGHT_REL,
                    v.line,
                    RULE_PROTOCOL,
                    format!("`EventKind::{}` (= {d}) has no `from_u8` arm", v.name),
                );
                diag.chain = vec![
                    BlameHop {
                        file: FLIGHT_REL.into(),
                        line: v.line,
                        what: format!("EventKind::{} declared", v.name),
                    },
                    BlameHop {
                        file: FLIGHT_REL.into(),
                        line: sh.from_u8_line,
                        what: format!("from_u8 has no `{d} =>` arm"),
                    },
                ];
                // flight.rs allows live in its own parsed file
                if files
                    .get(FLIGHT_REL)
                    .is_some_and(|pf| super::allowed(pf, v.line, RULE_PROTOCOL))
                {
                    continue;
                }
                push(diag);
            }
        }
    }
    for (v, line) in &sh.from_u8_ints {
        if !disc_set.contains(v) {
            push(Diagnostic::new(
                FLIGHT_REL,
                *line,
                RULE_PROTOCOL,
                format!("`from_u8` arm `{v} =>` maps to no declared EventKind discriminant"),
            ));
        }
    }

    // wire-shape fingerprint discipline
    let canon = canonical(&sh);
    let fp = format!("{:016x}", crate::fnv64(canon.as_bytes()));
    let version = sh.version.map_or(0, |(v, _)| v);
    let vline = sh.version.map_or(1, |(_, l)| l);
    match read_committed(root) {
        None => push(Diagnostic::new(
            CODEC_REL,
            vline,
            RULE_CONFIG,
            format!(
                "no committed wire fingerprint — generate `{FINGERPRINT_REL}` with `cargo xtask lint --mode wire-fingerprint`"
            ),
        )),
        Some((cv, cfp)) => {
            if cv == version && cfp != fp {
                push(Diagnostic::new(
                    CODEC_REL,
                    vline,
                    RULE_PROTOCOL,
                    format!(
                        "wire shape changed (fingerprint {fp} != committed {cfp}) without bumping `codec::VERSION` — bump it, then refresh `{FINGERPRINT_REL}`"
                    ),
                ));
            } else if cv != version {
                push(Diagnostic::new(
                    CODEC_REL,
                    vline,
                    RULE_PROTOCOL,
                    format!(
                        "`codec::VERSION` is {version} but `{FINGERPRINT_REL}` records {cv} — refresh it with `cargo xtask lint --mode wire-fingerprint`"
                    ),
                ));
            }
        }
    }
}
