//! Transitive hot-path purity: any allocation or panic-capable construct
//! inside a function reachable from a hot root is a violation, no matter
//! how many calls deep. Replaces the tag-scoped `hot-path-alloc` body scan
//! and the blanket textual `no-panic` rule for reachable code.

use crate::graph::{BlameHop, FnId, Workspace};
use crate::parse::{HitKind, ParsedFile};
use crate::rules::{Diagnostic, Severity, RULE_HOT_INDEX, RULE_HOT_PANIC, RULE_HOT_PATH};
use std::collections::BTreeMap;

pub fn check(
    ws: &Workspace,
    files: &BTreeMap<String, ParsedFile>,
    parents: &BTreeMap<FnId, Option<(FnId, usize)>>,
    diags: &mut Vec<Diagnostic>,
) {
    for &id in parents.keys() {
        let n = &ws.fns[id];
        let Some(pf) = files.get(&n.file) else {
            continue;
        };
        for h in &n.f.hits {
            let (rule, severity, verb) = match h.kind {
                HitKind::Alloc => (RULE_HOT_PATH, Severity::Error, "allocates"),
                HitKind::Panic => (RULE_HOT_PANIC, Severity::Error, "can panic"),
                HitKind::Index => (
                    RULE_HOT_INDEX,
                    Severity::Warning,
                    "may panic (indexing without `get`)",
                ),
                HitKind::Det => continue,
            };
            // a legacy `allow(no-panic)` escape covers the same construct
            // the semantic panic rule re-finds — honor it rather than
            // forcing every justified escape to be rewritten
            if super::allowed(pf, h.line, rule)
                || (rule == RULE_HOT_PANIC
                    && super::allowed(pf, h.line, crate::rules::RULE_NO_PANIC))
            {
                continue;
            }
            let mut chain = ws.blame_chain(parents, id);
            let root = chain.first().map_or_else(String::new, |r| r.what.clone());
            chain.push(BlameHop {
                file: n.file.clone(),
                line: h.line,
                what: format!("`{}`", h.token),
            });
            let mut d = Diagnostic::new(
                &n.file,
                h.line,
                rule,
                format!(
                    "`{}` {verb} in `{}`, reachable from hot root `{root}`",
                    h.token,
                    ws.qualified(id)
                ),
            );
            d.severity = severity;
            d.chain = chain;
            diags.push(d);
        }
    }
}
