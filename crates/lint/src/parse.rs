//! Item-level parsing of one Rust source file into the facts the semantic
//! analyses consume: function items with impl context, call sites, construct
//! hits (allocation / panic / determinism / indexing), lock acquisitions
//! with held-lock context, and blocking-wait sites.
//!
//! `syn` is unavailable offline, so this is a purpose-built structural
//! parser over the [`Scrubbed`] code view (comments, strings and
//! `#[cfg(test)] mod` regions already blanked). It is *conservative*: it
//! never needs to type-check, only to over-approximate — a call site it
//! cannot resolve precisely becomes an edge to every same-name candidate
//! (see `graph.rs`), and a construct it cannot prove cold is reported.
//! The known soundness holes (function pointers, trait objects dispatched
//! outside the workspace, macro-expanded calls from foreign macros) are
//! documented in DESIGN.md §11.

use crate::source::{line_of, Scrubbed};

/// What a construct hit means to the analyses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitKind {
    /// Heap allocation on a hot path (`Vec::new`, `format!`, `.clone()`, …).
    Alloc,
    /// Panic-capable construct (`unwrap`, `panic!`, `assert!`, …).
    Panic,
    /// Slice/array indexing without `get` — panic-capable, warning tier.
    Index,
    /// Run-nondeterminism hazard (`HashMap` iteration order, `Instant::now`,
    /// FMA / horizontal-reduction intrinsics, thread identity).
    Det,
}

/// One construct occurrence inside a function body.
#[derive(Debug, Clone)]
pub struct Hit {
    pub kind: HitKind,
    /// The matched token, for the diagnostic message.
    pub token: String,
    /// 1-based line.
    pub line: usize,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Written path: `"helper"`, `"Vec::new"`, `"Self::load"`; for method
    /// calls, just the method name.
    pub path: String,
    /// `true` for `.name(…)` receiver syntax.
    pub method: bool,
    /// 1-based line.
    pub line: usize,
    /// Lock names held (structurally) when the call is made.
    pub holding: Vec<String>,
}

/// A lock acquisition (`lock(&x.y)` helper or `x.y.lock()`).
#[derive(Debug, Clone)]
pub struct LockAcq {
    /// Lock identity: the last path segment of the locked place (`buf`,
    /// `bells`) — field names identify the lock class.
    pub lock: String,
    pub line: usize,
}

/// A potentially-unbounded blocking site.
#[derive(Debug, Clone)]
pub struct Wait {
    /// What blocks: `"Condvar::wait"`, `"recv()"`, `"recv_into"`, or
    /// `"recv_into_timeout(None)"`.
    pub what: &'static str,
    pub line: usize,
}

/// One function item.
#[derive(Debug, Clone)]
pub struct ParsedFn {
    pub name: String,
    /// Enclosing `impl` target (or trait for default methods), if any.
    pub impl_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Carries `#[cold]` — treated as a terminal error path by the hot-path
    /// purity analysis.
    pub is_cold: bool,
    /// Tagged `// lint: hot-path` in the comment block above.
    pub tagged_hot: bool,
    pub calls: Vec<CallSite>,
    pub hits: Vec<Hit>,
    pub locks: Vec<LockAcq>,
    /// `(held lock, held-at line, acquired lock, acquired-at line)` — an
    /// intra-function lock-order edge.
    pub lock_edges: Vec<(String, usize, String, usize)>,
    pub waits: Vec<Wait>,
}

/// One `// lint: allow(rule) — justification` escape.
#[derive(Debug, Clone)]
pub struct Allow {
    pub rule: String,
    /// 1-based line the comment sits on.
    pub line: usize,
    /// 1-based line the escape covers: the comment's own line when it
    /// trails code, else the first code line after the comment block.
    pub covers: usize,
    /// `true` when text follows the `allow(rule)` beyond punctuation.
    pub justified: bool,
}

/// Everything the analyses need from one file.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    pub fns: Vec<ParsedFn>,
    pub allows: Vec<Allow>,
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Method names that heap-allocate when called on owned/borrowed data.
const ALLOC_METHODS: &[&str] = &[
    "to_vec",
    "clone",
    "collect",
    "to_string",
    "to_owned",
    "with_capacity",
];

/// Path heads whose `::new` / `::from` / `::with_capacity` allocate.
const ALLOC_TYPES: &[&str] = &[
    "Vec", "Box", "String", "VecDeque", "BTreeMap", "BTreeSet", "HashMap", "HashSet", "Rc", "Arc",
];

/// Macros that allocate.
const ALLOC_MACROS: &[&str] = &["format", "vec"];

/// Methods that can panic.
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

/// Macros that panic (`debug_assert*` compiles out of release builds and is
/// deliberately not listed).
const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Method names that are construct hits at their call site. Calls through
/// them never become graph edges: `.clone()` on a hot path is flagged where
/// it happens, and linking every workspace `clone`/`unwrap` impl to every
/// such call would only multiply the same finding.
pub fn is_leaf_method(name: &str) -> bool {
    ALLOC_METHODS.contains(&name) || PANIC_METHODS.contains(&name)
}

/// Identifier keywords that look like `name(` but are not calls.
const KEYWORDS: &[&str] = &[
    "if", "while", "match", "for", "in", "as", "let", "mut", "ref", "move", "return", "break",
    "continue", "loop", "else", "unsafe", "dyn", "where", "fn", "impl", "pub", "use", "mod",
    "struct", "enum", "trait", "const", "static", "type",
];

/// An active lock guard during the body walk.
struct Guard {
    var: Option<String>,
    lock: String,
    line: usize,
    /// Brace depth at which the guard was bound; falling below releases it.
    depth: i32,
}

/// Span of one `impl` block: target type name and body char range.
struct ImplSpan {
    target: String,
    body: std::ops::Range<usize>,
}

/// Find `impl` blocks and their target type. Handles `impl<T> Type {`,
/// `impl Trait for Type {` and nested generic arguments.
fn impl_spans(cs: &[char]) -> Vec<ImplSpan> {
    let mut out = Vec::new();
    let code: String = cs.iter().collect();
    for start in word_positions(&code, "impl") {
        let mut j = start + 4;
        // skip generic parameter list
        skip_ws(cs, &mut j);
        if j < cs.len() && cs[j] == '<' {
            let mut angle = 0i32;
            while j < cs.len() {
                match cs[j] {
                    '<' => angle += 1,
                    '>' => {
                        angle -= 1;
                        if angle == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        // header text up to body `{` at angle depth 0
        let header_start = j;
        let mut angle = 0i32;
        let mut open = None;
        while j < cs.len() {
            match cs[j] {
                '<' => angle += 1,
                '>' if angle > 0 => angle -= 1,
                '{' if angle == 0 => {
                    open = Some(j);
                    break;
                }
                ';' if angle == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(open) = open else { continue };
        let header: String = cs[header_start..open].iter().collect();
        // `A for B` → B; else the first path segment chain
        let target_text = match header.find(" for ") {
            Some(p) => &header[p + 5..],
            None => &header[..],
        };
        let target: String = target_text
            .trim()
            .chars()
            .take_while(|&c| is_ident(c))
            .collect();
        if target.is_empty() {
            continue;
        }
        let close = match_brace(cs, open);
        out.push(ImplSpan {
            target,
            body: open..close,
        });
    }
    out
}

/// Index of the `}` matching the `{` at `open` (or `cs.len()`).
fn match_brace(cs: &[char], open: usize) -> usize {
    let mut depth = 0i32;
    let mut k = open;
    while k < cs.len() {
        match cs[k] {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
        k += 1;
    }
    cs.len()
}

fn skip_ws(cs: &[char], j: &mut usize) {
    while *j < cs.len() && cs[*j].is_whitespace() {
        *j += 1;
    }
}

/// Word-boundary occurrences of `word` (char offsets).
pub fn word_positions(text: &str, word: &str) -> Vec<usize> {
    let cs: Vec<char> = text.chars().collect();
    let w: Vec<char> = word.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i + w.len() <= cs.len() {
        if cs[i..i + w.len()] == w[..]
            && (i == 0 || !is_ident(cs[i - 1]))
            && (i + w.len() == cs.len() || !is_ident(cs[i + w.len()]))
        {
            out.push(i);
        }
        i += 1;
    }
    out
}

/// Raw function item: name + header line + body span, before impl
/// attribution and body scanning.
struct RawFn {
    name: String,
    fn_pos: usize,
    body: std::ops::Range<usize>,
}

fn raw_fns(code: &str, cs: &[char]) -> Vec<RawFn> {
    let mut out = Vec::new();
    for start in word_positions(code, "fn") {
        let mut j = start + 2;
        skip_ws(cs, &mut j);
        let name_start = j;
        while j < cs.len() && is_ident(cs[j]) {
            j += 1;
        }
        if j == name_start {
            continue; // `Fn(...)` trait sugar or `fn` pointer type
        }
        let name: String = cs[name_start..j].iter().collect();
        // find the body `{` at paren/bracket depth 0 (skipping `where`
        // clauses, which contain no braces) or `;` for bodyless items
        let mut depth = 0i32;
        let mut angle = 0i32;
        let mut open = None;
        while j < cs.len() {
            match cs[j] {
                '(' | '[' => depth += 1,
                ')' | ']' => depth -= 1,
                '<' => angle += 1,
                '>' if angle > 0 => angle -= 1,
                '{' if depth == 0 => {
                    open = Some(j);
                    break;
                }
                ';' if depth == 0 && angle == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(open) = open else { continue };
        out.push(RawFn {
            name,
            fn_pos: start,
            body: open..match_brace(cs, open),
        });
    }
    out
}

/// Does the contiguous comment/attribute block directly above `fn_line0`
/// contain a comment line starting with `marker`?
fn block_above_prefix(
    code_lines: &[&str],
    comment_lines: &[&str],
    fn_line0: usize,
    marker: &str,
) -> bool {
    let mut l = fn_line0;
    while l > 0 {
        l -= 1;
        let code_t = code_lines.get(l).map_or("", |s| s.trim());
        let com_t = comment_lines.get(l).map_or("", |s| s.trim());
        if com_t.starts_with(marker) {
            return true;
        }
        let is_attr = code_t.starts_with("#[") || code_t.starts_with("#![");
        let is_comment_only = code_t.is_empty() && !com_t.is_empty();
        if !(is_attr || is_comment_only) {
            return false;
        }
    }
    false
}

/// Does the attribute block above (or on the `fn` line itself) carry
/// `#[attr]`?
fn has_attr_above(code_lines: &[&str], fn_line0: usize, attr: &str) -> bool {
    let needle = format!("#[{attr}]");
    // the attribute may share the fn line (`#[cold] fn f…`)
    if code_lines
        .get(fn_line0)
        .is_some_and(|l| l.contains(&needle))
    {
        return true;
    }
    let mut l = fn_line0;
    while l > 0 {
        l -= 1;
        let t = code_lines.get(l).map_or("", |s| s.trim());
        if t.contains(&needle) {
            return true;
        }
        if !(t.starts_with("#[") || t.is_empty()) {
            return false;
        }
    }
    false
}

/// Scan the comments view for `lint: allow(rule)` escapes.
fn scan_allows(s: &Scrubbed) -> Vec<Allow> {
    let mut out = Vec::new();
    let code_lines: Vec<&str> = s.code.lines().collect();
    // an allow trailing code covers its own line; an allow on a comment-only
    // line (possibly one of several) covers the next line carrying code
    let covers_of = |line0: usize| -> usize {
        if code_lines.get(line0).is_some_and(|l| !l.trim().is_empty()) {
            return line0 + 1;
        }
        for (j, l) in code_lines.iter().enumerate().skip(line0 + 1) {
            if !l.trim().is_empty() {
                return j + 1;
            }
        }
        line0 + 1
    };
    for (line0, line) in s.comments.lines().enumerate() {
        // doc comments (`///`, `//!`) describe the syntax, they don't use it
        let t = line.trim_start();
        if t.starts_with("///") || t.starts_with("//!") {
            continue;
        }
        let mut from = 0;
        while let Some(p) = line[from..].find("lint: allow(") {
            let at = from + p + "lint: allow(".len();
            let rest = &line[at..];
            let rule: String = rest
                .chars()
                .take_while(|&c| is_ident(c) || c == '-')
                .collect();
            from = at;
            if rule.is_empty() {
                continue;
            }
            let Some(close) = rest.find(')') else {
                continue;
            };
            // prose mentioning the escape syntax (`allow(<rule>)`) is not an
            // escape; require the rule to start at the paren
            if !rest.starts_with(&rule) {
                continue;
            }
            let tail = rest[close + 1..].trim_matches(|c: char| {
                c.is_whitespace() || matches!(c, '—' | '-' | '–' | ':' | '.')
            });
            out.push(Allow {
                rule,
                line: line0 + 1,
                covers: covers_of(line0),
                justified: tail.chars().filter(|c| c.is_alphanumeric()).count() >= 3,
            });
        }
    }
    out
}

/// Walk one body span, extracting calls, hits, locks and waits.
#[allow(clippy::too_many_lines)]
fn walk_body(
    code: &str,
    cs: &[char],
    span: std::ops::Range<usize>,
    skip: &[std::ops::Range<usize>],
    f: &mut ParsedFn,
) {
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0i32;
    let mut i = span.start;
    while i < span.end {
        // skip nested fn items (attributed to their own ParsedFn)
        if let Some(r) = skip.iter().find(|r| r.start == i) {
            i = r.end;
            continue;
        }
        let c = cs[i];
        match c {
            '{' => {
                depth += 1;
                i += 1;
                continue;
            }
            '}' => {
                depth -= 1;
                // leaving a block drops every guard declared inside it
                guards.retain(|g| g.depth <= depth);
                i += 1;
                continue;
            }
            '[' => {
                // expression indexing: `[` directly after an ident/`)`/`]`
                let mut k = i;
                while k > span.start && cs[k - 1].is_whitespace() {
                    k -= 1;
                }
                if k > span.start && (is_ident(cs[k - 1]) || cs[k - 1] == ')' || cs[k - 1] == ']') {
                    // attribute `#[...]` has `#` before; type `[f64; 4]` has
                    // none of these; `ident[` in expression position panics
                    // on out-of-range
                    f.hits.push(Hit {
                        kind: HitKind::Index,
                        token: "[]".into(),
                        line: line_of(code, i),
                    });
                }
                i += 1;
                continue;
            }
            _ => {}
        }
        if !is_ident(c) || c.is_ascii_digit() {
            i += 1;
            continue;
        }
        // read a path: ident(::ident)*
        let path_start = i;
        let mut j = i;
        let mut segs: Vec<String> = Vec::new();
        loop {
            let s0 = j;
            while j < span.end && is_ident(cs[j]) {
                j += 1;
            }
            segs.push(cs[s0..j].iter().collect());
            if j + 1 < span.end && cs[j] == ':' && cs[j + 1] == ':' {
                let mut k = j + 2;
                if k < span.end && cs[k] == '<' {
                    // turbofish: skip the generic args, then expect `(`
                    let mut angle = 0i32;
                    while k < span.end {
                        match cs[k] {
                            '<' => angle += 1,
                            '>' => {
                                angle -= 1;
                                if angle == 0 {
                                    k += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    j = k;
                    break;
                }
                if k < span.end && is_ident(cs[k]) && !cs[k].is_ascii_digit() {
                    j = k;
                    continue;
                }
            }
            break;
        }
        let line = line_of(code, path_start);
        let name = segs.last().cloned().unwrap_or_default();
        let full_path = segs.join("::");
        let single_keyword = segs.len() == 1 && KEYWORDS.contains(&name.as_str());
        // look ahead: macro bang or call parens?
        let mut k = j;
        skip_ws(cs, &mut k);
        let is_macro = k < span.end && cs[k] == '!';
        let is_call = !is_macro && k < span.end && cs[k] == '(' && !single_keyword;
        // method call if the path is preceded by `.`
        let mut b = path_start;
        while b > span.start && cs[b - 1].is_whitespace() {
            b -= 1;
        }
        let is_method = b > span.start && cs[b - 1] == '.' && segs.len() == 1;

        if is_macro {
            if ALLOC_MACROS.contains(&name.as_str()) {
                f.hits.push(Hit {
                    kind: HitKind::Alloc,
                    token: format!("{name}!"),
                    line,
                });
            } else if PANIC_MACROS.contains(&name.as_str()) {
                f.hits.push(Hit {
                    kind: HitKind::Panic,
                    token: format!("{name}!"),
                    line,
                });
            }
            i = j;
            continue;
        }

        // determinism hazards fire on any appearance, call or not:
        // HashMap/HashSet types, time sources, thread identity, FMA and
        // horizontal-reduction intrinsics
        match name.as_str() {
            "HashMap" | "HashSet" => f.hits.push(Hit {
                kind: HitKind::Det,
                token: name.clone(),
                line,
            }),
            _ => {
                let fp = full_path.as_str();
                if fp == "Instant::now"
                    || fp == "SystemTime::now"
                    || fp == "thread::current"
                    || fp.ends_with("available_parallelism")
                    || name == "mul_add"
                    || name.contains("fmadd")
                    || name.contains("fmsub")
                    || name.contains("hadd")
                    || name.contains("reduce_add")
                {
                    f.hits.push(Hit {
                        kind: HitKind::Det,
                        token: full_path.clone(),
                        line,
                    });
                }
            }
        }

        if is_call {
            // allocation / panic construct hits
            if is_method && ALLOC_METHODS.contains(&name.as_str()) {
                // `.collect()` `.clone()` … on a receiver
                f.hits.push(Hit {
                    kind: HitKind::Alloc,
                    token: format!(".{name}()"),
                    line,
                });
            } else if segs.len() >= 2
                && ALLOC_TYPES.contains(&segs[segs.len() - 2].as_str())
                && matches!(name.as_str(), "new" | "from" | "with_capacity")
                && full_path != "Arc::clone"
                && full_path != "Rc::clone"
            {
                f.hits.push(Hit {
                    kind: HitKind::Alloc,
                    token: full_path.clone(),
                    line,
                });
            }
            if is_method && PANIC_METHODS.contains(&name.as_str()) {
                f.hits.push(Hit {
                    kind: HitKind::Panic,
                    token: format!(".{name}()"),
                    line,
                });
            }

            // blocking-wait sites
            if is_method && name == "wait" {
                f.waits.push(Wait {
                    what: "Condvar::wait (no timeout)",
                    line,
                });
            }
            if is_method && matches!(name.as_str(), "recv" | "recv_into") {
                f.waits.push(Wait {
                    what: if name == "recv" {
                        "recv() (no timeout)"
                    } else {
                        "recv_into (no timeout)"
                    },
                    line,
                });
            }
            if is_method && name == "recv_into_timeout" {
                // unbounded only when literally passed `None`
                let arg_end = paren_end(cs, k, span.end);
                let args: String = cs[k..arg_end].iter().collect();
                if args.contains("None") {
                    f.waits.push(Wait {
                        what: "recv_into_timeout(None)",
                        line,
                    });
                }
            }

            // lock acquisitions
            let lockname = if name == "lock" && !is_method && segs.len() == 1 {
                // helper form: lock(&x.y)
                let arg_end = paren_end(cs, k, span.end);
                let args: String = cs[k + 1..arg_end.saturating_sub(1)].iter().collect();
                last_segment(&args)
            } else if name == "lock" && is_method {
                // x.y.lock(): walk the receiver back from the dot
                let r = b - 1; // at '.'
                let mut e = r;
                while e > span.start && (is_ident(cs[e - 1]) || cs[e - 1] == '.') {
                    e -= 1;
                }
                let recv: String = cs[e..r].iter().collect();
                last_segment(&recv)
            } else {
                None
            };
            if let Some(lockname) = lockname {
                for g in &guards {
                    f.lock_edges
                        .push((g.lock.clone(), g.line, lockname.clone(), line));
                }
                f.locks.push(LockAcq {
                    lock: lockname.clone(),
                    line,
                });
                // bound to a guard variable? `let [mut] g = [... ] lock(...)`
                if let Some(var) = binding_var(cs, span.start, path_start) {
                    guards.push(Guard {
                        var: Some(var),
                        lock: lockname,
                        line,
                        depth,
                    });
                }
                i = j;
                continue;
            }

            // guard release: drop(g)
            if name == "drop" && segs.len() == 1 && !is_method {
                let arg_end = paren_end(cs, k, span.end);
                let arg: String = cs[k + 1..arg_end.saturating_sub(1)].iter().collect();
                let arg = arg.trim().to_string();
                guards.retain(|g| g.var.as_deref() != Some(arg.as_str()));
            }

            // the call edge itself
            f.calls.push(CallSite {
                path: full_path,
                method: is_method,
                line,
                holding: guards.iter().map(|g| g.lock.clone()).collect(),
            });
        }
        i = j.max(path_start + 1);
    }
}

/// Char index one past the `)` closing the paren at `open`.
fn paren_end(cs: &[char], open: usize, limit: usize) -> usize {
    let mut depth = 0i32;
    let mut k = open;
    while k < limit {
        match cs[k] {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return k + 1;
                }
            }
            _ => {}
        }
        k += 1;
    }
    limit
}

/// Last `.`-separated identifier segment of a place expression, e.g.
/// `&ring.buf` → `buf`.
fn last_segment(place: &str) -> Option<String> {
    let cleaned: String = place
        .trim()
        .trim_start_matches('&')
        .trim_start_matches("mut ")
        .chars()
        .take_while(|&c| is_ident(c) || c == '.' || c == ':')
        .collect();
    let seg = cleaned.rsplit(['.', ':']).find(|s| !s.is_empty())?;
    if seg.chars().all(is_ident) && !seg.is_empty() {
        Some(seg.to_string())
    } else {
        None
    }
}

/// If the call starting at `call_start` is the RHS of `let [mut] v = …`,
/// return `v`. Scans back across one `=` not part of `==`/`>=` etc.
fn binding_var(cs: &[char], lo: usize, call_start: usize) -> Option<String> {
    let mut k = call_start;
    // allow an expression prefix on the RHS like `match ring.buf.lock()`;
    // walk back to the start of the statement (a `;`, `{` or `}`)
    while k > lo && !matches!(cs[k - 1], ';' | '{' | '}') {
        k -= 1;
    }
    let stmt: String = cs[k..call_start].iter().collect();
    let t = stmt.trim_start();
    let t = t.strip_prefix("let ")?;
    let t = t.trim_start().trim_start_matches("mut ").trim_start();
    let var: String = t.chars().take_while(|&c| is_ident(c)).collect();
    let rest = &t[var.len()..];
    if var.is_empty() || !rest.trim_start().starts_with('=') {
        return None;
    }
    Some(var)
}

/// Body span (char offsets, `{`..`}`) of the first function item named
/// `name` — used by the protocol analysis to scope its scans.
pub fn fn_body_span(s: &Scrubbed, name: &str) -> Option<std::ops::Range<usize>> {
    let cs: Vec<char> = s.code.chars().collect();
    raw_fns(&s.code, &cs)
        .into_iter()
        .find(|r| r.name == name)
        .map(|r| r.body)
}

/// Parse one scrubbed file into analysis facts.
pub fn parse_file(s: &Scrubbed) -> ParsedFile {
    let cs: Vec<char> = s.code.chars().collect();
    let code_lines: Vec<&str> = s.code.lines().collect();
    let comment_lines: Vec<&str> = s.comments.lines().collect();
    let impls = impl_spans(&cs);
    let raws = raw_fns(&s.code, &cs);
    let mut out = ParsedFile {
        allows: scan_allows(s),
        ..ParsedFile::default()
    };
    for (idx, r) in raws.iter().enumerate() {
        let fn_line0 = line_of(&s.code, r.fn_pos) - 1;
        let impl_type = impls
            .iter()
            .filter(|im| im.body.start < r.fn_pos && r.fn_pos < im.body.end)
            .min_by_key(|im| im.body.end - im.body.start)
            .map(|im| im.target.clone());
        let mut f = ParsedFn {
            name: r.name.clone(),
            impl_type,
            line: fn_line0 + 1,
            is_cold: has_attr_above(&code_lines, fn_line0, "cold"),
            tagged_hot: block_above_prefix(
                &code_lines,
                &comment_lines,
                fn_line0,
                "// lint: hot-path",
            ),
            calls: Vec::new(),
            hits: Vec::new(),
            locks: Vec::new(),
            lock_edges: Vec::new(),
            waits: Vec::new(),
        };
        // immediate nested fn items are excluded from this body's walk
        let nested: Vec<std::ops::Range<usize>> = raws
            .iter()
            .enumerate()
            .filter(|(k, o)| *k != idx && r.body.start < o.body.start && o.body.end <= r.body.end)
            .map(|(_, o)| o.body.clone())
            .collect();
        walk_body(&s.code, &cs, r.body.clone(), &nested, &mut f);
        out.fns.push(f);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ParsedFile {
        parse_file(&Scrubbed::new(src))
    }

    #[test]
    fn finds_fns_with_impl_context() {
        let p = parse("struct A;\nimpl A {\n    fn m(&self) {}\n}\nfn free() {}\nimpl Clone for A {\n    fn clone(&self) -> A { A }\n}\n");
        let names: Vec<(String, Option<String>)> = p
            .fns
            .iter()
            .map(|f| (f.name.clone(), f.impl_type.clone()))
            .collect();
        assert_eq!(names[0], ("m".into(), Some("A".into())));
        assert_eq!(names[1], ("free".into(), None));
        assert_eq!(names[2], ("clone".into(), Some("A".into())));
    }

    #[test]
    fn extracts_calls_free_method_and_path() {
        let p = parse("fn f() { helper(1); x.method(2); Vec::with_capacity(3); Self::load(p); }\n");
        let calls: Vec<(&str, bool)> = p.fns[0]
            .calls
            .iter()
            .map(|c| (c.path.as_str(), c.method))
            .collect();
        assert!(calls.contains(&("helper", false)));
        assert!(calls.contains(&("method", true)));
        assert!(calls.contains(&("Self::load", false)));
        // Vec::with_capacity is an alloc hit, and also a call edge
        assert!(p.fns[0]
            .hits
            .iter()
            .any(|h| h.kind == HitKind::Alloc && h.token == "Vec::with_capacity"));
    }

    #[test]
    fn alloc_and_panic_hits_with_lines() {
        let src = "fn f(v: &[f64], o: Option<u32>) {\n    let a = v.to_vec();\n    let b: Vec<u32> = it.collect();\n    o.unwrap();\n    assert!(a.len() > 0);\n    let s = format!(\"x\");\n}\n";
        let p = parse(src);
        let h = &p.fns[0].hits;
        assert!(h
            .iter()
            .any(|x| x.kind == HitKind::Alloc && x.token == ".to_vec()" && x.line == 2));
        assert!(h
            .iter()
            .any(|x| x.kind == HitKind::Alloc && x.token == ".collect()" && x.line == 3));
        assert!(h
            .iter()
            .any(|x| x.kind == HitKind::Panic && x.token == ".unwrap()" && x.line == 4));
        assert!(h
            .iter()
            .any(|x| x.kind == HitKind::Panic && x.token == "assert!" && x.line == 5));
        assert!(h
            .iter()
            .any(|x| x.kind == HitKind::Alloc && x.token == "format!" && x.line == 6));
    }

    #[test]
    fn turbofish_collect_is_a_hit() {
        let p = parse("fn f() { let v = (0..4).collect::<Vec<u32>>(); }\n");
        assert!(p.fns[0]
            .hits
            .iter()
            .any(|x| x.kind == HitKind::Alloc && x.token == ".collect()"));
    }

    #[test]
    fn determinism_hits() {
        let src = "fn f() {\n    let m: HashMap<u32, u32> = make();\n    let t = Instant::now();\n    let z = a.mul_add(b, c);\n}\n";
        let p = parse(src);
        let h = &p.fns[0].hits;
        assert!(h
            .iter()
            .any(|x| x.kind == HitKind::Det && x.token == "HashMap" && x.line == 2));
        assert!(h
            .iter()
            .any(|x| x.kind == HitKind::Det && x.token == "Instant::now"));
        assert!(h
            .iter()
            .any(|x| x.kind == HitKind::Det && x.token == "mul_add"));
    }

    #[test]
    fn indexing_is_a_warning_hit_but_types_are_not() {
        let p = parse("fn f(v: &[f64; 4], i: usize) -> f64 { let x: [f64; 2] = [0.0; 2]; v[i] }\n");
        let idx: Vec<&Hit> = p.fns[0]
            .hits
            .iter()
            .filter(|h| h.kind == HitKind::Index)
            .collect();
        assert_eq!(idx.len(), 1, "{idx:?}");
    }

    #[test]
    fn lock_edges_and_guard_release() {
        let src = "\
fn f(a: &M, b: &M) {
    let ga = lock(&a.buf);
    let gb = lock(&b.bells);
    drop(ga);
    let gc = lock(&a.third);
}
";
        let p = parse(src);
        let e = &p.fns[0].lock_edges;
        assert!(e.iter().any(|(l, _, m, _)| l == "buf" && m == "bells"));
        // after drop(ga) only gb is held when third is taken
        assert!(e.iter().any(|(l, _, m, _)| l == "bells" && m == "third"));
        assert!(!e.iter().any(|(l, _, m, _)| l == "buf" && m == "third"));
    }

    #[test]
    fn method_lock_and_held_calls() {
        let src = "fn f(s: &S) {\n    let g = s.inner.lock();\n    helper(1);\n}\n";
        let p = parse(src);
        assert!(p.fns[0].locks.iter().any(|l| l.lock == "inner"));
        let call = p.fns[0].calls.iter().find(|c| c.path == "helper").unwrap();
        assert_eq!(call.holding, vec!["inner".to_string()]);
    }

    #[test]
    fn temporary_guard_does_not_hold() {
        let p = parse("fn f(d: &D) { lock(&d.bells).push_back(1); helper(); }\n");
        let call = p.fns[0].calls.iter().find(|c| c.path == "helper").unwrap();
        assert!(call.holding.is_empty());
    }

    #[test]
    fn wait_sites() {
        let src = "\
fn f(cv: &Condvar, g: G, rx: &Rx, t: &mut T, buf: &mut Vec<f64>) {
    let g = cv.wait(g);
    let m = rx.recv();
    let b = t.recv_into(buf);
    let c = t.recv_into_timeout(buf, None);
    let d = t.recv_into_timeout(buf, Some(dur));
    let e = cv.wait_timeout(g, dur);
}
";
        let p = parse(src);
        let whats: Vec<&str> = p.fns[0].waits.iter().map(|w| w.what).collect();
        assert_eq!(
            whats,
            vec![
                "Condvar::wait (no timeout)",
                "recv() (no timeout)",
                "recv_into (no timeout)",
                "recv_into_timeout(None)"
            ]
        );
    }

    #[test]
    fn cold_and_hot_tags() {
        let src = "\
#[cold]
fn cold_fn() {}

// lint: hot-path
#[inline]
fn hot_fn() {}
";
        let p = parse(src);
        assert!(p.fns[0].is_cold);
        assert!(!p.fns[0].tagged_hot);
        assert!(p.fns[1].tagged_hot);
        assert!(!p.fns[1].is_cold);
    }

    #[test]
    fn allows_with_and_without_justification() {
        let src = "fn f() {\n    // lint: allow(no-panic) — structural invariant, cannot fail\n    x.unwrap();\n    // lint: allow(float-eq)\n    y == 0.0;\n}\n";
        let p = parse(src);
        assert_eq!(p.allows.len(), 2);
        assert!(p.allows[0].justified);
        assert_eq!(p.allows[0].rule, "no-panic");
        assert!(!p.allows[1].justified);
    }

    #[test]
    fn nested_fn_bodies_not_double_attributed() {
        let src = "fn outer() {\n    fn inner() { x.unwrap(); }\n    inner();\n}\n";
        let p = parse(src);
        let outer = p.fns.iter().find(|f| f.name == "outer").unwrap();
        let inner = p.fns.iter().find(|f| f.name == "inner").unwrap();
        assert!(outer.hits.is_empty(), "{:?}", outer.hits);
        assert_eq!(inner.hits.len(), 1);
        assert!(outer.calls.iter().any(|c| c.path == "inner"));
    }

    #[test]
    fn match_arm_patterns_do_not_hit() {
        // `Some(x)` / `Bell::Msg(from)` in patterns look like calls but must
        // not produce construct hits (they resolve to nothing in the graph)
        let p = parse("fn f(b: Bell) { match b { Bell::Msg(from) => use_it(from), _ => {} } }\n");
        assert!(p.fns[0].hits.is_empty());
        assert!(p.fns[0].calls.iter().any(|c| c.path == "Bell::Msg"));
    }
}
