//! Shared command-line driver for the `lts-lint` binary and the
//! `cargo xtask lint` alias. Parses flags, runs the requested mode, prints
//! the human report, and returns the process exit code.

use crate::{analyze, build_model, run, Options, Tier};
use std::path::PathBuf;

pub const HELP: &str = "\
lts-lint — call-graph semantic lint for the wave-LTS workspace

USAGE:
    lts-lint [FLAGS]
    cargo xtask lint [FLAGS]

FLAGS:
    --root <dir>        workspace root (default: this source tree's root)
    --mode <mode>       check            run the lint (default)
                        graph-dump       print the call graph and verify it
                                         round-trips through its own parser
                        wire-fingerprint print the lint/wire.fingerprint
                                         content for the current wire shape
    --tier <tier>       all (default) | semantic | lexer
    --sarif <path>      also write diagnostics as SARIF 2.1.0 (self-validated)
    --verbose           print resolved root sets and reachability sizes
    --no-cache          ignore and do not write target/lint-parse.cache
    --help              this text

EXIT STATUS:
    0 on success / no errors; 1 on any error-severity diagnostic or failure.
    Warnings (e.g. hot-path-index) are reported but do not fail the gate.

ESCAPES:
    // lint: allow(<rule>) — <one-line justification>
    on the offending line or the line above. The justification is mandatory;
    every allow is counted in the summary. Roots and traversal stops live in
    lint/hotpaths.toml ([[hotpath]], [[kernel]], [[exclude]] + reason).
";

/// Default root: two levels above this crate's manifest.
fn default_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// Parse `args` (without the program/task name) and run. Returns the exit
/// code.
pub fn main(args: &[String]) -> i32 {
    let mut opts = Options::new(default_root());
    let mut mode = "check".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let (flag, inline) = match a.split_once('=') {
            Some((f, v)) => (f, Some(v.to_string())),
            None => (a.as_str(), None),
        };
        let value = |it: &mut std::slice::Iter<String>| -> Option<String> {
            inline.clone().or_else(|| it.next().cloned())
        };
        match flag {
            "--help" | "-h" => {
                print!("{HELP}");
                return 0;
            }
            "--root" => match value(&mut it) {
                Some(v) => opts.root = PathBuf::from(v),
                None => return usage_error("--root needs a value"),
            },
            "--mode" => match value(&mut it) {
                Some(v) => mode = v,
                None => return usage_error("--mode needs a value"),
            },
            "--tier" => match value(&mut it).as_deref() {
                Some("all") => opts.tier = Tier::All,
                Some("semantic") => opts.tier = Tier::Semantic,
                Some("lexer") => opts.tier = Tier::Lexer,
                _ => return usage_error("--tier must be all|semantic|lexer"),
            },
            "--sarif" => match value(&mut it) {
                Some(v) => opts.sarif = Some(PathBuf::from(v)),
                None => return usage_error("--sarif needs a path"),
            },
            "--verbose" | "-v" => opts.verbose = true,
            "--no-cache" => opts.no_cache = true,
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }
    match mode.as_str() {
        "check" => run_check(&opts),
        "graph-dump" => run_graph_dump(&opts),
        "wire-fingerprint" => run_wire_fingerprint(&opts),
        other => usage_error(&format!(
            "unknown mode `{other}` (check|graph-dump|wire-fingerprint)"
        )),
    }
}

fn usage_error(msg: &str) -> i32 {
    eprintln!("lts-lint: {msg}\n\n{HELP}");
    1
}

fn run_check(opts: &Options) -> i32 {
    match run(opts) {
        Ok(report) => {
            for line in &report.verbose_lines {
                eprintln!("lint: {line}");
            }
            for d in &report.diags {
                let tag = match d.severity {
                    crate::rules::Severity::Error => "",
                    crate::rules::Severity::Warning => "warning: ",
                };
                eprintln!("{tag}{d}");
                let chain = d.render_chain();
                if !chain.is_empty() {
                    eprintln!("{chain}");
                }
            }
            let n_allows: usize = report.allows.values().sum();
            let allow_detail = if n_allows == 0 {
                String::new()
            } else {
                let per: Vec<String> = report
                    .allows
                    .iter()
                    .map(|(r, n)| format!("{r}×{n}"))
                    .collect();
                format!(" ({})", per.join(", "))
            };
            eprintln!(
                "lint: {} files ({} cached), {} fns, {} call edges; {} error(s), {} warning(s), {} allow(s){}",
                report.n_files,
                report.n_cached,
                report.n_fns,
                report.n_edges,
                report.errors(),
                report.warnings(),
                n_allows,
                allow_detail
            );
            i32::from(report.errors() > 0)
        }
        Err(e) => {
            eprintln!("lint: {e}");
            1
        }
    }
}

/// `print!` panics on EPIPE (e.g. `lts-lint --mode graph-dump | head`);
/// a closed downstream reader is a normal way to consume a dump.
fn print_ignoring_pipe(text: &str) {
    use std::io::Write;
    let _ = std::io::stdout().write_all(text.as_bytes());
}

fn run_graph_dump(opts: &Options) -> i32 {
    match build_model(&opts.root, !opts.no_cache) {
        Ok(model) => {
            print_ignoring_pipe(&model.ws.dump());
            match model.ws.dump_round_trips() {
                Ok(()) => {
                    eprintln!(
                        "graph-dump: {} nodes, {} edges, round-trip ok",
                        model.ws.fns.len(),
                        model.ws.edges.len()
                    );
                    0
                }
                Err(e) => {
                    eprintln!("graph-dump: round-trip FAILED: {e}");
                    1
                }
            }
        }
        Err(e) => {
            eprintln!("graph-dump: {e}");
            1
        }
    }
}

fn run_wire_fingerprint(opts: &Options) -> i32 {
    match analyze::protocol::fingerprint_file_text(&opts.root) {
        Some(text) => {
            print_ignoring_pipe(&text);
            0
        }
        None => {
            eprintln!(
                "wire-fingerprint: no {} under --root",
                analyze::protocol::CODEC_REL
            );
            1
        }
    }
}
