//! The standalone lint driver (`cargo run -p lts-lint --bin lts-lint`).
//! Identical to `cargo xtask lint`, minus the task-name prefix.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match u8::try_from(lts_lint::cli::main(&args)) {
        Ok(code) => ExitCode::from(code),
        Err(_) => ExitCode::FAILURE,
    }
}
