//! Workspace task runner. Currently one task:
//!
//! ```text
//! cargo xtask lint [--root <dir>]
//! ```
//!
//! Runs the four in-house lint rules (see `lts_lint`) over the workspace
//! and exits nonzero on any diagnostic. The `xtask` alias lives in
//! `.cargo/config.toml`.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    let Some(task) = it.next() else {
        eprintln!("usage: cargo xtask lint [--root <dir>]");
        return ExitCode::FAILURE;
    };
    if task != "lint" {
        eprintln!("unknown task `{task}` (available: lint)");
        return ExitCode::FAILURE;
    }
    let mut root: Option<PathBuf> = None;
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => root = it.next().map(PathBuf::from),
            other => {
                eprintln!("unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    // default: the workspace containing this binary's source tree; under
    // `cargo xtask` the cwd is already the invocation directory, and cargo
    // sets CARGO_MANIFEST_DIR to crates/lint, two levels below the root.
    let root = root.unwrap_or_else(|| {
        let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        manifest
            .parent()
            .and_then(|p| p.parent())
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."))
    });
    match lts_lint::lint_workspace(&root) {
        Ok((n_files, diags)) => {
            if diags.is_empty() {
                println!("lint: {n_files} files checked, no violations");
                ExitCode::SUCCESS
            } else {
                for d in &diags {
                    eprintln!("{d}");
                }
                eprintln!("lint: {} violation(s) in {n_files} files", diags.len());
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("lint: I/O error: {e}");
            ExitCode::FAILURE
        }
    }
}
