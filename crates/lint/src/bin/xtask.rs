//! Workspace task runner. Currently one task:
//!
//! ```text
//! cargo xtask lint [FLAGS]
//! ```
//!
//! which is the `lts-lint` driver (see `lts_lint::cli::HELP` for the flag
//! set). The `xtask` alias lives in `.cargo/config.toml`.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(task) = args.first() else {
        eprintln!("usage: cargo xtask lint [flags] (--help for details)");
        return ExitCode::FAILURE;
    };
    if task != "lint" {
        eprintln!("unknown task `{task}` (available: lint)");
        return ExitCode::FAILURE;
    }
    match u8::try_from(lts_lint::cli::main(&args[1..])) {
        Ok(code) => ExitCode::from(code),
        Err(_) => ExitCode::FAILURE,
    }
}
