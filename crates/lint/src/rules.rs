//! The four lint rules.
//!
//! Every rule works on a [`Scrubbed`] view pair, reports `file:line`
//! diagnostics, and honours a per-line escape hatch: a comment
//! `// lint: allow(<rule>)` on the flagged line or the line directly above
//! suppresses that rule there (use sparingly, with a justification in the
//! same comment).

use crate::config::HotPathConfig;
use crate::source::{line_of, Scrubbed};
use std::fmt;
use std::ops::Range;
use std::path::{Path, PathBuf};

pub const RULE_HOT_PATH: &str = "hot-path-alloc";
pub const RULE_NO_PANIC: &str = "no-panic";
pub const RULE_UNSAFE: &str = "unsafe-safety";
pub const RULE_FLOAT_EQ: &str = "float-eq";
// semantic (call-graph) tier rules, reported through the same Diagnostic
pub const RULE_HOT_PANIC: &str = "hot-path-panic";
pub const RULE_HOT_INDEX: &str = "hot-path-index";
pub const RULE_DETERMINISM: &str = "determinism";
pub const RULE_LOCK_ORDER: &str = "lock-order";
pub const RULE_LOCK_BLOCK: &str = "lock-block";
pub const RULE_PROTOCOL: &str = "protocol";
pub const RULE_CONFIG: &str = "config";
pub const RULE_ALLOW_AUDIT: &str = "allow-audit";

/// Every rule an `// lint: allow(<rule>)` escape may name.
pub const ALL_RULES: &[&str] = &[
    RULE_HOT_PATH,
    RULE_NO_PANIC,
    RULE_UNSAFE,
    RULE_FLOAT_EQ,
    RULE_HOT_PANIC,
    RULE_HOT_INDEX,
    RULE_DETERMINISM,
    RULE_LOCK_ORDER,
    RULE_LOCK_BLOCK,
    RULE_PROTOCOL,
    RULE_CONFIG,
    RULE_ALLOW_AUDIT,
];

/// Diagnostic severity: only `Error` fails the gate; `Warning` is reported
/// in the summary (and SARIF) without failing CI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    Error,
    Warning,
}

/// One violation, printable as `path:line: [rule] message`. Semantic-tier
/// diagnostics additionally carry a blame chain (root -> ... -> offender).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub file: PathBuf,
    pub line: usize,
    pub rule: &'static str,
    pub msg: String,
    pub severity: Severity,
    pub chain: Vec<crate::graph::BlameHop>,
}

impl Diagnostic {
    pub fn new(
        file: impl Into<PathBuf>,
        line: usize,
        rule: &'static str,
        msg: String,
    ) -> Diagnostic {
        Diagnostic {
            file: file.into(),
            line,
            rule,
            msg,
            severity: Severity::Error,
            chain: Vec::new(),
        }
    }

    pub fn warning(
        file: impl Into<PathBuf>,
        line: usize,
        rule: &'static str,
        msg: String,
    ) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            ..Diagnostic::new(file, line, rule, msg)
        }
    }

    /// Render the blame chain as indented continuation lines.
    pub fn render_chain(&self) -> String {
        if self.chain.is_empty() {
            return String::new();
        }
        let hops: Vec<String> = self
            .chain
            .iter()
            .map(|h| format!("{} ({}:{})", h.what, h.file, h.line))
            .collect();
        format!("    blame: {}", hops.join(" -> "))
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.msg
        )
    }
}

/// Calls the hot-path policy bans: anything that heap-allocates or clones
/// on the per-element path. Token patterns, matched against scrubbed code.
const ALLOC_TOKENS: &[&str] = &[
    "Vec::new",
    "vec!",
    ".to_vec()",
    ".clone()",
    ".collect()",
    ".collect::",
    "Box::new",
    "String::new",
    ".to_string()",
    ".to_owned()",
    "with_capacity",
    "format!",
];

const PANIC_TOKENS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

/// `lint: allow(<rule>)` on the same or previous line.
fn allowed(comment_lines: &[&str], line0: usize, rule: &str) -> bool {
    let pat = format!("lint: allow({rule})");
    let here = comment_lines.get(line0).is_some_and(|l| l.contains(&pat));
    let above = line0 > 0 && comment_lines[line0 - 1].contains(&pat);
    here || above
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Word-boundary occurrences of `word` in `text` (char offsets).
fn word_positions(text: &str, word: &str) -> Vec<usize> {
    let cs: Vec<char> = text.chars().collect();
    let w: Vec<char> = word.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i + w.len() <= cs.len() {
        if cs[i..i + w.len()] == w[..]
            && (i == 0 || !is_ident(cs[i - 1]))
            && (i + w.len() == cs.len() || !is_ident(cs[i + w.len()]))
        {
            out.push(i);
        }
        i += 1;
    }
    out
}

/// A function item found in scrubbed code: name, the line its `fn` token is
/// on (0-based), and the char range of its `{ … }` body.
#[derive(Debug)]
pub struct FnSpan {
    pub name: String,
    pub fn_line0: usize,
    pub body: Range<usize>,
}

/// Find all function items with bodies. Token-level: `fn <ident> … {` with
/// the first `{` at paren depth 0 taken as the body opener; trait-method
/// declarations (ending in `;`) are skipped.
pub fn functions(code: &str) -> Vec<FnSpan> {
    let cs: Vec<char> = code.chars().collect();
    let mut out = Vec::new();
    for start in word_positions(code, "fn") {
        // identifier after `fn`
        let mut j = start + 2;
        while j < cs.len() && cs[j].is_whitespace() {
            j += 1;
        }
        let name_start = j;
        while j < cs.len() && is_ident(cs[j]) {
            j += 1;
        }
        if j == name_start {
            continue; // `fn` of a closure type like `impl Fn(...)` — no name
        }
        let name: String = cs[name_start..j].iter().collect();
        // scan to body `{` at paren depth 0, or `;` (no body)
        let mut depth = 0i32;
        let mut body_open = None;
        while j < cs.len() {
            match cs[j] {
                '(' | '[' => depth += 1,
                ')' | ']' => depth -= 1,
                '{' if depth == 0 => {
                    body_open = Some(j);
                    break;
                }
                ';' if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(open) = body_open else { continue };
        let mut brace = 0i32;
        let mut k = open;
        while k < cs.len() {
            match cs[k] {
                '{' => brace += 1,
                '}' => {
                    brace -= 1;
                    if brace == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        out.push(FnSpan {
            name,
            fn_line0: line_of(code, start) - 1,
            body: open..k.min(cs.len()),
        });
    }
    out
}

/// How a marker must appear in a comment line for [`block_above_contains`].
enum Match {
    /// Anywhere in the comment text (Safety sections in prose docs).
    Contains,
    /// The whole trimmed comment line must start with the marker — so prose
    /// that merely *mentions* `// lint: hot-path` (like this lint's own
    /// docs) does not tag the function below it.
    LinePrefix,
}

/// Does the contiguous comment/attribute block directly above line
/// `fn_line0` contain `marker`?
fn block_above_contains(
    code_lines: &[&str],
    comment_lines: &[&str],
    fn_line0: usize,
    marker: &str,
    how: Match,
) -> bool {
    let mut l = fn_line0;
    while l > 0 {
        l -= 1;
        let code_t = code_lines.get(l).map_or("", |s| s.trim());
        let com_t = comment_lines.get(l).map_or("", |s| s.trim());
        let hit = match how {
            Match::Contains => com_t.contains(marker),
            Match::LinePrefix => com_t.starts_with(marker),
        };
        if hit {
            return true;
        }
        let is_attr = code_t.starts_with("#[") || code_t.starts_with("#![");
        let is_comment_only = code_t.is_empty() && !com_t.is_empty();
        if !(is_attr || is_comment_only) {
            return false; // blank line or unrelated code ends the block
        }
    }
    false
}

/// Rule 1: no allocation in hot-path functions (tagged inline with
/// `// lint: hot-path` or listed in `lint/hotpaths.toml`).
pub fn check_hot_path(
    file: &Path,
    rel: &str,
    s: &Scrubbed,
    cfg: &HotPathConfig,
    diags: &mut Vec<Diagnostic>,
) {
    let code_lines = s.code_lines();
    let comment_lines = s.comment_lines();
    let cs: Vec<char> = s.code.chars().collect();
    for f in functions(&s.code) {
        let tagged = block_above_contains(
            &code_lines,
            &comment_lines,
            f.fn_line0,
            "// lint: hot-path",
            Match::LinePrefix,
        );
        let listed = cfg.contains(rel, &f.name);
        if !tagged && !listed {
            continue;
        }
        let body: String = cs[f.body.clone()].iter().collect();
        for tok in ALLOC_TOKENS {
            let mut from = 0;
            while let Some(p) = body[from..].find(tok) {
                let pos = from + p;
                let line0 = line_of(&s.code, f.body.start) - 1 + line_of(&body, pos) - 1;
                if !allowed(&comment_lines, line0, RULE_HOT_PATH) {
                    diags.push(Diagnostic::new(
                        file,
                        line0 + 1,
                        RULE_HOT_PATH,
                        format!("`{}` allocates in hot-path fn `{}`", tok, f.name),
                    ));
                }
                from = pos + tok.len();
            }
        }
    }
}

/// Rule 2: no `unwrap`/`expect`/`panic!` family in non-test code of the
/// crates this rule is scoped to (`lts-runtime`, `lts-sem`).
pub fn check_no_panic(file: &Path, s: &Scrubbed, diags: &mut Vec<Diagnostic>) {
    let comment_lines = s.comment_lines();
    for (line0, line) in s.code.lines().enumerate() {
        for tok in PANIC_TOKENS {
            if line.contains(tok) && !allowed(&comment_lines, line0, RULE_NO_PANIC) {
                diags.push(Diagnostic::new(
                    file,
                    line0 + 1,
                    RULE_NO_PANIC,
                    format!("`{tok}` in non-test code (return a Result instead)"),
                ));
            }
        }
    }
}

/// Rule 3: every `unsafe` must carry a justification. Blocks need a
/// `SAFETY:` comment on the same line or within the 5 lines above;
/// `unsafe fn`/`unsafe impl`/`unsafe trait` items accept a `Safety` section
/// anywhere in their attached doc block.
pub fn check_unsafe(file: &Path, s: &Scrubbed, diags: &mut Vec<Diagnostic>) {
    let code_lines = s.code_lines();
    let comment_lines = s.comment_lines();
    let cs: Vec<char> = s.code.chars().collect();
    for pos in word_positions(&s.code, "unsafe") {
        let line0 = line_of(&s.code, pos) - 1;
        if allowed(&comment_lines, line0, RULE_UNSAFE) {
            continue;
        }
        // item or block?
        let mut j = pos + "unsafe".len();
        while j < cs.len() && cs[j].is_whitespace() {
            j += 1;
        }
        let rest: String = cs[j..cs.len().min(j + 6)].iter().collect();
        let is_item =
            rest.starts_with("fn") || rest.starts_with("impl") || rest.starts_with("trait");
        let justified = if is_item {
            block_above_contains(
                &code_lines,
                &comment_lines,
                line0,
                "SAFETY",
                Match::Contains,
            ) || block_above_contains(
                &code_lines,
                &comment_lines,
                line0,
                "Safety",
                Match::Contains,
            )
        } else {
            let lo = line0.saturating_sub(5);
            (lo..=line0).any(|l| comment_lines.get(l).is_some_and(|c| c.contains("SAFETY")))
        };
        if !justified {
            diags.push(Diagnostic::new(
                file,
                line0 + 1,
                RULE_UNSAFE,
                if is_item {
                    "`unsafe` item without a Safety section in its docs".into()
                } else {
                    "`unsafe` block without a preceding `// SAFETY:` comment".into()
                },
            ));
        }
    }
}

/// Is `tok` a float-typed token: a numeric literal with a `.` or exponent,
/// an `f64`/`f32` suffix, or an `f64::`/`f32::` associated const?
fn float_token(tok: &str) -> bool {
    if tok.is_empty() {
        return false;
    }
    if tok.starts_with("f64::") || tok.starts_with("f32::") {
        return true;
    }
    let c0 = tok.chars().next().unwrap_or(' ');
    if !c0.is_ascii_digit() {
        return false;
    }
    if tok.starts_with("0x") || tok.starts_with("0b") || tok.starts_with("0o") {
        return false;
    }
    tok.contains('.') || tok.contains("f64") || tok.contains("f32") || tok.contains('e')
}

/// Rule 4: no `==`/`!=` against a float literal (compare `to_bits()`, use a
/// tolerance, or annotate an exact-zero guard with `lint: allow(float-eq)`).
/// Type inference is out of reach for a lexical lint, so this flags the
/// decidable case: a floating-point *literal* (or `f64::` const) as either
/// operand.
pub fn check_float_eq(file: &Path, s: &Scrubbed, diags: &mut Vec<Diagnostic>) {
    let comment_lines = s.comment_lines();
    for (line0, line) in s.code.lines().enumerate() {
        if line.contains(".to_bits()") {
            continue;
        }
        let cs: Vec<char> = line.chars().collect();
        let mut i = 0;
        while i + 1 < cs.len() {
            let two: String = cs[i..i + 2].iter().collect();
            let is_cmp = (two == "==" || two == "!=")
                && (i == 0 || !matches!(cs[i - 1], '=' | '!' | '<' | '>' | '&' | '|'))
                && (i + 2 >= cs.len() || cs[i + 2] != '=');
            if is_cmp {
                // right operand token
                let mut r = i + 2;
                while r < cs.len() && cs[r] == ' ' {
                    r += 1;
                }
                if r < cs.len() && (cs[r] == '-' || cs[r] == '&') {
                    r += 1;
                }
                let rs = r;
                while r < cs.len() && (is_ident(cs[r]) || cs[r] == '.' || cs[r] == ':') {
                    r += 1;
                }
                let right: String = cs[rs..r].iter().collect();
                // left operand token
                let mut l = i;
                while l > 0 && cs[l - 1] == ' ' {
                    l -= 1;
                }
                let le = l;
                while l > 0 && (is_ident(cs[l - 1]) || cs[l - 1] == '.' || cs[l - 1] == ':') {
                    l -= 1;
                }
                let left: String = cs[l..le].iter().collect();
                if (float_token(&right) || float_token(&left))
                    && !allowed(&comment_lines, line0, RULE_FLOAT_EQ)
                {
                    diags.push(Diagnostic::new(
                        file,
                        line0 + 1,
                        RULE_FLOAT_EQ,
                        format!(
                            "float `{two}` comparison against `{}`",
                            if float_token(&right) { &right } else { &left }
                        ),
                    ));
                }
                i += 2;
                continue;
            }
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diags_for(src: &str, rule: &str) -> Vec<Diagnostic> {
        let s = Scrubbed::new(src);
        let mut d = Vec::new();
        let p = Path::new("x.rs");
        match rule {
            RULE_NO_PANIC => check_no_panic(p, &s, &mut d),
            RULE_UNSAFE => check_unsafe(p, &s, &mut d),
            RULE_FLOAT_EQ => check_float_eq(p, &s, &mut d),
            RULE_HOT_PATH => check_hot_path(p, "x.rs", &s, &HotPathConfig::default(), &mut d),
            _ => unreachable!(),
        }
        d
    }

    #[test]
    fn hot_path_flags_alloc_in_tagged_fn_only() {
        let src = "\
// lint: hot-path
fn hot(v: &[f64]) -> Vec<f64> {
    v.to_vec()
}

fn cold(v: &[f64]) -> Vec<f64> {
    v.to_vec()
}
";
        let d = diags_for(src, RULE_HOT_PATH);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 3);
        assert!(d[0].msg.contains("hot"));
    }

    #[test]
    fn hot_path_tag_works_through_attributes() {
        let src = "\
// lint: hot-path
#[inline]
#[allow(clippy::too_many_arguments)]
fn hot() {
    let v: Vec<u32> = (0..4).collect();
    let _ = v;
}
";
        let d = diags_for(src, RULE_HOT_PATH);
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn hot_path_config_listing() {
        let cfg = HotPathConfig {
            hot: vec![("a/b.rs".into(), "listed".into())],
            ..HotPathConfig::default()
        };
        let s = Scrubbed::new("fn listed() { x.clone(); }\nfn other() { y.clone(); }\n");
        let mut d = Vec::new();
        check_hot_path(Path::new("a/b.rs"), "a/b.rs", &s, &cfg, &mut d);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].msg.contains("listed"));
    }

    #[test]
    fn no_panic_skips_tests_strings_and_allows() {
        let src = "\
fn f(x: Option<u32>) -> u32 {
    let s = \"don't .unwrap() me\";
    // lint: allow(no-panic) — structural invariant, cannot fail
    x.expect(s)
}
fn g(x: Option<u32>) -> u32 {
    x.unwrap()
}
#[cfg(test)]
mod tests {
    fn t() { None::<u32>.unwrap(); }
}
";
        let d = diags_for(src, RULE_NO_PANIC);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 7);
    }

    #[test]
    fn unsafe_block_needs_safety_comment() {
        let bad = "fn f(p: *mut u8) { unsafe { *p = 0; } }\n";
        assert_eq!(diags_for(bad, RULE_UNSAFE).len(), 1);
        let good = "fn f(p: *mut u8) {\n    // SAFETY: p is valid\n    unsafe { *p = 0; }\n}\n";
        assert!(diags_for(good, RULE_UNSAFE).is_empty());
    }

    #[test]
    fn unsafe_item_accepts_doc_safety_section() {
        let good = "\
/// Does a thing.
///
/// # Safety
///
/// Caller promises the pointer is live.
unsafe fn f(p: *mut u8) { let _ = p; }
";
        assert!(diags_for(good, RULE_UNSAFE).is_empty());
        let bad = "unsafe fn f(p: *mut u8) { let _ = p; }\n";
        assert_eq!(diags_for(bad, RULE_UNSAFE).len(), 1);
    }

    /// The SIMD intrinsics idiom (`crates/sem/src/simd.rs`): a
    /// `#[target_feature]` kernel is an `unsafe fn` whose Safety section
    /// states the CPU-support precondition, and each dispatch call site
    /// carries a `// SAFETY:` comment citing the runtime detection. The
    /// attribute between docs and `unsafe fn` must not break doc-block
    /// attachment, and macro-generated bodies are scanned like any other.
    #[test]
    fn unsafe_target_feature_kernel_idiom() {
        let good = "\
/// Batched stiffness kernel.
///
/// # Safety
///
/// Caller must ensure the CPU supports this instruction set (runtime
/// dispatch via `is_x86_feature_detected!`).
#[target_feature(enable = \"avx2\")]
#[inline]
pub unsafe fn kernel(x: *const f64) { let _ = x; }

fn dispatch(x: *const f64, supported: bool) {
    if supported {
        // SAFETY: `supported` is the cached is_x86_feature_detected!
        // result for avx2, the only precondition `kernel` documents.
        unsafe { kernel(x) }
    }
}
";
        assert!(diags_for(good, RULE_UNSAFE).is_empty());
        // the attribute alone is not a justification: no Safety docs → diag
        let bad_fn = "\
#[target_feature(enable = \"avx2\")]
pub unsafe fn kernel(x: *const f64) { let _ = x; }
";
        assert_eq!(diags_for(bad_fn, RULE_UNSAFE).len(), 1);
        // a bare dispatch call without the SAFETY citation → diag
        let bad_call = "\
fn dispatch(x: *const f64, supported: bool) {
    if supported {
        unsafe { ext(x) }
    }
}
";
        assert_eq!(diags_for(bad_call, RULE_UNSAFE).len(), 1);
    }

    #[test]
    fn float_eq_literal_comparisons() {
        assert_eq!(
            diags_for("fn f(x: f64) -> bool { x == 0.0 }\n", RULE_FLOAT_EQ).len(),
            1
        );
        assert_eq!(
            diags_for("fn f(x: f64) -> bool { 1.5 != x }\n", RULE_FLOAT_EQ).len(),
            1
        );
        assert_eq!(
            diags_for(
                "fn f(x: f64) -> bool { x == f64::INFINITY }\n",
                RULE_FLOAT_EQ
            )
            .len(),
            1
        );
        // integers, to_bits, and annotated exact-zero guards pass
        assert!(diags_for("fn f(x: usize) -> bool { x == 0 }\n", RULE_FLOAT_EQ).is_empty());
        assert!(diags_for(
            "fn f(x: f64) -> bool { x.to_bits() == 0.0f64.to_bits() }\n",
            RULE_FLOAT_EQ
        )
        .is_empty());
        assert!(diags_for(
            "fn f(x: f64) -> bool {\n    // lint: allow(float-eq) — exact zero guard\n    x == 0.0\n}\n",
            RULE_FLOAT_EQ
        )
        .is_empty());
        // `<=`, `>=`, `=>`, `..=` must not trip the detector
        assert!(diags_for(
            "fn f(x: f64) -> bool { x <= 0.5 && x >= -1.0 }\n",
            RULE_FLOAT_EQ
        )
        .is_empty());
    }

    #[test]
    fn function_extraction_finds_bodies() {
        let code = Scrubbed::new("fn a() { 1; }\ntrait T { fn decl(&self); }\nfn b() {}\n");
        let fns = functions(&code.code);
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
    }
}
