//! End-to-end fixtures for the semantic tier: each seeded violation must
//! produce exactly one diagnostic with the expected blame chain, and a
//! clean workspace must produce none. Every test drives the real
//! [`lts_lint::run`] entry point against a throwaway workspace under the
//! system temp dir — the same code path `cargo xtask lint` takes.

use lts_lint::analyze::protocol::fingerprint_file_text;
use lts_lint::rules::{Diagnostic, Severity};
use lts_lint::{run, Options, Report, Tier};
use std::fs;
use std::path::{Path, PathBuf};

/// A throwaway workspace rooted in the system temp dir; removed on drop.
struct Fixture {
    root: PathBuf,
}

impl Fixture {
    fn new(name: &str) -> Fixture {
        let root =
            std::env::temp_dir().join(format!("lts-lint-fixture-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).expect("create fixture root");
        Fixture { root }
    }

    fn write(&self, rel: &str, text: &str) {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().expect("rel has a parent")).expect("mkdir");
        fs::write(path, text).expect("write fixture file");
    }

    fn run(&self, tier: Tier) -> Report {
        let opts = Options {
            tier,
            no_cache: true,
            ..Options::new(&self.root)
        };
        run(&opts).expect("lint run")
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

/// The chain's human labels, for compact assertions.
fn chain(d: &Diagnostic) -> Vec<&str> {
    d.chain.iter().map(|h| h.what.as_str()).collect()
}

fn the_one(report: &Report) -> &Diagnostic {
    assert_eq!(
        report.diags.len(),
        1,
        "expected exactly one diagnostic, got: {:#?}",
        report.diags
    );
    &report.diags[0]
}

#[test]
fn transitive_alloc_two_calls_deep_is_blamed_to_the_root() {
    let fx = Fixture::new("alloc");
    fx.write(
        "crates/core/src/lib.rs",
        "pub fn root(x: &mut f64) { mid(x); }\n\
         fn mid(x: &mut f64) { leaf(x); }\n\
         fn leaf(_x: &mut f64) { let v = vec![0.0; 4]; use_it(&v); }\n\
         fn use_it(_v: &Vec<f64>) {}\n",
    );
    fx.write(
        "lint/hotpaths.toml",
        "[[hotpath]]\nfile = \"crates/core/src/lib.rs\"\nfunction = \"root\"\n",
    );
    let report = fx.run(Tier::Semantic);
    let d = the_one(&report);
    assert_eq!(d.rule, "hot-path-alloc");
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.file, Path::new("crates/core/src/lib.rs"));
    assert_eq!(d.line, 3);
    assert_eq!(chain(d), vec!["root", "mid", "leaf", "`vec!`"]);
}

#[test]
fn transitive_panic_is_an_error_with_a_chain() {
    let fx = Fixture::new("panic");
    fx.write(
        "crates/core/src/lib.rs",
        "pub fn root(o: Option<u32>) { helper(o); }\n\
         fn helper(o: Option<u32>) { deeper(o); }\n\
         fn deeper(o: Option<u32>) -> u32 { o.unwrap() }\n",
    );
    fx.write(
        "lint/hotpaths.toml",
        "[[hotpath]]\nfile = \"crates/core/src/lib.rs\"\nfunction = \"root\"\n",
    );
    let report = fx.run(Tier::Semantic);
    let d = the_one(&report);
    assert_eq!(d.rule, "hot-path-panic");
    assert_eq!(d.line, 3);
    assert_eq!(chain(d), vec!["root", "helper", "deeper", "`.unwrap()`"]);
}

#[test]
fn hashmap_reachable_from_kernel_root_breaks_determinism() {
    let fx = Fixture::new("det");
    fx.write(
        "crates/sem/src/kernel.rs",
        "pub fn kernel(x: &mut f64) { helper(x); }\n\
         fn helper(_x: &mut f64) { let m: HashMap<u32, u32> = make(); touch(&m); }\n\
         fn touch(_m: &HashMap<u32, u32>) {}\n",
    );
    fx.write(
        "lint/hotpaths.toml",
        "[[kernel]]\nfile = \"crates/sem/src/kernel.rs\"\nfunction = \"kernel\"\n",
    );
    let report = fx.run(Tier::Semantic);
    // `touch`'s HashMap type is also reachable, so assert on the first;
    // both findings are the same hazard class
    assert!(report.errors() >= 1, "{:#?}", report.diags);
    let d = report
        .diags
        .iter()
        .find(|d| d.line == 2)
        .expect("diagnostic at the HashMap line");
    assert_eq!(d.rule, "determinism");
    assert_eq!(chain(d), vec!["kernel", "helper", "`HashMap`"]);
}

#[test]
fn opposite_lock_orders_in_transport_are_a_cycle() {
    let fx = Fixture::new("lockorder");
    fx.write(
        "crates/runtime/src/transport/ring.rs",
        "pub fn one(m: &M) {\n\
         \x20   let ga = m.alpha.lock();\n\
         \x20   let gb = m.beta.lock();\n\
         \x20   drop(gb);\n\
         \x20   drop(ga);\n\
         }\n\
         pub fn two(m: &M) {\n\
         \x20   let gb = m.beta.lock();\n\
         \x20   let ga = m.alpha.lock();\n\
         \x20   drop(ga);\n\
         \x20   drop(gb);\n\
         }\n",
    );
    let report = fx.run(Tier::Semantic);
    let d = the_one(&report);
    assert_eq!(d.rule, "lock-order");
    assert!(
        d.msg.contains("alpha") && d.msg.contains("beta"),
        "{}",
        d.msg
    );
    assert_eq!(d.chain.len(), 2, "one hop per edge of the 2-cycle");
}

#[test]
fn unbounded_wait_reachable_from_hot_root_is_flagged() {
    let fx = Fixture::new("lockblock");
    fx.write(
        "crates/runtime/src/transport/mod.rs",
        "pub fn pump(cv: &Condvar, g: G) { let _g = cv.wait(g); }\n",
    );
    fx.write(
        "lint/hotpaths.toml",
        "[[hotpath]]\nfile = \"crates/runtime/src/transport/mod.rs\"\nfunction = \"pump\"\n",
    );
    let report = fx.run(Tier::Semantic);
    let d = the_one(&report);
    assert_eq!(d.rule, "lock-block");
    assert!(d.msg.contains("Condvar::wait"), "{}", d.msg);
    assert_eq!(chain(d), vec!["pump", "`Condvar::wait (no timeout)`"]);
}

/// A minimal but complete codec: every variant has kind/encode/decode arms
/// and the header guard admits exactly the declared kinds.
const CODEC_OK: &str = "\
pub const VERSION: u32 = 1;

pub enum Frame {
    Halo { payload: f64 },
    Done,
}

impl Frame {
    pub fn kind(&self) -> u8 {
        match self {
            Frame::Halo { .. } => 1,
            Frame::Done => 2,
        }
    }
}

pub fn encode(f: &Frame) {
    match f {
        Frame::Halo { .. } => {}
        Frame::Done => {}
    }
}

pub fn decode_body(kind: u8) {
    match kind {
        1 => {}
        2 => {}
        _ => {}
    }
}

pub fn decode_header(kind: u8) -> bool {
    if kind > 2 {
        return false;
    }
    true
}
";

const CODEC_REL: &str = "crates/runtime/src/transport/codec.rs";

fn commit_fingerprint(fx: &Fixture) {
    let text = fingerprint_file_text(&fx.root).expect("codec present");
    fx.write("lint/wire.fingerprint", &text);
}

#[test]
fn complete_codec_with_committed_fingerprint_is_clean() {
    let fx = Fixture::new("protocol-clean");
    fx.write(CODEC_REL, CODEC_OK);
    commit_fingerprint(&fx);
    let report = fx.run(Tier::Semantic);
    assert_eq!(report.diags.len(), 0, "{:#?}", report.diags);
}

#[test]
fn missing_decode_arm_is_exactly_one_protocol_error() {
    let fx = Fixture::new("protocol-arm");
    // drop Done's `2 =>` decode arm; the wire *shape* (variants, kinds,
    // version) is unchanged, so the committed fingerprint still matches
    fx.write(CODEC_REL, &CODEC_OK.replace("        2 => {}\n", ""));
    commit_fingerprint(&fx);
    let report = fx.run(Tier::Semantic);
    let d = the_one(&report);
    assert_eq!(d.rule, "protocol");
    assert!(
        d.msg
            .contains("`Frame::Done` (kind 2) has no `decode_body` arm"),
        "{}",
        d.msg
    );
    let c = chain(d);
    assert_eq!(c.len(), 2);
    assert!(c[0].contains("Frame::Done declared"));
    assert!(c[1].contains("no `2 =>` arm"));
}

#[test]
fn wire_shape_change_without_version_bump_is_rejected() {
    let fx = Fixture::new("protocol-bump");
    fx.write(CODEC_REL, CODEC_OK);
    commit_fingerprint(&fx);
    assert_eq!(fx.run(Tier::Semantic).errors(), 0);

    // grow Halo's wire shape without touching VERSION
    let changed = CODEC_OK.replace("Halo { payload: f64 }", "Halo { payload: f64, seq: u32 }");
    fx.write(CODEC_REL, &changed);
    let report = fx.run(Tier::Semantic);
    let d = the_one(&report);
    assert_eq!(d.rule, "protocol");
    assert!(
        d.msg.contains("without bumping `codec::VERSION`"),
        "{}",
        d.msg
    );

    // bumping the version and refreshing the fingerprint settles it
    fx.write(
        CODEC_REL,
        &changed.replace("VERSION: u32 = 1", "VERSION: u32 = 2"),
    );
    commit_fingerprint(&fx);
    assert_eq!(fx.run(Tier::Semantic).errors(), 0);
}

#[test]
fn stale_hotpaths_entry_is_a_config_error_at_its_line() {
    let fx = Fixture::new("stale");
    fx.write("crates/core/src/lib.rs", "pub fn real() {}\n");
    fx.write(
        "lint/hotpaths.toml",
        "# roots\n[[hotpath]]\nfile = \"crates/core/src/lib.rs\"\nfunction = \"gone\"\n",
    );
    let report = fx.run(Tier::Semantic);
    let d = the_one(&report);
    assert_eq!(d.rule, "config");
    assert_eq!(d.file, Path::new("lint/hotpaths.toml"));
    assert_eq!(d.line, 2, "blame points at the [[hotpath]] header");
    assert!(d.msg.contains("no function `gone`"), "{}", d.msg);
}

#[test]
fn justified_allow_suppresses_and_is_counted() {
    let fx = Fixture::new("allow");
    fx.write(
        "crates/core/src/lib.rs",
        "pub fn root() {\n\
         \x20   // lint: allow(hot-path-alloc) — one-time table build, amortized\n\
         \x20   let v = vec![0.0; 4];\n\
         \x20   use_it(&v);\n\
         }\n\
         fn use_it(_v: &Vec<f64>) {}\n",
    );
    fx.write(
        "lint/hotpaths.toml",
        "[[hotpath]]\nfile = \"crates/core/src/lib.rs\"\nfunction = \"root\"\n",
    );
    let report = fx.run(Tier::Semantic);
    assert_eq!(report.errors(), 0, "{:#?}", report.diags);
    assert_eq!(report.allows.get("hot-path-alloc"), Some(&1));
}

#[test]
fn unjustified_allow_is_itself_an_error() {
    let fx = Fixture::new("allow-audit");
    fx.write(
        "crates/core/src/lib.rs",
        "pub fn f(x: f64) -> bool {\n\
         \x20   // lint: allow(float-eq)\n\
         \x20   x == 0.0\n\
         }\n",
    );
    let report = fx.run(Tier::Semantic);
    let d = the_one(&report);
    assert_eq!(d.rule, "allow-audit");
    assert!(d.msg.contains("unjustified"), "{}", d.msg);
}

#[test]
fn clean_workspace_produces_zero_diagnostics() {
    let fx = Fixture::new("clean");
    fx.write(
        "crates/core/src/lib.rs",
        "pub fn root(x: &mut f64, y: f64) { *x = step(*x, y); }\n\
         fn step(x: f64, y: f64) -> f64 { x + y }\n",
    );
    fx.write(
        "lint/hotpaths.toml",
        "[[hotpath]]\nfile = \"crates/core/src/lib.rs\"\nfunction = \"root\"\n",
    );
    let report = fx.run(Tier::All);
    assert_eq!(report.diags.len(), 0, "{:#?}", report.diags);
    assert_eq!(report.n_fns, 2);
    assert_eq!(report.n_edges, 1);
}

#[test]
fn exclude_entry_stops_traversal_into_amortized_setup() {
    let fx = Fixture::new("exclude");
    fx.write(
        "crates/core/src/lib.rs",
        "pub fn root(x: &mut f64) { setup(x); }\n\
         fn setup(_x: &mut f64) { let v = vec![0.0; 4]; use_it(&v); }\n\
         fn use_it(_v: &Vec<f64>) {}\n",
    );
    fx.write(
        "lint/hotpaths.toml",
        "[[hotpath]]\nfile = \"crates/core/src/lib.rs\"\nfunction = \"root\"\n\n\
         [[exclude]]\nfile = \"crates/core/src/lib.rs\"\nfunction = \"setup\"\nreason = \"amortized: runs once before the first step\"\n",
    );
    let report = fx.run(Tier::Semantic);
    assert_eq!(report.diags.len(), 0, "{:#?}", report.diags);
}
