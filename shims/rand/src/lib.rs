//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no vendored registry, so
//! the workspace replaces its registry dependencies with these API-compatible
//! subsets (see `shims/README.md`). Only the surface the workspace actually
//! uses is provided: [`RngCore`], [`Rng::gen_range`], [`SeedableRng`] and
//! [`seq::SliceRandom::shuffle`]. The generators are deterministic and
//! portable, which is all the partitioners and tests require — they are NOT
//! the upstream bit streams and are not cryptographic.

/// Core of every generator: a 64-bit output function.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types that can be sampled uniformly from a range by an [`RngCore`].
pub trait SampleUniform: Sized + Copy {
    /// Uniform in `[lo, hi)`; callers guarantee `lo < hi`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                // multiply-shift bounded sampling; bias is < 2^-64, far below
                // anything the partition heuristics or tests can observe
                let x = rng.next_u64() as u128;
                lo.wrapping_add(((x * span) >> 64) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + (hi - lo) * rng.next_f64()
    }
}

/// Range argument of [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

macro_rules! impl_sample_range_inclusive {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let x = rng.next_u64() as u128;
                lo.wrapping_add(((x * span) >> 64) as $t)
            }
        }
    )*};
}
impl_sample_range_inclusive!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction, as in upstream `rand`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 — the canonical 64-bit seeding/stream generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        SplitMix64::new(seed)
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (Fisher–Yates), as in `rand::seq`.
    pub trait SliceRandom {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn gen_range_is_in_bounds() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..10_000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let f: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitMix64::new(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }
}
