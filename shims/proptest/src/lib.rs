//! Offline stand-in for `proptest` (see `shims/README.md`).
//!
//! Implements the subset of the proptest API the workspace tests use: the
//! [`proptest!`] macro, [`strategy::Strategy`] with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, [`strategy::Just`],
//! [`prop_oneof!`], `prop::collection::vec`, `prop_assert!` /
//! `prop_assert_eq!`, [`test_runner::TestCaseError`] and
//! [`test_runner::ProptestConfig`].
//!
//! Semantics: each test runs `cases` deterministic random cases; the RNG is
//! seeded from the test's module path and name plus the case index, so runs
//! are reproducible without a persisted regression file. Shrinking is not
//! implemented — a failure reports the case index, which regenerates the
//! exact inputs on re-run.

pub mod test_runner {
    /// Failure raised by `prop_assert!` family (or manually).
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// Assertion failure with its message.
        Fail(String),
        /// Input rejected (counts against no budget here; the case is skipped).
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Per-test configuration (only `cases` is honoured).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }

    /// Deterministic per-case RNG (SplitMix64 over an FNV-1a seed).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn for_case(test_name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            h ^= case as u64;
            h = h.wrapping_mul(0x100000001b3);
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform index in `[0, n)`; `n` must be non-zero.
        pub fn index(&mut self, n: usize) -> usize {
            assert!(n > 0);
            ((self.next_u64() as u128 * n as u128) >> 64) as usize
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Always the same (cloned) value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice among boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.index(self.options.len());
            self.options[i].generate(rng)
        }
    }

    /// Box a strategy for [`Union`] (helper for the `prop_oneof!` macro, in
    /// place of a cast whose associated type could not be inferred).
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    self.start.wrapping_add(((rng.next_u64() as u128 * span) >> 64) as $t)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    lo.wrapping_add(((rng.next_u64() as u128 * span) >> 64) as $t)
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + (self.end - self.start) * rng.next_f64()
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            self.start + (self.end - self.start) * rng.next_f64() as f32
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification of [`vec`]: exact, `lo..hi` or `lo..=hi`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                self.size.lo + rng.index(self.size.hi - self.size.lo + 1)
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `prop::` namespace of the upstream prelude (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let a = $a;
        let b = $b;
        if !(a == b) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` != `{:?}`", a, b),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let a = $a;
        let b = $b;
        if !(a == b) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} (`{:?}` != `{:?}`)", format!($($fmt)+), a, b),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let a = $a;
        let b = $b;
        if a == b {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                a, b
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($s)),+])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @funcs ($cfg) $($rest)* }
    };
    (@funcs ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..cfg.cases {
                    let mut __proptest_rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    let ($($pat,)+) = ($(
                        $crate::strategy::Strategy::generate(&($strat), &mut __proptest_rng),
                    )+);
                    let result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            ::core::result::Result::Ok(())
                        })();
                    match result {
                        ::core::result::Result::Ok(()) => {}
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {}
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => {
                            panic!(
                                "proptest case {}/{} of `{}` failed: {}\n(cases are \
                                 deterministic: re-running reproduces this input)",
                                case + 1,
                                cfg.cases,
                                stringify!($name),
                                msg
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @funcs ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, Vec<f64>)> {
        (2usize..6).prop_flat_map(|n| (Just(n), prop::collection::vec(-1.0f64..1.0, n)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_in_bounds(a in 3usize..10, b in -4i64..=4, x in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((-4..=4).contains(&b));
            prop_assert!((0.25..0.75).contains(&x), "x = {}", x);
        }

        #[test]
        fn flat_map_links_sizes((n, v) in pair()) {
            prop_assert_eq!(v.len(), n);
        }

        #[test]
        fn oneof_picks_members(x in prop_oneof![Just(1.0f64), Just(2.0), Just(4.0)]) {
            prop_assert!(x == 1.0 || x == 2.0 || x == 4.0);
        }
    }

    proptest! {
        #[test]
        fn default_config_works(x in 0u64..100) {
            prop_assert!(x < 100);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = (2usize..40, prop::collection::vec(-1.0f64..1.0, 1..8));
        let mut r1 = TestRng::for_case("a::b", 3);
        let mut r2 = TestRng::for_case("a::b", 3);
        let (a1, v1) = s.generate(&mut r1);
        let (a2, v2) = s.generate(&mut r2);
        assert_eq!(a1, a2);
        assert_eq!(v1, v2);
    }
}
