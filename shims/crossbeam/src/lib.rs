//! Offline stand-in for `crossbeam` (see `shims/README.md`).
//!
//! Only `channel::{unbounded, Sender, Receiver}` is provided, backed by
//! `std::sync::mpsc`. The semantics the runtime relies on hold: unbounded
//! FIFO per sender, `Sender: Clone + Send`, blocking `recv` that errors once
//! every sender is dropped. Lock-free fast paths of real crossbeam are lost;
//! message ordering and delivery guarantees are not.

pub mod channel {
    use std::sync::mpsc;

    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    // derived Clone would require T: Clone; the channel handle never needs it
    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        pub fn try_recv(&self) -> Result<T, RecvError> {
            self.0.try_recv().map_err(|_| RecvError)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;

    #[test]
    fn fifo_across_threads() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        std::thread::spawn(move || {
            for i in 0..100u32 {
                tx2.send(i).unwrap();
            }
        });
        drop(tx);
        let got: Vec<u32> = (0..100).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, (0..100).collect::<Vec<u32>>());
        assert!(rx.recv().is_err(), "channel should report disconnect");
    }
}
