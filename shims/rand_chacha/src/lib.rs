//! Offline stand-in for `rand_chacha` (see `shims/README.md`).
//!
//! [`ChaCha8Rng`] is a genuine ChaCha stream cipher core with 8 double
//! rounds, seeded by expanding the `u64` seed through SplitMix64. The stream
//! differs from upstream `rand_chacha` (which seeds from 32 bytes and uses a
//! different word serialization), but it is deterministic, portable and of
//! the same statistical quality — which is what the partitioners' seeded
//! runs and the tests rely on.

use rand::{RngCore, SeedableRng, SplitMix64};

/// ChaCha with 8 double rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key + counter + nonce words 4..16 of the ChaCha state.
    state: [u32; 16],
    /// Current 16-word output block.
    block: [u32; 16],
    /// Next word of `block` to emit (16 = exhausted).
    cursor: usize,
}

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut w = self.state;
        for _ in 0..4 {
            // 8 rounds = 4 double rounds (column + diagonal)
            quarter_round(&mut w, 0, 4, 8, 12);
            quarter_round(&mut w, 1, 5, 9, 13);
            quarter_round(&mut w, 2, 6, 10, 14);
            quarter_round(&mut w, 3, 7, 11, 15);
            quarter_round(&mut w, 0, 5, 10, 15);
            quarter_round(&mut w, 1, 6, 11, 12);
            quarter_round(&mut w, 2, 7, 8, 13);
            quarter_round(&mut w, 3, 4, 9, 14);
        }
        for (o, s) in w.iter_mut().zip(self.state.iter()) {
            *o = o.wrapping_add(*s);
        }
        self.block = w;
        self.cursor = 0;
        // 64-bit block counter in words 12..14
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
    }

    fn next_word(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let w = self.block[self.cursor];
        self.cursor += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        for i in 0..4 {
            let w = sm.next_u64();
            state[4 + 2 * i] = w as u32;
            state[5 + 2 * i] = (w >> 32) as u32;
        }
        // counter = 0, nonce from the seed stream
        let nonce = sm.next_u64();
        state[14] = nonce as u32;
        state[15] = (nonce >> 32) as u32;
        ChaCha8Rng {
            state,
            block: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(123);
        let mut b = ChaCha8Rng::seed_from_u64(123);
        let mut c = ChaCha8Rng::seed_from_u64(124);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[rng.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!(
                (700..1300).contains(&c),
                "bucket count {c} far from uniform"
            );
        }
    }
}
