//! Offline stand-in for `criterion` (see `shims/README.md`).
//!
//! Provides the group/bench/iter API surface the workspace benches use, with
//! a simple measurement loop: warm-up, then `sample_size` timed samples of
//! an adaptively-chosen iteration count, reporting median and spread to
//! stdout. No statistical regression analysis, plots or saved baselines.

use std::time::{Duration, Instant};

/// Re-export position matches upstream (`criterion::black_box`).
pub use std::hint::black_box;

#[derive(Debug, Clone)]
pub struct BenchmarkId {
    group: String,
    param: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            group: function_name.to_string(),
            param: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.group, self.param)
    }
}

/// Per-iteration work declared for a group, so the report can show a rate
/// (upstream `criterion::Throughput`). Only the variants the workspace
/// benches use are provided.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Passed to the measured closure; `iter` runs and times the payload.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // warm-up and iteration-count calibration: aim for ≥ 1 ms per sample
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(t0.elapsed() / iters as u32);
        }
    }

    fn report(&self, label: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("{label:<40} (no samples)");
            return;
        }
        let mut s = self.samples.clone();
        s.sort_unstable();
        let med = s[s.len() / 2];
        let lo = s[0];
        let hi = s[s.len() - 1];
        let rate = throughput
            .map(|t| {
                let (n, unit) = match t {
                    Throughput::Elements(n) => (n, "elem/s"),
                    Throughput::Bytes(n) => (n, "B/s"),
                };
                format!("   thrpt {:>12.0} {unit}", n as f64 / med.as_secs_f64())
            })
            .unwrap_or_default();
        println!(
            "{label:<40} median {:>12?}   range [{:?} .. {:?}]{rate}",
            med, lo, hi
        );
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declare per-iteration work; subsequent benches also report a rate.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl std::fmt::Display, mut f: F) {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id), self.throughput);
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id), self.throughput);
    }

    pub fn finish(self) {}
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl std::fmt::Display, mut f: F) {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: 10,
        };
        f(&mut b);
        b.report(&format!("{id}"), None);
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.throughput(Throughput::Elements(100));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("n", 5), &5u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        g.finish();
    }

    criterion_group!(benches, tiny_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
