//! Offline stand-in for `rayon` (see `shims/README.md`).
//!
//! `par_iter()` returns the ordinary sequential slice iterator — callers
//! that are correct under rayon's parallel execution (disjoint writes) are
//! trivially correct sequentially, and every combinator (`for_each`, `map`,
//! `sum`, …) is already on [`Iterator`]. Shared-memory speedups are lost
//! until a real work-stealing pool is restored; correctness and determinism
//! are not.

pub mod prelude {
    /// Sequential fallback for `rayon::prelude::IntoParallelRefIterator`.
    pub trait IntoParallelRefIterator<'data> {
        type Item;
        type Iter: Iterator<Item = Self::Item>;
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for [T] {
        type Item = &'data T;
        type Iter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = &'data T;
        type Iter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_behaves_like_iter() {
        let v = vec![1u64, 2, 3, 4];
        let mut out = 0u64;
        v.par_iter().for_each(|&x| out += x);
        assert_eq!(out, 10);
    }
}
