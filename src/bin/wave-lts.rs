//! `wave-lts` — command-line front end.
//!
//! ```text
//! wave-lts info      --mesh trench --elements 100000
//! wave-lts partition --mesh trench --elements 50000 --parts 16 --strategy scotch-p
//! wave-lts simulate  --mesh crust  --elements 20000 --steps 100 [--order 4] [--elastic true]
//!                    [--threads 4]   # intra-rank workers; results stay bitwise identical
//!                    [--ranks 8] [--transport channel|shm-ring|unix-socket|process]
//!                    [--overlap true]   # comm/compute overlap; bitwise identical
//! ```
//!
//! `--transport process` spawns one `wave-lts worker` OS process per rank
//! and routes halo frames over Unix sockets; `worker` is the internal
//! subcommand those processes run (not meant to be invoked by hand). All
//! transports produce bitwise-identical fields and identical deterministic
//! counters.
//!
//! Fault injection & post-mortem:
//!
//! ```text
//! wave-lts simulate --ranks 4 --fault-rank 1 --fault-die-at-level 1 \
//!                   [--fault-die-after-k K] [--fault-recv-timeout-ms MS]
//!                   [--fault-drop-every N] [--crash-report out.json] [--flight 4096]
//! wave-lts postmortem --file out.json [--trace-out merged.trace.json]
//! ```
//!
//! A failed distributed run exits 4 after writing the crash report (JSON +
//! `.txt` + `.trace.json`); `postmortem` re-parses a report, validates the
//! causal merge and prints the critical-path attribution.

use std::collections::HashMap;
use std::fs::File;
use wave_lts::lts::{LtsNewmark, LtsSetup, Newmark, Operator};
use wave_lts::mesh::io as mesh_io;
use wave_lts::mesh::{BenchmarkMesh, MeshKind};
use wave_lts::partition::{edge_cut, load_imbalance, mpi_volume, partition_mesh, Strategy};
use wave_lts::sem::gll::cfl_dt_scale;
use wave_lts::sem::{AcousticOperator, ElasticOperator};

fn parse_args(argv: &[String]) -> HashMap<String, String> {
    let mut map = HashMap::new();
    let mut i = 0;
    while i < argv.len() {
        if let Some(k) = argv[i].strip_prefix("--") {
            if i + 1 < argv.len() {
                map.insert(k.to_string(), argv[i + 1].clone());
                i += 2;
                continue;
            }
        }
        eprintln!("ignoring argument {:?}", argv[i]);
        i += 1;
    }
    map
}

fn get<T: std::str::FromStr>(m: &HashMap<String, String>, k: &str, default: T) -> T {
    m.get(k).and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn mesh_kind(name: &str) -> MeshKind {
    match name {
        "trench" => MeshKind::Trench,
        "trench-big" => MeshKind::TrenchBig,
        "embedding" => MeshKind::Embedding,
        "crust" => MeshKind::Crust,
        other => {
            eprintln!("unknown mesh {other:?}; expected trench|trench-big|embedding|crust");
            std::process::exit(2);
        }
    }
}

fn strategy(name: &str) -> Strategy {
    match name {
        "scotch" => Strategy::ScotchBaseline,
        "scotch-p" => Strategy::ScotchP,
        "metis" => Strategy::MetisMc,
        "patoh" => Strategy::Patoh { final_imbal: 0.05 },
        "patoh-0.01" => Strategy::Patoh { final_imbal: 0.01 },
        other => {
            eprintln!(
                "unknown strategy {other:?}; expected scotch|scotch-p|metis|patoh|patoh-0.01"
            );
            std::process::exit(2);
        }
    }
}

fn transport_kind(name: &str) -> wave_lts::runtime::TransportKind {
    match wave_lts::runtime::TransportKind::parse(name) {
        Some(k) => k,
        None => {
            eprintln!("unknown transport {name:?}; expected channel|shm-ring|unix-socket|process");
            std::process::exit(2);
        }
    }
}

/// Parse the `--fault-*` flags into `(rank, plan)`; `None` when no fault
/// flag is present.
fn fault_from_args(m: &HashMap<String, String>) -> Option<(usize, wave_lts::runtime::FaultPlan)> {
    let plan = wave_lts::runtime::FaultPlan {
        send_delay_us: get(m, "fault-send-delay-us", 0),
        drop_every: m.get("fault-drop-every").and_then(|v| v.parse().ok()),
        die_on_send_at_level: m.get("fault-die-at-level").and_then(|v| v.parse().ok()),
        die_after_sends: m.get("fault-die-after-k").and_then(|v| v.parse().ok()),
        recv_timeout_ms: m.get("fault-recv-timeout-ms").and_then(|v| v.parse().ok()),
    };
    let armed = plan.send_delay_us > 0
        || plan.drop_every.is_some()
        || plan.die_on_send_at_level.is_some()
        || plan.die_after_sends.is_some()
        || plan.recv_timeout_ms.is_some();
    armed.then(|| (get(m, "fault-rank", 0usize), plan))
}

/// `--flight N` overrides the recorder ring capacity; otherwise the
/// `LTS_FLIGHT` environment default applies.
fn flight_from_args(m: &HashMap<String, String>) -> usize {
    m.get("flight")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(wave_lts::runtime::flight_capacity_from_env)
}

/// The tail of every failed `simulate --ranks` run: write the crash-report
/// artifacts (JSON + `.txt` + `.trace.json`) and exit 4.
fn die_with_crash_report(
    m: &HashMap<String, String>,
    e: &wave_lts::runtime::RuntimeError,
    recordings: Vec<wave_lts::obs::RankRecording>,
) -> ! {
    use wave_lts::runtime::postmortem::{reason_for, CrashReport};
    let path: String = get(m, "crash-report", "crash_report.json".into());
    eprintln!("distributed run failed: {e}");
    let rep = CrashReport::new(reason_for(e), e.to_string(), recordings);
    match rep.write(std::path::Path::new(&path)) {
        Ok(paths) => {
            eprintln!(
                "crash report : {} (+ {}, {})",
                paths[0].display(),
                paths[1].display(),
                paths[2].display()
            );
        }
        Err(we) => eprintln!("crash report could not be written: {we}"),
    }
    std::process::exit(4);
}

fn build(m: &HashMap<String, String>) -> BenchmarkMesh {
    let kind = mesh_kind(&get::<String>(m, "mesh", "trench".into()));
    let elements: usize = get(m, "elements", 20_000);
    if get::<String>(m, "geometry", "inclusion".into()) == "graded" {
        BenchmarkMesh::crust_geometric(elements)
    } else {
        BenchmarkMesh::build(kind, elements)
    }
}

fn cmd_info(m: &HashMap<String, String>) {
    let b = build(m);
    let model = b.levels.speedup_model();
    println!("mesh          : {}", b.kind.name());
    println!("elements      : {}", b.mesh.n_elems());
    println!(
        "grid          : {} x {} x {}",
        b.mesh.nx, b.mesh.ny, b.mesh.nz
    );
    println!("GLL DOF (p=4) : {}", b.mesh.n_gll_nodes(4));
    println!("LTS levels    : {}", b.levels.n_levels);
    println!("histogram     : {:?}", b.levels.histogram());
    println!("global Δt     : {:.4}", b.levels.dt_global);
    println!(
        "Eq.9 speed-up : {:.2}x (paper at full scale: {:.1}x)",
        model.speedup(),
        b.kind.paper_speedup()
    );
}

fn cmd_partition(m: &HashMap<String, String>) {
    let b = build(m);
    let k: usize = get(m, "parts", 8);
    let seed: u64 = get(m, "seed", 1);
    let s = strategy(&get::<String>(m, "strategy", "scotch-p".into()));
    let t0 = std::time::Instant::now();
    let part = partition_mesh(&b.mesh, &b.levels, k, s, seed);
    let dt = t0.elapsed();
    if let Some(out) = m.get("out") {
        mesh_io::write_ids(File::create(out).expect("create partition file"), &part)
            .expect("write partition");
        println!("partition written  : {out}");
    }
    let rep = load_imbalance(&b.levels, &part, k);
    println!("strategy        : {}", s.name());
    println!("parts           : {k} (in {dt:.1?})");
    println!("total imbalance : {:.1}%", rep.total_pct);
    println!(
        "per-level       : {:?}",
        rep.per_level_pct
            .iter()
            .map(|p| format!("{p:.0}%"))
            .collect::<Vec<_>>()
    );
    println!("edge cut        : {}", edge_cut(&b.mesh, &b.levels, &part));
    println!(
        "MPI volume/∆t   : {}",
        mpi_volume(&b.mesh, &b.levels, &part)
    );
}

fn cmd_simulate(m: &HashMap<String, String>) {
    let b = build(m);
    let order: usize = get(m, "order", 4);
    let steps: usize = get(m, "steps", 20);
    let elastic: bool = get(m, "elastic", false);
    let compare: bool = get(m, "compare", false);
    let ranks: usize = get(m, "ranks", 0);
    let threads: usize = get(m, "threads", 1);
    let dt = b.levels.dt_global * cfl_dt_scale(order, 3);
    println!(
        "simulating {} global steps of Δt = {:.4} on {} ({} elements, order {order}, {})",
        steps,
        dt,
        b.kind.name(),
        b.mesh.n_elems(),
        if elastic { "elastic" } else { "acoustic" }
    );
    let transport_name: String = get(m, "transport", "channel".into());
    if ranks > 0 && transport_name == "process" {
        run_sim_multiprocess(m, &b, order, dt, steps, elastic, ranks, threads);
    } else if ranks > 0 {
        run_sim_distributed(m, &b, order, dt, steps, elastic, ranks, threads);
    } else if elastic {
        let op = ElasticOperator::poisson(&b.mesh, order);
        run_sim(&op, &b, dt, steps, compare, threads);
    } else {
        let op = AcousticOperator::new(&b.mesh, order);
        run_sim(&op, &b, dt, steps, compare, threads);
    }
}

/// `simulate --ranks N`: partition, run the threaded message-passing
/// runtime with the live stall monitor, print the Fig. 1 busy/stall bars and
/// per-level Eq. 21 λ, and optionally dump a Chrome trace (`--trace-out`).
#[allow(clippy::too_many_arguments)]
fn run_sim_distributed(
    m: &HashMap<String, String>,
    b: &BenchmarkMesh,
    order: usize,
    dt: f64,
    steps: usize,
    elastic: bool,
    ranks: usize,
    threads: usize,
) {
    use wave_lts::obs::MetricsRegistry;
    use wave_lts::runtime::stats::{ascii_timeline, chrome_trace, lambda_from_stats};
    use wave_lts::runtime::{
        run_distributed_local_acoustic_flight, run_distributed_local_elastic_flight,
        DistributedConfig, MonitorConfig,
    };

    let s = strategy(&get::<String>(m, "strategy", "scotch-p".into()));
    let seed: u64 = get(m, "seed", 1);
    let part = partition_mesh(&b.mesh, &b.levels, ranks, s, seed);
    let transport = transport_kind(&get::<String>(m, "transport", "channel".into()));
    let cfg = DistributedConfig {
        record_timeline: true,
        stall_monitor: Some(MonitorConfig::default()),
        threads_per_rank: threads.max(1),
        overlap: get(m, "overlap", false),
        transport,
        flight_capacity: flight_from_args(m),
        fault: fault_from_args(m),
        ..DistributedConfig::new(ranks)
    };
    let ndof = if elastic {
        Operator::ndof(&ElasticOperator::poisson(&b.mesh, order))
    } else {
        Operator::ndof(&AcousticOperator::new(&b.mesh, order))
    };
    let u0: Vec<f64> = (0..ndof).map(|i| ((i as f64) * 0.003).sin()).collect();
    let v0 = vec![0.0; ndof];
    let mut host = MetricsRegistry::new();
    let t0 = std::time::Instant::now();
    let (result, recordings) = if elastic {
        run_distributed_local_elastic_flight(
            &b.mesh,
            &b.levels,
            order,
            &part,
            dt,
            &u0,
            &v0,
            steps,
            &cfg,
            &[],
            &mut host,
        )
    } else {
        run_distributed_local_acoustic_flight(
            &b.mesh,
            &b.levels,
            order,
            &part,
            dt,
            &u0,
            &v0,
            steps,
            &cfg,
            &[],
            &mut host,
        )
    };
    let (u, _, stats) = match result {
        Ok(t) => t,
        Err(e) => die_with_crash_report(m, &e, recordings),
    };
    let wall = t0.elapsed();
    let norm: f64 = u.iter().map(|x| x * x).sum::<f64>().sqrt();
    println!(
        "distributed : {ranks} ranks ({}, {}{}), {wall:.2?}, ‖u‖ = {norm:.6e}",
        s.name(),
        transport.name(),
        if cfg.overlap { ", overlap" } else { "" }
    );
    print!("{}", ascii_timeline(&stats, 48));
    for (l, lam) in lambda_from_stats(&stats) {
        println!("  level {l}: Eq. 21 λ = {lam:.2}");
    }
    if let Some(trace_out) = m.get("trace-out") {
        let runs = [("simulate", stats.as_slice())];
        match std::fs::write(trace_out, chrome_trace(&runs).render()) {
            Ok(()) => println!("Chrome trace (chrome://tracing, Perfetto): {trace_out}"),
            Err(e) => eprintln!("could not write {trace_out}: {e}"),
        }
    }
}

/// `simulate --ranks N --transport process`: spawn one `wave-lts worker`
/// OS process per rank, route halo frames over Unix sockets, and print the
/// same summary as the in-process runner. Workers rebuild the mesh and
/// partition deterministically from the parameters echoed below, and `Δt`
/// crosses as raw bits, so results are bitwise identical to the
/// in-process transports.
#[allow(clippy::too_many_arguments)]
fn run_sim_multiprocess(
    m: &HashMap<String, String>,
    b: &BenchmarkMesh,
    order: usize,
    dt: f64,
    steps: usize,
    elastic: bool,
    ranks: usize,
    threads: usize,
) {
    use wave_lts::runtime::process::{run_coordinator_flight, ProcSpec};
    use wave_lts::runtime::stats::{ascii_timeline, lambda_from_stats};

    let bin = std::env::current_exe().expect("current exe");
    let mut args: Vec<String> = [
        "worker",
        "--mesh",
        &get::<String>(m, "mesh", "trench".into()),
        "--elements",
        &get::<usize>(m, "elements", 20_000).to_string(),
        "--geometry",
        &get::<String>(m, "geometry", "inclusion".into()),
        "--order",
        &order.to_string(),
        "--steps",
        &steps.to_string(),
        "--elastic",
        &elastic.to_string(),
        "--strategy",
        &get::<String>(m, "strategy", "scotch-p".into()),
        "--seed",
        &get::<u64>(m, "seed", 1).to_string(),
        "--threads",
        &threads.max(1).to_string(),
        "--overlap",
        &get::<bool>(m, "overlap", false).to_string(),
        "--dt-bits",
        &dt.to_bits().to_string(),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    // forward the fault and recorder flags verbatim — the worker whose rank
    // matches `--fault-rank` wraps its own endpoint
    for key in [
        "fault-rank",
        "fault-die-at-level",
        "fault-die-after-k",
        "fault-recv-timeout-ms",
        "fault-drop-every",
        "fault-send-delay-us",
        "flight",
    ] {
        if let Some(v) = m.get(key) {
            args.push(format!("--{key}"));
            args.push(v.clone());
        }
    }
    let spec = ProcSpec {
        bin,
        args,
        n_ranks: ranks,
        timeout: std::time::Duration::from_secs(600),
    };
    let t0 = std::time::Instant::now();
    let (result, recordings) = run_coordinator_flight(&spec);
    let (u, _, stats) = match result {
        Ok(t) => t,
        Err(e) => die_with_crash_report(m, &e, recordings),
    };
    let wall = t0.elapsed();
    let norm: f64 = u.iter().map(|x| x * x).sum::<f64>().sqrt();
    println!("distributed : {ranks} worker processes (unix-socket), {wall:.2?}, ‖u‖ = {norm:.6e}");
    print!("{}", ascii_timeline(&stats, 48));
    for (l, lam) in lambda_from_stats(&stats) {
        println!("  level {l}: Eq. 21 λ = {lam:.2}");
    }
    // the workers shipped their flight rings over the wire; merge them into
    // one Chrome trace instead of dropping remote ranks on the floor
    if let Some(trace_out) = m.get("trace-out") {
        let trace = wave_lts::obs::flight_chrome_trace(&recordings);
        match std::fs::write(trace_out, trace.render()) {
            Ok(()) => println!("Chrome trace (merged from {ranks} workers): {trace_out}"),
            Err(e) => eprintln!("could not write {trace_out}: {e}"),
        }
    }
    let _ = b;
}

/// The internal per-rank process behind `--transport process`. Rebuilds
/// the world deterministically from the same parameters the coordinator
/// used, dials `--socket`, runs its rank, and reports Stats + Done frames
/// on a second connection. Exits nonzero if the rank fails, which the
/// coordinator surfaces as `RankPanicked`.
fn cmd_worker(m: &HashMap<String, String>) {
    let socket: String = get(m, "socket", String::new());
    let rank: usize = get(m, "rank", usize::MAX);
    let ranks: usize = get(m, "ranks", 0);
    if socket.is_empty() || rank == usize::MAX || ranks == 0 || rank >= ranks {
        eprintln!("worker: --socket, --rank and --ranks are required");
        std::process::exit(2);
    }
    let b = build(m);
    let order: usize = get(m, "order", 4);
    let elastic: bool = get(m, "elastic", false);
    if elastic {
        let op = ElasticOperator::poisson(&b.mesh, order);
        worker_run(m, &b, &op, rank, ranks, order);
    } else {
        let op = AcousticOperator::new(&b.mesh, order);
        worker_run(m, &b, &op, rank, ranks, order);
    }
}

fn worker_run<O: Operator + wave_lts::lts::DofTopology>(
    m: &HashMap<String, String>,
    b: &BenchmarkMesh,
    op: &O,
    rank: usize,
    ranks: usize,
    order: usize,
) {
    use wave_lts::runtime::exchange::build_plans;
    use wave_lts::runtime::process::{worker_connect, worker_report_crash, worker_report_flight};
    use wave_lts::runtime::transport::faulty;
    use wave_lts::runtime::{run_rank_endpoint_recorded, DistributedConfig, TransportKind};

    let steps: usize = get(m, "steps", 20);
    let threads: usize = get(m, "threads", 1);
    let seed: u64 = get(m, "seed", 1);
    let s = strategy(&get::<String>(m, "strategy", "scotch-p".into()));
    let part = partition_mesh(&b.mesh, &b.levels, ranks, s, seed);
    let default_dt = b.levels.dt_global * cfl_dt_scale(order, 3);
    let dt = f64::from_bits(get::<u64>(m, "dt-bits", default_dt.to_bits()));
    let amp = f64::from_bits(get::<u64>(m, "u0-bits", 0.003f64.to_bits()));
    let setup = LtsSetup::new(op, &b.levels.elem_level);
    let ndof = Operator::ndof(op);
    let u0: Vec<f64> = (0..ndof).map(|i| ((i as f64) * amp).sin()).collect();
    let v0 = vec![0.0; ndof];
    let plans = build_plans(op, &setup, &part, ranks);
    let plan = &plans[rank];
    let cfg = DistributedConfig {
        overlap: get(m, "overlap", false),
        threads_per_rank: threads.max(1),
        transport: TransportKind::UnixSocket,
        flight_capacity: flight_from_args(m),
        ..DistributedConfig::new(ranks)
    };
    let socket = socket_arg(m);
    let path = std::path::Path::new(&socket);
    let transport = match worker_connect(path, rank, ranks) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("worker rank {rank}: connect {}: {e}", path.display());
            std::process::exit(3);
        }
    };
    let mut endpoint: Box<dyn wave_lts::runtime::Transport> = Box::new(transport);
    if let Some((fault_rank, fault_plan)) = fault_from_args(m) {
        if fault_rank == rank {
            endpoint = faulty::wrap(endpoint, fault_plan);
        }
    }
    let (outcome, recording) = run_rank_endpoint_recorded(
        op,
        &setup,
        plan,
        rank,
        dt,
        &u0,
        &v0,
        steps,
        &cfg,
        &[],
        endpoint,
    );
    match outcome {
        Ok((u, v, stats)) => {
            let ul: Vec<f64> = plan.my_dofs.iter().map(|&d| u[d as usize]).collect();
            let vl: Vec<f64> = plan.my_dofs.iter().map(|&d| v[d as usize]).collect();
            if let Err(e) = worker_report_flight(
                path,
                rank,
                &stats,
                &ul,
                &vl,
                &plan.my_dofs,
                Some(&recording),
            ) {
                eprintln!("worker rank {rank}: report: {e}");
                std::process::exit(3);
            }
        }
        Err(e) => {
            eprintln!("worker rank {rank}: {e}");
            // last words: ship the ring so the coordinator's post-mortem
            // includes this rank's final events
            if let Err(re) = worker_report_crash(path, &recording) {
                eprintln!("worker rank {rank}: crash report: {re}");
            }
            std::process::exit(3);
        }
    }
}

fn socket_arg(m: &HashMap<String, String>) -> String {
    get(m, "socket", String::new())
}

fn run_sim<O: Operator + wave_lts::lts::DofTopology>(
    op: &O,
    b: &BenchmarkMesh,
    dt: f64,
    steps: usize,
    compare: bool,
    threads: usize,
) {
    let setup = LtsSetup::new(op, &b.levels.elem_level);
    let ndof = Operator::ndof(op);
    println!("DOF: {ndof}, LTS levels: {}", setup.n_levels);
    let u0: Vec<f64> = (0..ndof).map(|i| ((i as f64) * 0.003).sin()).collect();
    let mut u = u0.clone();
    let mut v = vec![0.0; ndof];
    let mut lts = LtsNewmark::new(op, &setup, dt);
    lts.threads = threads.max(1);
    let t0 = std::time::Instant::now();
    lts.run(&mut u, &mut v, 0.0, steps, &[]);
    let t_lts = t0.elapsed();
    let norm: f64 = u.iter().map(|x| x * x).sum::<f64>().sqrt();
    println!(
        "LTS      : {t_lts:.2?} ({:.1?}/step), ‖u‖ = {norm:.6e}",
        t_lts / steps as u32
    );
    println!(
        "masked element-ops: {} ({} per ∆t)",
        lts.stats.elem_ops,
        lts.stats.elem_ops / steps as u64
    );
    if compare {
        let p_max = 1usize << (setup.n_levels - 1);
        let mut u = u0;
        let mut v = vec![0.0; ndof];
        let mut nm = Newmark::new(op, dt / p_max as f64);
        let t0 = std::time::Instant::now();
        nm.run(&mut u, &mut v, 0.0, steps * p_max, &[]);
        let t_ref = t0.elapsed();
        println!(
            "non-LTS  : {t_ref:.2?} → measured speed-up {:.2}x (model {:.2}x)",
            t_ref.as_secs_f64() / t_lts.as_secs_f64(),
            b.levels.speedup_model().speedup()
        );
    }
}

/// `postmortem --file report.json [--trace-out out.json]`: re-parse a
/// crash report, validate its causal merge, and print the critical-path
/// attribution. Exits 0 only when the report parses *and* its recordings
/// merge causally — the CI gate relies on exactly that.
fn cmd_postmortem(m: &HashMap<String, String>) {
    use wave_lts::runtime::postmortem::read_report;
    let Some(file) = m.get("file") else {
        eprintln!("postmortem: --file is required");
        std::process::exit(2);
    };
    let rep = match read_report(std::path::Path::new(file)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("postmortem: {e}");
            std::process::exit(1);
        }
    };
    print!("{}", rep.render_text());
    if let Some(out) = m.get("trace-out") {
        let trace = wave_lts::obs::flight_chrome_trace(&rep.recordings);
        match std::fs::write(out, trace.render()) {
            Ok(()) => println!("Chrome trace: {out}"),
            Err(e) => {
                eprintln!("could not write {out}: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Err(e) = wave_lts::obs::merge_recordings(&rep.recordings) {
        eprintln!("postmortem: causal merge failed: {e}");
        std::process::exit(1);
    }
}

fn cmd_export(m: &HashMap<String, String>) {
    let b = build(m);
    let out: String = get(m, "out", "mesh.wlts".into());
    mesh_io::write_mesh(File::create(&out).expect("create mesh file"), &b.mesh)
        .expect("write mesh");
    let lvl_out = format!("{out}.levels");
    mesh_io::write_levels(
        File::create(&lvl_out).expect("create level file"),
        &b.levels,
    )
    .expect("write levels");
    println!("mesh written   : {out}");
    println!("levels written : {lvl_out}");
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        eprintln!("usage: wave-lts <info|partition|simulate|export|postmortem> [--key value ...]");
        std::process::exit(2);
    };
    let args = parse_args(&argv[1..]);
    match cmd.as_str() {
        "info" => cmd_info(&args),
        "partition" => cmd_partition(&args),
        "simulate" => cmd_simulate(&args),
        "export" => cmd_export(&args),
        "worker" => cmd_worker(&args),
        "postmortem" => cmd_postmortem(&args),
        other => {
            eprintln!(
                "unknown command {other:?}; expected info|partition|simulate|export|postmortem|worker"
            );
            std::process::exit(2);
        }
    }
}
