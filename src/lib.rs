//! # wave-lts
//!
//! A reproduction of *Load-Balanced Local Time Stepping for Large-Scale Wave
//! Propagation* (Rietmann, Peter, Schenk, Uçar, Grote — IPDPS 2015).
//!
//! This facade re-exports the workspace crates:
//!
//! * [`mesh`] — hexahedral meshes, CFL p-levels, dual graph, nodal hypergraph,
//!   and the paper's benchmark meshes (trench / embedding / crust / trench-big);
//! * [`sem`] — spectral-element discretization of the acoustic and elastic
//!   wave equations (GLL basis, diagonal mass matrix, matrix-free stiffness);
//! * [`lts`] — explicit Newmark and the multi-level LTS-Newmark scheme;
//! * [`partition`] — multilevel graph and hypergraph partitioners with
//!   multi-constraint (per-level) load balancing, plus SCOTCH-P;
//! * [`runtime`] — threaded message-passing execution of partitioned LTS with
//!   halo exchange and per-rank stall accounting;
//! * [`perfmodel`] — the cluster performance model (CPU/GPU) and the cache
//!   simulator used by the scaling figures;
//! * [`obs`] — the observability layer: typed metrics registry, scoped spans,
//!   and the JSON/CSV exporters the runtime and partitioners record into.
//!
//! ## Quickstart
//!
//! ```
//! use wave_lts::mesh::{BenchmarkMesh, MeshKind};
//!
//! let bench = BenchmarkMesh::build(MeshKind::Trench, 2_000);
//! let model = bench.levels.speedup_model();
//! assert!(model.speedup() > 1.0);
//! ```

pub use lts_core as lts;
pub use lts_mesh as mesh;
pub use lts_obs as obs;
pub use lts_partition as partition;
pub use lts_perfmodel as perfmodel;
pub use lts_runtime as runtime;
pub use lts_sem as sem;
