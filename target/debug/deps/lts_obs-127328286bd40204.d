/root/repo/target/debug/deps/lts_obs-127328286bd40204.d: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/registry.rs crates/obs/src/span.rs

/root/repo/target/debug/deps/lts_obs-127328286bd40204: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/registry.rs crates/obs/src/span.rs

crates/obs/src/lib.rs:
crates/obs/src/export.rs:
crates/obs/src/registry.rs:
crates/obs/src/span.rs:
