/root/repo/target/debug/deps/verification-7243718b9bba9221.d: crates/bench/src/bin/verification.rs Cargo.toml

/root/repo/target/debug/deps/libverification-7243718b9bba9221.rmeta: crates/bench/src/bin/verification.rs Cargo.toml

crates/bench/src/bin/verification.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
