/root/repo/target/debug/deps/fig10_embedding_scaling-579c78a4cedb1b60.d: crates/bench/src/bin/fig10_embedding_scaling.rs

/root/repo/target/debug/deps/fig10_embedding_scaling-579c78a4cedb1b60: crates/bench/src/bin/fig10_embedding_scaling.rs

crates/bench/src/bin/fig10_embedding_scaling.rs:
