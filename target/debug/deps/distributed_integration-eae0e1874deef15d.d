/root/repo/target/debug/deps/distributed_integration-eae0e1874deef15d.d: tests/distributed_integration.rs Cargo.toml

/root/repo/target/debug/deps/libdistributed_integration-eae0e1874deef15d.rmeta: tests/distributed_integration.rs Cargo.toml

tests/distributed_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
