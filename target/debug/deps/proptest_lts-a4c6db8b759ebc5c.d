/root/repo/target/debug/deps/proptest_lts-a4c6db8b759ebc5c.d: tests/proptest_lts.rs

/root/repo/target/debug/deps/proptest_lts-a4c6db8b759ebc5c: tests/proptest_lts.rs

tests/proptest_lts.rs:
