/root/repo/target/debug/deps/obs_integration-1e0c89ab08a1a074.d: tests/obs_integration.rs

/root/repo/target/debug/deps/obs_integration-1e0c89ab08a1a074: tests/obs_integration.rs

tests/obs_integration.rs:
