/root/repo/target/debug/deps/proptest_sem-813c297872172d00.d: crates/sem/tests/proptest_sem.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_sem-813c297872172d00.rmeta: crates/sem/tests/proptest_sem.rs Cargo.toml

crates/sem/tests/proptest_sem.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
