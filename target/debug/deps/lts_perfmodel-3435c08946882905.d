/root/repo/target/debug/deps/lts_perfmodel-3435c08946882905.d: crates/perfmodel/src/lib.rs crates/perfmodel/src/cache.rs crates/perfmodel/src/cluster.rs Cargo.toml

/root/repo/target/debug/deps/liblts_perfmodel-3435c08946882905.rmeta: crates/perfmodel/src/lib.rs crates/perfmodel/src/cache.rs crates/perfmodel/src/cluster.rs Cargo.toml

crates/perfmodel/src/lib.rs:
crates/perfmodel/src/cache.rs:
crates/perfmodel/src/cluster.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
