/root/repo/target/debug/deps/ablation_mapping-3177a44d8ce2b149.d: crates/bench/src/bin/ablation_mapping.rs

/root/repo/target/debug/deps/ablation_mapping-3177a44d8ce2b149: crates/bench/src/bin/ablation_mapping.rs

crates/bench/src/bin/ablation_mapping.rs:
