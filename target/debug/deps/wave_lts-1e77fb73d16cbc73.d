/root/repo/target/debug/deps/wave_lts-1e77fb73d16cbc73.d: src/bin/wave-lts.rs Cargo.toml

/root/repo/target/debug/deps/libwave_lts-1e77fb73d16cbc73.rmeta: src/bin/wave-lts.rs Cargo.toml

src/bin/wave-lts.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
