/root/repo/target/debug/deps/wave_lts-f9c735ff6cce6432.d: src/lib.rs

/root/repo/target/debug/deps/libwave_lts-f9c735ff6cce6432.rlib: src/lib.rs

/root/repo/target/debug/deps/libwave_lts-f9c735ff6cce6432.rmeta: src/lib.rs

src/lib.rs:
