/root/repo/target/debug/deps/fig01_timeline-193dea0c581df61d.d: crates/bench/src/bin/fig01_timeline.rs Cargo.toml

/root/repo/target/debug/deps/libfig01_timeline-193dea0c581df61d.rmeta: crates/bench/src/bin/fig01_timeline.rs Cargo.toml

crates/bench/src/bin/fig01_timeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
