/root/repo/target/debug/deps/proptest_partition-30a386c214d2bd63.d: tests/proptest_partition.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_partition-30a386c214d2bd63.rmeta: tests/proptest_partition.rs Cargo.toml

tests/proptest_partition.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
