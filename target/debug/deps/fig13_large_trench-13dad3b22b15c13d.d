/root/repo/target/debug/deps/fig13_large_trench-13dad3b22b15c13d.d: crates/bench/src/bin/fig13_large_trench.rs

/root/repo/target/debug/deps/fig13_large_trench-13dad3b22b15c13d: crates/bench/src/bin/fig13_large_trench.rs

crates/bench/src/bin/fig13_large_trench.rs:
