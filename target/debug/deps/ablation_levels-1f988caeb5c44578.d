/root/repo/target/debug/deps/ablation_levels-1f988caeb5c44578.d: crates/bench/src/bin/ablation_levels.rs Cargo.toml

/root/repo/target/debug/deps/libablation_levels-1f988caeb5c44578.rmeta: crates/bench/src/bin/ablation_levels.rs Cargo.toml

crates/bench/src/bin/ablation_levels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
