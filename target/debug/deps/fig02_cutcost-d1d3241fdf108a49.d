/root/repo/target/debug/deps/fig02_cutcost-d1d3241fdf108a49.d: crates/bench/src/bin/fig02_cutcost.rs

/root/repo/target/debug/deps/fig02_cutcost-d1d3241fdf108a49: crates/bench/src/bin/fig02_cutcost.rs

crates/bench/src/bin/fig02_cutcost.rs:
