/root/repo/target/debug/deps/partition_integration-8f8edb553544fd33.d: tests/partition_integration.rs

/root/repo/target/debug/deps/partition_integration-8f8edb553544fd33: tests/partition_integration.rs

tests/partition_integration.rs:
