/root/repo/target/debug/deps/fig07_imbalance-ae8a43e57f906478.d: crates/bench/src/bin/fig07_imbalance.rs

/root/repo/target/debug/deps/fig07_imbalance-ae8a43e57f906478: crates/bench/src/bin/fig07_imbalance.rs

crates/bench/src/bin/fig07_imbalance.rs:
