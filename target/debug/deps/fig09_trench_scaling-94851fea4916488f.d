/root/repo/target/debug/deps/fig09_trench_scaling-94851fea4916488f.d: crates/bench/src/bin/fig09_trench_scaling.rs

/root/repo/target/debug/deps/fig09_trench_scaling-94851fea4916488f: crates/bench/src/bin/fig09_trench_scaling.rs

crates/bench/src/bin/fig09_trench_scaling.rs:
