/root/repo/target/debug/deps/fig12_cache-fba89e8b962d47ea.d: crates/bench/src/bin/fig12_cache.rs

/root/repo/target/debug/deps/fig12_cache-fba89e8b962d47ea: crates/bench/src/bin/fig12_cache.rs

crates/bench/src/bin/fig12_cache.rs:
