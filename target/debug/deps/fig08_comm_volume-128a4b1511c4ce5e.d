/root/repo/target/debug/deps/fig08_comm_volume-128a4b1511c4ce5e.d: crates/bench/src/bin/fig08_comm_volume.rs Cargo.toml

/root/repo/target/debug/deps/libfig08_comm_volume-128a4b1511c4ce5e.rmeta: crates/bench/src/bin/fig08_comm_volume.rs Cargo.toml

crates/bench/src/bin/fig08_comm_volume.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
