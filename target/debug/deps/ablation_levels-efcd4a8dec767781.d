/root/repo/target/debug/deps/ablation_levels-efcd4a8dec767781.d: crates/bench/src/bin/ablation_levels.rs

/root/repo/target/debug/deps/ablation_levels-efcd4a8dec767781: crates/bench/src/bin/ablation_levels.rs

crates/bench/src/bin/ablation_levels.rs:
