/root/repo/target/debug/deps/fig12_cache-06063ef75426fd7e.d: crates/bench/src/bin/fig12_cache.rs

/root/repo/target/debug/deps/fig12_cache-06063ef75426fd7e: crates/bench/src/bin/fig12_cache.rs

crates/bench/src/bin/fig12_cache.rs:
