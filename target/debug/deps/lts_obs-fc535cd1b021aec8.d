/root/repo/target/debug/deps/lts_obs-fc535cd1b021aec8.d: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/registry.rs crates/obs/src/span.rs

/root/repo/target/debug/deps/liblts_obs-fc535cd1b021aec8.rlib: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/registry.rs crates/obs/src/span.rs

/root/repo/target/debug/deps/liblts_obs-fc535cd1b021aec8.rmeta: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/registry.rs crates/obs/src/span.rs

crates/obs/src/lib.rs:
crates/obs/src/export.rs:
crates/obs/src/registry.rs:
crates/obs/src/span.rs:
