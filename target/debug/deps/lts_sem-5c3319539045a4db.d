/root/repo/target/debug/deps/lts_sem-5c3319539045a4db.d: crates/sem/src/lib.rs crates/sem/src/acoustic.rs crates/sem/src/boundary.rs crates/sem/src/dofmap.rs crates/sem/src/elastic.rs crates/sem/src/gll.rs crates/sem/src/kernel.rs crates/sem/src/parallel.rs crates/sem/src/record.rs crates/sem/src/unstructured.rs

/root/repo/target/debug/deps/liblts_sem-5c3319539045a4db.rlib: crates/sem/src/lib.rs crates/sem/src/acoustic.rs crates/sem/src/boundary.rs crates/sem/src/dofmap.rs crates/sem/src/elastic.rs crates/sem/src/gll.rs crates/sem/src/kernel.rs crates/sem/src/parallel.rs crates/sem/src/record.rs crates/sem/src/unstructured.rs

/root/repo/target/debug/deps/liblts_sem-5c3319539045a4db.rmeta: crates/sem/src/lib.rs crates/sem/src/acoustic.rs crates/sem/src/boundary.rs crates/sem/src/dofmap.rs crates/sem/src/elastic.rs crates/sem/src/gll.rs crates/sem/src/kernel.rs crates/sem/src/parallel.rs crates/sem/src/record.rs crates/sem/src/unstructured.rs

crates/sem/src/lib.rs:
crates/sem/src/acoustic.rs:
crates/sem/src/boundary.rs:
crates/sem/src/dofmap.rs:
crates/sem/src/elastic.rs:
crates/sem/src/gll.rs:
crates/sem/src/kernel.rs:
crates/sem/src/parallel.rs:
crates/sem/src/record.rs:
crates/sem/src/unstructured.rs:
