/root/repo/target/debug/deps/fig10_embedding_scaling-6a1c502bbee85036.d: crates/bench/src/bin/fig10_embedding_scaling.rs

/root/repo/target/debug/deps/fig10_embedding_scaling-6a1c502bbee85036: crates/bench/src/bin/fig10_embedding_scaling.rs

crates/bench/src/bin/fig10_embedding_scaling.rs:
