/root/repo/target/debug/deps/lts_obs-0cda7f5e41408f2d.d: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/registry.rs crates/obs/src/span.rs Cargo.toml

/root/repo/target/debug/deps/liblts_obs-0cda7f5e41408f2d.rmeta: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/registry.rs crates/obs/src/span.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/export.rs:
crates/obs/src/registry.rs:
crates/obs/src/span.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
