/root/repo/target/debug/deps/lts_runtime-3533b7e679dfec74.d: crates/runtime/src/lib.rs crates/runtime/src/distributed.rs crates/runtime/src/exchange.rs crates/runtime/src/local.rs crates/runtime/src/stats.rs

/root/repo/target/debug/deps/liblts_runtime-3533b7e679dfec74.rlib: crates/runtime/src/lib.rs crates/runtime/src/distributed.rs crates/runtime/src/exchange.rs crates/runtime/src/local.rs crates/runtime/src/stats.rs

/root/repo/target/debug/deps/liblts_runtime-3533b7e679dfec74.rmeta: crates/runtime/src/lib.rs crates/runtime/src/distributed.rs crates/runtime/src/exchange.rs crates/runtime/src/local.rs crates/runtime/src/stats.rs

crates/runtime/src/lib.rs:
crates/runtime/src/distributed.rs:
crates/runtime/src/exchange.rs:
crates/runtime/src/local.rs:
crates/runtime/src/stats.rs:
