/root/repo/target/debug/deps/fig13_large_trench-f28efa3e5489d261.d: crates/bench/src/bin/fig13_large_trench.rs

/root/repo/target/debug/deps/fig13_large_trench-f28efa3e5489d261: crates/bench/src/bin/fig13_large_trench.rs

crates/bench/src/bin/fig13_large_trench.rs:
