/root/repo/target/debug/deps/fig11_crust_scaling-fc4732bd1f9f0b32.d: crates/bench/src/bin/fig11_crust_scaling.rs

/root/repo/target/debug/deps/fig11_crust_scaling-fc4732bd1f9f0b32: crates/bench/src/bin/fig11_crust_scaling.rs

crates/bench/src/bin/fig11_crust_scaling.rs:
