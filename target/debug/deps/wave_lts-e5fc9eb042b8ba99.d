/root/repo/target/debug/deps/wave_lts-e5fc9eb042b8ba99.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libwave_lts-e5fc9eb042b8ba99.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
