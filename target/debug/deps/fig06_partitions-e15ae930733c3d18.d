/root/repo/target/debug/deps/fig06_partitions-e15ae930733c3d18.d: crates/bench/src/bin/fig06_partitions.rs Cargo.toml

/root/repo/target/debug/deps/libfig06_partitions-e15ae930733c3d18.rmeta: crates/bench/src/bin/fig06_partitions.rs Cargo.toml

crates/bench/src/bin/fig06_partitions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
