/root/repo/target/debug/deps/partition_integration-46a111a61dff0af5.d: tests/partition_integration.rs

/root/repo/target/debug/deps/partition_integration-46a111a61dff0af5: tests/partition_integration.rs

tests/partition_integration.rs:
