/root/repo/target/debug/deps/distributed_integration-fea60823e5b3c597.d: tests/distributed_integration.rs

/root/repo/target/debug/deps/distributed_integration-fea60823e5b3c597: tests/distributed_integration.rs

tests/distributed_integration.rs:
