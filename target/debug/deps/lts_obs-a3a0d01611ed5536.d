/root/repo/target/debug/deps/lts_obs-a3a0d01611ed5536.d: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/registry.rs crates/obs/src/span.rs Cargo.toml

/root/repo/target/debug/deps/liblts_obs-a3a0d01611ed5536.rmeta: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/registry.rs crates/obs/src/span.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/export.rs:
crates/obs/src/registry.rs:
crates/obs/src/span.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
