/root/repo/target/debug/deps/lts_runtime-863ba6de99b2fab4.d: crates/runtime/src/lib.rs crates/runtime/src/distributed.rs crates/runtime/src/exchange.rs crates/runtime/src/local.rs crates/runtime/src/stats.rs

/root/repo/target/debug/deps/lts_runtime-863ba6de99b2fab4: crates/runtime/src/lib.rs crates/runtime/src/distributed.rs crates/runtime/src/exchange.rs crates/runtime/src/local.rs crates/runtime/src/stats.rs

crates/runtime/src/lib.rs:
crates/runtime/src/distributed.rs:
crates/runtime/src/exchange.rs:
crates/runtime/src/local.rs:
crates/runtime/src/stats.rs:
