/root/repo/target/debug/deps/wave_lts-b61a7b21215e1511.d: src/bin/wave-lts.rs

/root/repo/target/debug/deps/wave_lts-b61a7b21215e1511: src/bin/wave-lts.rs

src/bin/wave-lts.rs:
