/root/repo/target/debug/deps/fig05_mesh_table-af483dd9cfa3c8ee.d: crates/bench/src/bin/fig05_mesh_table.rs Cargo.toml

/root/repo/target/debug/deps/libfig05_mesh_table-af483dd9cfa3c8ee.rmeta: crates/bench/src/bin/fig05_mesh_table.rs Cargo.toml

crates/bench/src/bin/fig05_mesh_table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
