/root/repo/target/debug/deps/ablation_mapping-02d05e3a8e43c842.d: crates/bench/src/bin/ablation_mapping.rs

/root/repo/target/debug/deps/ablation_mapping-02d05e3a8e43c842: crates/bench/src/bin/ablation_mapping.rs

crates/bench/src/bin/ablation_mapping.rs:
