/root/repo/target/debug/deps/lts_bench-21961253ac5eab3c.d: crates/bench/src/lib.rs crates/bench/src/scaling.rs

/root/repo/target/debug/deps/lts_bench-21961253ac5eab3c: crates/bench/src/lib.rs crates/bench/src/scaling.rs

crates/bench/src/lib.rs:
crates/bench/src/scaling.rs:
