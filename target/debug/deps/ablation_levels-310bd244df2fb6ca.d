/root/repo/target/debug/deps/ablation_levels-310bd244df2fb6ca.d: crates/bench/src/bin/ablation_levels.rs

/root/repo/target/debug/deps/ablation_levels-310bd244df2fb6ca: crates/bench/src/bin/ablation_levels.rs

crates/bench/src/bin/ablation_levels.rs:
