/root/repo/target/debug/deps/ablation_mapping-27e8cc87d338e215.d: crates/bench/src/bin/ablation_mapping.rs

/root/repo/target/debug/deps/ablation_mapping-27e8cc87d338e215: crates/bench/src/bin/ablation_mapping.rs

crates/bench/src/bin/ablation_mapping.rs:
