/root/repo/target/debug/deps/fig07_imbalance-46e2b6776268b83f.d: crates/bench/src/bin/fig07_imbalance.rs Cargo.toml

/root/repo/target/debug/deps/libfig07_imbalance-46e2b6776268b83f.rmeta: crates/bench/src/bin/fig07_imbalance.rs Cargo.toml

crates/bench/src/bin/fig07_imbalance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
