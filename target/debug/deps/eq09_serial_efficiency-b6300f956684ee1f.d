/root/repo/target/debug/deps/eq09_serial_efficiency-b6300f956684ee1f.d: crates/bench/src/bin/eq09_serial_efficiency.rs

/root/repo/target/debug/deps/eq09_serial_efficiency-b6300f956684ee1f: crates/bench/src/bin/eq09_serial_efficiency.rs

crates/bench/src/bin/eq09_serial_efficiency.rs:
