/root/repo/target/debug/deps/proptest_metrics-06b8ea18a36f2e1f.d: crates/partition/tests/proptest_metrics.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_metrics-06b8ea18a36f2e1f.rmeta: crates/partition/tests/proptest_metrics.rs Cargo.toml

crates/partition/tests/proptest_metrics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
