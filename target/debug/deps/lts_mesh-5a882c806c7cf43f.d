/root/repo/target/debug/deps/lts_mesh-5a882c806c7cf43f.d: crates/mesh/src/lib.rs crates/mesh/src/benchmarks.rs crates/mesh/src/dual.rs crates/mesh/src/grading.rs crates/mesh/src/hex.rs crates/mesh/src/hypergraph.rs crates/mesh/src/io.rs crates/mesh/src/levels.rs crates/mesh/src/quad.rs crates/mesh/src/random_media.rs

/root/repo/target/debug/deps/liblts_mesh-5a882c806c7cf43f.rlib: crates/mesh/src/lib.rs crates/mesh/src/benchmarks.rs crates/mesh/src/dual.rs crates/mesh/src/grading.rs crates/mesh/src/hex.rs crates/mesh/src/hypergraph.rs crates/mesh/src/io.rs crates/mesh/src/levels.rs crates/mesh/src/quad.rs crates/mesh/src/random_media.rs

/root/repo/target/debug/deps/liblts_mesh-5a882c806c7cf43f.rmeta: crates/mesh/src/lib.rs crates/mesh/src/benchmarks.rs crates/mesh/src/dual.rs crates/mesh/src/grading.rs crates/mesh/src/hex.rs crates/mesh/src/hypergraph.rs crates/mesh/src/io.rs crates/mesh/src/levels.rs crates/mesh/src/quad.rs crates/mesh/src/random_media.rs

crates/mesh/src/lib.rs:
crates/mesh/src/benchmarks.rs:
crates/mesh/src/dual.rs:
crates/mesh/src/grading.rs:
crates/mesh/src/hex.rs:
crates/mesh/src/hypergraph.rs:
crates/mesh/src/io.rs:
crates/mesh/src/levels.rs:
crates/mesh/src/quad.rs:
crates/mesh/src/random_media.rs:
