/root/repo/target/debug/deps/fig06_partitions-9f47c909fbb5ca3d.d: crates/bench/src/bin/fig06_partitions.rs

/root/repo/target/debug/deps/fig06_partitions-9f47c909fbb5ca3d: crates/bench/src/bin/fig06_partitions.rs

crates/bench/src/bin/fig06_partitions.rs:
