/root/repo/target/debug/deps/fig11_crust_scaling-3d2526a7c19032c6.d: crates/bench/src/bin/fig11_crust_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_crust_scaling-3d2526a7c19032c6.rmeta: crates/bench/src/bin/fig11_crust_scaling.rs Cargo.toml

crates/bench/src/bin/fig11_crust_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
