/root/repo/target/debug/deps/ablation_coarse_restricted-5222933c33ef1d6b.d: crates/bench/src/bin/ablation_coarse_restricted.rs

/root/repo/target/debug/deps/ablation_coarse_restricted-5222933c33ef1d6b: crates/bench/src/bin/ablation_coarse_restricted.rs

crates/bench/src/bin/ablation_coarse_restricted.rs:
