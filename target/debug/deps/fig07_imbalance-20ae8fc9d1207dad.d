/root/repo/target/debug/deps/fig07_imbalance-20ae8fc9d1207dad.d: crates/bench/src/bin/fig07_imbalance.rs

/root/repo/target/debug/deps/fig07_imbalance-20ae8fc9d1207dad: crates/bench/src/bin/fig07_imbalance.rs

crates/bench/src/bin/fig07_imbalance.rs:
