/root/repo/target/debug/deps/fig01_timeline-ef061e87d9ca223f.d: crates/bench/src/bin/fig01_timeline.rs Cargo.toml

/root/repo/target/debug/deps/libfig01_timeline-ef061e87d9ca223f.rmeta: crates/bench/src/bin/fig01_timeline.rs Cargo.toml

crates/bench/src/bin/fig01_timeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
