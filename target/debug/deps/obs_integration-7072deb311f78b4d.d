/root/repo/target/debug/deps/obs_integration-7072deb311f78b4d.d: tests/obs_integration.rs Cargo.toml

/root/repo/target/debug/deps/libobs_integration-7072deb311f78b4d.rmeta: tests/obs_integration.rs Cargo.toml

tests/obs_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
