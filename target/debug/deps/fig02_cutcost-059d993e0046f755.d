/root/repo/target/debug/deps/fig02_cutcost-059d993e0046f755.d: crates/bench/src/bin/fig02_cutcost.rs

/root/repo/target/debug/deps/fig02_cutcost-059d993e0046f755: crates/bench/src/bin/fig02_cutcost.rs

crates/bench/src/bin/fig02_cutcost.rs:
