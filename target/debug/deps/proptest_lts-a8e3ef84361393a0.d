/root/repo/target/debug/deps/proptest_lts-a8e3ef84361393a0.d: tests/proptest_lts.rs

/root/repo/target/debug/deps/proptest_lts-a8e3ef84361393a0: tests/proptest_lts.rs

tests/proptest_lts.rs:
