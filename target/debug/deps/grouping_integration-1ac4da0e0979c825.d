/root/repo/target/debug/deps/grouping_integration-1ac4da0e0979c825.d: tests/grouping_integration.rs

/root/repo/target/debug/deps/grouping_integration-1ac4da0e0979c825: tests/grouping_integration.rs

tests/grouping_integration.rs:
