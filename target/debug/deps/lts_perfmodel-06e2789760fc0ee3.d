/root/repo/target/debug/deps/lts_perfmodel-06e2789760fc0ee3.d: crates/perfmodel/src/lib.rs crates/perfmodel/src/cache.rs crates/perfmodel/src/cluster.rs

/root/repo/target/debug/deps/liblts_perfmodel-06e2789760fc0ee3.rlib: crates/perfmodel/src/lib.rs crates/perfmodel/src/cache.rs crates/perfmodel/src/cluster.rs

/root/repo/target/debug/deps/liblts_perfmodel-06e2789760fc0ee3.rmeta: crates/perfmodel/src/lib.rs crates/perfmodel/src/cache.rs crates/perfmodel/src/cluster.rs

crates/perfmodel/src/lib.rs:
crates/perfmodel/src/cache.rs:
crates/perfmodel/src/cluster.rs:
