/root/repo/target/debug/deps/distributed_integration-db5906f710603bf1.d: tests/distributed_integration.rs

/root/repo/target/debug/deps/distributed_integration-db5906f710603bf1: tests/distributed_integration.rs

tests/distributed_integration.rs:
