/root/repo/target/debug/deps/fig04_meshes-fdc541e870a97a41.d: crates/bench/src/bin/fig04_meshes.rs

/root/repo/target/debug/deps/fig04_meshes-fdc541e870a97a41: crates/bench/src/bin/fig04_meshes.rs

crates/bench/src/bin/fig04_meshes.rs:
