/root/repo/target/debug/deps/ablation_levels-7854b34c67ca1da4.d: crates/bench/src/bin/ablation_levels.rs

/root/repo/target/debug/deps/ablation_levels-7854b34c67ca1da4: crates/bench/src/bin/ablation_levels.rs

crates/bench/src/bin/ablation_levels.rs:
