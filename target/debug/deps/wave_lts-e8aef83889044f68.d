/root/repo/target/debug/deps/wave_lts-e8aef83889044f68.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libwave_lts-e8aef83889044f68.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
