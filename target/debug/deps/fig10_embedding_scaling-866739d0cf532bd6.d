/root/repo/target/debug/deps/fig10_embedding_scaling-866739d0cf532bd6.d: crates/bench/src/bin/fig10_embedding_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_embedding_scaling-866739d0cf532bd6.rmeta: crates/bench/src/bin/fig10_embedding_scaling.rs Cargo.toml

crates/bench/src/bin/fig10_embedding_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
