/root/repo/target/debug/deps/lts_mesh-4dd80f2bcfe5d754.d: crates/mesh/src/lib.rs crates/mesh/src/benchmarks.rs crates/mesh/src/dual.rs crates/mesh/src/grading.rs crates/mesh/src/hex.rs crates/mesh/src/hypergraph.rs crates/mesh/src/io.rs crates/mesh/src/levels.rs crates/mesh/src/quad.rs crates/mesh/src/random_media.rs

/root/repo/target/debug/deps/lts_mesh-4dd80f2bcfe5d754: crates/mesh/src/lib.rs crates/mesh/src/benchmarks.rs crates/mesh/src/dual.rs crates/mesh/src/grading.rs crates/mesh/src/hex.rs crates/mesh/src/hypergraph.rs crates/mesh/src/io.rs crates/mesh/src/levels.rs crates/mesh/src/quad.rs crates/mesh/src/random_media.rs

crates/mesh/src/lib.rs:
crates/mesh/src/benchmarks.rs:
crates/mesh/src/dual.rs:
crates/mesh/src/grading.rs:
crates/mesh/src/hex.rs:
crates/mesh/src/hypergraph.rs:
crates/mesh/src/io.rs:
crates/mesh/src/levels.rs:
crates/mesh/src/quad.rs:
crates/mesh/src/random_media.rs:
