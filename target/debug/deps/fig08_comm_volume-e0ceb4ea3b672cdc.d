/root/repo/target/debug/deps/fig08_comm_volume-e0ceb4ea3b672cdc.d: crates/bench/src/bin/fig08_comm_volume.rs

/root/repo/target/debug/deps/fig08_comm_volume-e0ceb4ea3b672cdc: crates/bench/src/bin/fig08_comm_volume.rs

crates/bench/src/bin/fig08_comm_volume.rs:
