/root/repo/target/debug/deps/fig11_crust_scaling-99931f44bb5230ef.d: crates/bench/src/bin/fig11_crust_scaling.rs

/root/repo/target/debug/deps/fig11_crust_scaling-99931f44bb5230ef: crates/bench/src/bin/fig11_crust_scaling.rs

crates/bench/src/bin/fig11_crust_scaling.rs:
