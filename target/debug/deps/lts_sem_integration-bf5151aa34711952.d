/root/repo/target/debug/deps/lts_sem_integration-bf5151aa34711952.d: tests/lts_sem_integration.rs

/root/repo/target/debug/deps/lts_sem_integration-bf5151aa34711952: tests/lts_sem_integration.rs

tests/lts_sem_integration.rs:
