/root/repo/target/debug/deps/fig04_meshes-26506ab56bd71275.d: crates/bench/src/bin/fig04_meshes.rs

/root/repo/target/debug/deps/fig04_meshes-26506ab56bd71275: crates/bench/src/bin/fig04_meshes.rs

crates/bench/src/bin/fig04_meshes.rs:
