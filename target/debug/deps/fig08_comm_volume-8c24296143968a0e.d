/root/repo/target/debug/deps/fig08_comm_volume-8c24296143968a0e.d: crates/bench/src/bin/fig08_comm_volume.rs

/root/repo/target/debug/deps/fig08_comm_volume-8c24296143968a0e: crates/bench/src/bin/fig08_comm_volume.rs

crates/bench/src/bin/fig08_comm_volume.rs:
