/root/repo/target/debug/deps/lts_partition-c7ee16ac7400996d.d: crates/partition/src/lib.rs crates/partition/src/assignment.rs crates/partition/src/costed.rs crates/partition/src/graph.rs crates/partition/src/hgraph.rs crates/partition/src/hmultilevel.rs crates/partition/src/kway.rs crates/partition/src/metrics.rs crates/partition/src/multilevel.rs crates/partition/src/refine.rs crates/partition/src/restricted.rs crates/partition/src/scotch_p.rs crates/partition/src/strategy.rs

/root/repo/target/debug/deps/lts_partition-c7ee16ac7400996d: crates/partition/src/lib.rs crates/partition/src/assignment.rs crates/partition/src/costed.rs crates/partition/src/graph.rs crates/partition/src/hgraph.rs crates/partition/src/hmultilevel.rs crates/partition/src/kway.rs crates/partition/src/metrics.rs crates/partition/src/multilevel.rs crates/partition/src/refine.rs crates/partition/src/restricted.rs crates/partition/src/scotch_p.rs crates/partition/src/strategy.rs

crates/partition/src/lib.rs:
crates/partition/src/assignment.rs:
crates/partition/src/costed.rs:
crates/partition/src/graph.rs:
crates/partition/src/hgraph.rs:
crates/partition/src/hmultilevel.rs:
crates/partition/src/kway.rs:
crates/partition/src/metrics.rs:
crates/partition/src/multilevel.rs:
crates/partition/src/refine.rs:
crates/partition/src/restricted.rs:
crates/partition/src/scotch_p.rs:
crates/partition/src/strategy.rs:
