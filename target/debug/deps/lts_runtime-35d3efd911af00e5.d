/root/repo/target/debug/deps/lts_runtime-35d3efd911af00e5.d: crates/runtime/src/lib.rs crates/runtime/src/distributed.rs crates/runtime/src/exchange.rs crates/runtime/src/local.rs crates/runtime/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/liblts_runtime-35d3efd911af00e5.rmeta: crates/runtime/src/lib.rs crates/runtime/src/distributed.rs crates/runtime/src/exchange.rs crates/runtime/src/local.rs crates/runtime/src/stats.rs Cargo.toml

crates/runtime/src/lib.rs:
crates/runtime/src/distributed.rs:
crates/runtime/src/exchange.rs:
crates/runtime/src/local.rs:
crates/runtime/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
