/root/repo/target/debug/deps/partitioners-255b38f629967edc.d: crates/bench/benches/partitioners.rs

/root/repo/target/debug/deps/partitioners-255b38f629967edc: crates/bench/benches/partitioners.rs

crates/bench/benches/partitioners.rs:
