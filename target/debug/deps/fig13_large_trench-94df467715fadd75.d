/root/repo/target/debug/deps/fig13_large_trench-94df467715fadd75.d: crates/bench/src/bin/fig13_large_trench.rs

/root/repo/target/debug/deps/fig13_large_trench-94df467715fadd75: crates/bench/src/bin/fig13_large_trench.rs

crates/bench/src/bin/fig13_large_trench.rs:
