/root/repo/target/debug/deps/operators-8175148b20b50c34.d: crates/bench/benches/operators.rs

/root/repo/target/debug/deps/operators-8175148b20b50c34: crates/bench/benches/operators.rs

crates/bench/benches/operators.rs:
