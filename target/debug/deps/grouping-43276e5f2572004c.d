/root/repo/target/debug/deps/grouping-43276e5f2572004c.d: crates/bench/benches/grouping.rs Cargo.toml

/root/repo/target/debug/deps/libgrouping-43276e5f2572004c.rmeta: crates/bench/benches/grouping.rs Cargo.toml

crates/bench/benches/grouping.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
