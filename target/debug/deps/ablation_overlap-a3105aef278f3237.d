/root/repo/target/debug/deps/ablation_overlap-a3105aef278f3237.d: crates/bench/src/bin/ablation_overlap.rs

/root/repo/target/debug/deps/ablation_overlap-a3105aef278f3237: crates/bench/src/bin/ablation_overlap.rs

crates/bench/src/bin/ablation_overlap.rs:
