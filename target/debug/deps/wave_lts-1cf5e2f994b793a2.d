/root/repo/target/debug/deps/wave_lts-1cf5e2f994b793a2.d: src/lib.rs

/root/repo/target/debug/deps/wave_lts-1cf5e2f994b793a2: src/lib.rs

src/lib.rs:
