/root/repo/target/debug/deps/verification-93b0ff794981cef0.d: crates/bench/src/bin/verification.rs

/root/repo/target/debug/deps/verification-93b0ff794981cef0: crates/bench/src/bin/verification.rs

crates/bench/src/bin/verification.rs:
