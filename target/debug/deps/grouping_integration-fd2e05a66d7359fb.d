/root/repo/target/debug/deps/grouping_integration-fd2e05a66d7359fb.d: tests/grouping_integration.rs Cargo.toml

/root/repo/target/debug/deps/libgrouping_integration-fd2e05a66d7359fb.rmeta: tests/grouping_integration.rs Cargo.toml

tests/grouping_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
