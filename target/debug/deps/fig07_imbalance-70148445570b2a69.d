/root/repo/target/debug/deps/fig07_imbalance-70148445570b2a69.d: crates/bench/src/bin/fig07_imbalance.rs

/root/repo/target/debug/deps/fig07_imbalance-70148445570b2a69: crates/bench/src/bin/fig07_imbalance.rs

crates/bench/src/bin/fig07_imbalance.rs:
