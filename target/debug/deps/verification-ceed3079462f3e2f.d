/root/repo/target/debug/deps/verification-ceed3079462f3e2f.d: crates/bench/src/bin/verification.rs

/root/repo/target/debug/deps/verification-ceed3079462f3e2f: crates/bench/src/bin/verification.rs

crates/bench/src/bin/verification.rs:
