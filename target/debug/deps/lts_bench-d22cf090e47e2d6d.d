/root/repo/target/debug/deps/lts_bench-d22cf090e47e2d6d.d: crates/bench/src/lib.rs crates/bench/src/scaling.rs Cargo.toml

/root/repo/target/debug/deps/liblts_bench-d22cf090e47e2d6d.rmeta: crates/bench/src/lib.rs crates/bench/src/scaling.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
