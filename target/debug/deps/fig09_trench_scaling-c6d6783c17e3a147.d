/root/repo/target/debug/deps/fig09_trench_scaling-c6d6783c17e3a147.d: crates/bench/src/bin/fig09_trench_scaling.rs

/root/repo/target/debug/deps/fig09_trench_scaling-c6d6783c17e3a147: crates/bench/src/bin/fig09_trench_scaling.rs

crates/bench/src/bin/fig09_trench_scaling.rs:
