/root/repo/target/debug/deps/fig13_large_trench-a339d202914e9f38.d: crates/bench/src/bin/fig13_large_trench.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_large_trench-a339d202914e9f38.rmeta: crates/bench/src/bin/fig13_large_trench.rs Cargo.toml

crates/bench/src/bin/fig13_large_trench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
