/root/repo/target/debug/deps/fig11_crust_scaling-a6004ee7fb4384c4.d: crates/bench/src/bin/fig11_crust_scaling.rs

/root/repo/target/debug/deps/fig11_crust_scaling-a6004ee7fb4384c4: crates/bench/src/bin/fig11_crust_scaling.rs

crates/bench/src/bin/fig11_crust_scaling.rs:
