/root/repo/target/debug/deps/lts_sem-194f7b15c97d4ee0.d: crates/sem/src/lib.rs crates/sem/src/acoustic.rs crates/sem/src/boundary.rs crates/sem/src/dofmap.rs crates/sem/src/elastic.rs crates/sem/src/gll.rs crates/sem/src/kernel.rs crates/sem/src/parallel.rs crates/sem/src/record.rs crates/sem/src/unstructured.rs

/root/repo/target/debug/deps/lts_sem-194f7b15c97d4ee0: crates/sem/src/lib.rs crates/sem/src/acoustic.rs crates/sem/src/boundary.rs crates/sem/src/dofmap.rs crates/sem/src/elastic.rs crates/sem/src/gll.rs crates/sem/src/kernel.rs crates/sem/src/parallel.rs crates/sem/src/record.rs crates/sem/src/unstructured.rs

crates/sem/src/lib.rs:
crates/sem/src/acoustic.rs:
crates/sem/src/boundary.rs:
crates/sem/src/dofmap.rs:
crates/sem/src/elastic.rs:
crates/sem/src/gll.rs:
crates/sem/src/kernel.rs:
crates/sem/src/parallel.rs:
crates/sem/src/record.rs:
crates/sem/src/unstructured.rs:
