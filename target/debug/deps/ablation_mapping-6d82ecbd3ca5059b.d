/root/repo/target/debug/deps/ablation_mapping-6d82ecbd3ca5059b.d: crates/bench/src/bin/ablation_mapping.rs Cargo.toml

/root/repo/target/debug/deps/libablation_mapping-6d82ecbd3ca5059b.rmeta: crates/bench/src/bin/ablation_mapping.rs Cargo.toml

crates/bench/src/bin/ablation_mapping.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
