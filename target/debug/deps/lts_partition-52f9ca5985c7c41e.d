/root/repo/target/debug/deps/lts_partition-52f9ca5985c7c41e.d: crates/partition/src/lib.rs crates/partition/src/assignment.rs crates/partition/src/costed.rs crates/partition/src/graph.rs crates/partition/src/hgraph.rs crates/partition/src/hmultilevel.rs crates/partition/src/kway.rs crates/partition/src/metrics.rs crates/partition/src/multilevel.rs crates/partition/src/refine.rs crates/partition/src/restricted.rs crates/partition/src/scotch_p.rs crates/partition/src/strategy.rs Cargo.toml

/root/repo/target/debug/deps/liblts_partition-52f9ca5985c7c41e.rmeta: crates/partition/src/lib.rs crates/partition/src/assignment.rs crates/partition/src/costed.rs crates/partition/src/graph.rs crates/partition/src/hgraph.rs crates/partition/src/hmultilevel.rs crates/partition/src/kway.rs crates/partition/src/metrics.rs crates/partition/src/multilevel.rs crates/partition/src/refine.rs crates/partition/src/restricted.rs crates/partition/src/scotch_p.rs crates/partition/src/strategy.rs Cargo.toml

crates/partition/src/lib.rs:
crates/partition/src/assignment.rs:
crates/partition/src/costed.rs:
crates/partition/src/graph.rs:
crates/partition/src/hgraph.rs:
crates/partition/src/hmultilevel.rs:
crates/partition/src/kway.rs:
crates/partition/src/metrics.rs:
crates/partition/src/multilevel.rs:
crates/partition/src/refine.rs:
crates/partition/src/restricted.rs:
crates/partition/src/scotch_p.rs:
crates/partition/src/strategy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
