/root/repo/target/debug/deps/fig02_cutcost-522242283ec963e8.d: crates/bench/src/bin/fig02_cutcost.rs Cargo.toml

/root/repo/target/debug/deps/libfig02_cutcost-522242283ec963e8.rmeta: crates/bench/src/bin/fig02_cutcost.rs Cargo.toml

crates/bench/src/bin/fig02_cutcost.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
