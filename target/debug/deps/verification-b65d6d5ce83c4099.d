/root/repo/target/debug/deps/verification-b65d6d5ce83c4099.d: crates/bench/src/bin/verification.rs

/root/repo/target/debug/deps/verification-b65d6d5ce83c4099: crates/bench/src/bin/verification.rs

crates/bench/src/bin/verification.rs:
