/root/repo/target/debug/deps/eq09_serial_efficiency-0a0bc7157ece3299.d: crates/bench/src/bin/eq09_serial_efficiency.rs

/root/repo/target/debug/deps/eq09_serial_efficiency-0a0bc7157ece3299: crates/bench/src/bin/eq09_serial_efficiency.rs

crates/bench/src/bin/eq09_serial_efficiency.rs:
