/root/repo/target/debug/deps/ablation_coarse_restricted-aa2fcf6ebed6c416.d: crates/bench/src/bin/ablation_coarse_restricted.rs

/root/repo/target/debug/deps/ablation_coarse_restricted-aa2fcf6ebed6c416: crates/bench/src/bin/ablation_coarse_restricted.rs

crates/bench/src/bin/ablation_coarse_restricted.rs:
