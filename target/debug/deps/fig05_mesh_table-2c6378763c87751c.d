/root/repo/target/debug/deps/fig05_mesh_table-2c6378763c87751c.d: crates/bench/src/bin/fig05_mesh_table.rs

/root/repo/target/debug/deps/fig05_mesh_table-2c6378763c87751c: crates/bench/src/bin/fig05_mesh_table.rs

crates/bench/src/bin/fig05_mesh_table.rs:
