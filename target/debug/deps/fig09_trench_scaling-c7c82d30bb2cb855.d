/root/repo/target/debug/deps/fig09_trench_scaling-c7c82d30bb2cb855.d: crates/bench/src/bin/fig09_trench_scaling.rs

/root/repo/target/debug/deps/fig09_trench_scaling-c7c82d30bb2cb855: crates/bench/src/bin/fig09_trench_scaling.rs

crates/bench/src/bin/fig09_trench_scaling.rs:
