/root/repo/target/debug/deps/lts_step-2a397c3dede977bd.d: crates/bench/benches/lts_step.rs Cargo.toml

/root/repo/target/debug/deps/liblts_step-2a397c3dede977bd.rmeta: crates/bench/benches/lts_step.rs Cargo.toml

crates/bench/benches/lts_step.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
