/root/repo/target/debug/deps/fig10_embedding_scaling-c6a019524fb0eaa9.d: crates/bench/src/bin/fig10_embedding_scaling.rs

/root/repo/target/debug/deps/fig10_embedding_scaling-c6a019524fb0eaa9: crates/bench/src/bin/fig10_embedding_scaling.rs

crates/bench/src/bin/fig10_embedding_scaling.rs:
