/root/repo/target/debug/deps/wave_lts-db6acc6897ec272c.d: src/bin/wave-lts.rs

/root/repo/target/debug/deps/wave_lts-db6acc6897ec272c: src/bin/wave-lts.rs

src/bin/wave-lts.rs:
