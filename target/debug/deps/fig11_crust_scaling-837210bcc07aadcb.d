/root/repo/target/debug/deps/fig11_crust_scaling-837210bcc07aadcb.d: crates/bench/src/bin/fig11_crust_scaling.rs

/root/repo/target/debug/deps/fig11_crust_scaling-837210bcc07aadcb: crates/bench/src/bin/fig11_crust_scaling.rs

crates/bench/src/bin/fig11_crust_scaling.rs:
