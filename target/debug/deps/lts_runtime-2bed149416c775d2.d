/root/repo/target/debug/deps/lts_runtime-2bed149416c775d2.d: crates/runtime/src/lib.rs crates/runtime/src/distributed.rs crates/runtime/src/exchange.rs crates/runtime/src/local.rs crates/runtime/src/stats.rs

/root/repo/target/debug/deps/liblts_runtime-2bed149416c775d2.rlib: crates/runtime/src/lib.rs crates/runtime/src/distributed.rs crates/runtime/src/exchange.rs crates/runtime/src/local.rs crates/runtime/src/stats.rs

/root/repo/target/debug/deps/liblts_runtime-2bed149416c775d2.rmeta: crates/runtime/src/lib.rs crates/runtime/src/distributed.rs crates/runtime/src/exchange.rs crates/runtime/src/local.rs crates/runtime/src/stats.rs

crates/runtime/src/lib.rs:
crates/runtime/src/distributed.rs:
crates/runtime/src/exchange.rs:
crates/runtime/src/local.rs:
crates/runtime/src/stats.rs:
