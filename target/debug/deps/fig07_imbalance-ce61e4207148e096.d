/root/repo/target/debug/deps/fig07_imbalance-ce61e4207148e096.d: crates/bench/src/bin/fig07_imbalance.rs

/root/repo/target/debug/deps/fig07_imbalance-ce61e4207148e096: crates/bench/src/bin/fig07_imbalance.rs

crates/bench/src/bin/fig07_imbalance.rs:
