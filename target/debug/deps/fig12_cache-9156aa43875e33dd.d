/root/repo/target/debug/deps/fig12_cache-9156aa43875e33dd.d: crates/bench/src/bin/fig12_cache.rs

/root/repo/target/debug/deps/fig12_cache-9156aa43875e33dd: crates/bench/src/bin/fig12_cache.rs

crates/bench/src/bin/fig12_cache.rs:
