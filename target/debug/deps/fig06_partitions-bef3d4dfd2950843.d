/root/repo/target/debug/deps/fig06_partitions-bef3d4dfd2950843.d: crates/bench/src/bin/fig06_partitions.rs

/root/repo/target/debug/deps/fig06_partitions-bef3d4dfd2950843: crates/bench/src/bin/fig06_partitions.rs

crates/bench/src/bin/fig06_partitions.rs:
