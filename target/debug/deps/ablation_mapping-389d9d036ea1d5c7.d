/root/repo/target/debug/deps/ablation_mapping-389d9d036ea1d5c7.d: crates/bench/src/bin/ablation_mapping.rs Cargo.toml

/root/repo/target/debug/deps/libablation_mapping-389d9d036ea1d5c7.rmeta: crates/bench/src/bin/ablation_mapping.rs Cargo.toml

crates/bench/src/bin/ablation_mapping.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
