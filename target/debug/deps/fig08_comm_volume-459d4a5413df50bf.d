/root/repo/target/debug/deps/fig08_comm_volume-459d4a5413df50bf.d: crates/bench/src/bin/fig08_comm_volume.rs

/root/repo/target/debug/deps/fig08_comm_volume-459d4a5413df50bf: crates/bench/src/bin/fig08_comm_volume.rs

crates/bench/src/bin/fig08_comm_volume.rs:
