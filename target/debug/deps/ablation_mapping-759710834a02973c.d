/root/repo/target/debug/deps/ablation_mapping-759710834a02973c.d: crates/bench/src/bin/ablation_mapping.rs

/root/repo/target/debug/deps/ablation_mapping-759710834a02973c: crates/bench/src/bin/ablation_mapping.rs

crates/bench/src/bin/ablation_mapping.rs:
