/root/repo/target/debug/deps/fig05_mesh_table-72efb28586c21d39.d: crates/bench/src/bin/fig05_mesh_table.rs

/root/repo/target/debug/deps/fig05_mesh_table-72efb28586c21d39: crates/bench/src/bin/fig05_mesh_table.rs

crates/bench/src/bin/fig05_mesh_table.rs:
