/root/repo/target/debug/deps/fig01_timeline-0fe9f3723093faa6.d: crates/bench/src/bin/fig01_timeline.rs

/root/repo/target/debug/deps/fig01_timeline-0fe9f3723093faa6: crates/bench/src/bin/fig01_timeline.rs

crates/bench/src/bin/fig01_timeline.rs:
