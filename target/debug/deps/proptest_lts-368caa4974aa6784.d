/root/repo/target/debug/deps/proptest_lts-368caa4974aa6784.d: tests/proptest_lts.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_lts-368caa4974aa6784.rmeta: tests/proptest_lts.rs Cargo.toml

tests/proptest_lts.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
