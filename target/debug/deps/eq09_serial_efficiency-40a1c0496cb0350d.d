/root/repo/target/debug/deps/eq09_serial_efficiency-40a1c0496cb0350d.d: crates/bench/src/bin/eq09_serial_efficiency.rs

/root/repo/target/debug/deps/eq09_serial_efficiency-40a1c0496cb0350d: crates/bench/src/bin/eq09_serial_efficiency.rs

crates/bench/src/bin/eq09_serial_efficiency.rs:
