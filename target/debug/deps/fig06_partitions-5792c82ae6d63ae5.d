/root/repo/target/debug/deps/fig06_partitions-5792c82ae6d63ae5.d: crates/bench/src/bin/fig06_partitions.rs

/root/repo/target/debug/deps/fig06_partitions-5792c82ae6d63ae5: crates/bench/src/bin/fig06_partitions.rs

crates/bench/src/bin/fig06_partitions.rs:
