/root/repo/target/debug/deps/ablation_overlap-020c42aaa07417fb.d: crates/bench/src/bin/ablation_overlap.rs

/root/repo/target/debug/deps/ablation_overlap-020c42aaa07417fb: crates/bench/src/bin/ablation_overlap.rs

crates/bench/src/bin/ablation_overlap.rs:
