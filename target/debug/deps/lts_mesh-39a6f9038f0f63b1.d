/root/repo/target/debug/deps/lts_mesh-39a6f9038f0f63b1.d: crates/mesh/src/lib.rs crates/mesh/src/benchmarks.rs crates/mesh/src/dual.rs crates/mesh/src/grading.rs crates/mesh/src/hex.rs crates/mesh/src/hypergraph.rs crates/mesh/src/io.rs crates/mesh/src/levels.rs crates/mesh/src/quad.rs crates/mesh/src/random_media.rs Cargo.toml

/root/repo/target/debug/deps/liblts_mesh-39a6f9038f0f63b1.rmeta: crates/mesh/src/lib.rs crates/mesh/src/benchmarks.rs crates/mesh/src/dual.rs crates/mesh/src/grading.rs crates/mesh/src/hex.rs crates/mesh/src/hypergraph.rs crates/mesh/src/io.rs crates/mesh/src/levels.rs crates/mesh/src/quad.rs crates/mesh/src/random_media.rs Cargo.toml

crates/mesh/src/lib.rs:
crates/mesh/src/benchmarks.rs:
crates/mesh/src/dual.rs:
crates/mesh/src/grading.rs:
crates/mesh/src/hex.rs:
crates/mesh/src/hypergraph.rs:
crates/mesh/src/io.rs:
crates/mesh/src/levels.rs:
crates/mesh/src/quad.rs:
crates/mesh/src/random_media.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
