/root/repo/target/debug/deps/proptest_sem-616b2292ceda1231.d: crates/sem/tests/proptest_sem.rs

/root/repo/target/debug/deps/proptest_sem-616b2292ceda1231: crates/sem/tests/proptest_sem.rs

crates/sem/tests/proptest_sem.rs:
