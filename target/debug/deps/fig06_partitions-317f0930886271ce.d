/root/repo/target/debug/deps/fig06_partitions-317f0930886271ce.d: crates/bench/src/bin/fig06_partitions.rs

/root/repo/target/debug/deps/fig06_partitions-317f0930886271ce: crates/bench/src/bin/fig06_partitions.rs

crates/bench/src/bin/fig06_partitions.rs:
