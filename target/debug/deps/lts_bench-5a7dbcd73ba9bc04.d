/root/repo/target/debug/deps/lts_bench-5a7dbcd73ba9bc04.d: crates/bench/src/lib.rs crates/bench/src/scaling.rs

/root/repo/target/debug/deps/liblts_bench-5a7dbcd73ba9bc04.rlib: crates/bench/src/lib.rs crates/bench/src/scaling.rs

/root/repo/target/debug/deps/liblts_bench-5a7dbcd73ba9bc04.rmeta: crates/bench/src/lib.rs crates/bench/src/scaling.rs

crates/bench/src/lib.rs:
crates/bench/src/scaling.rs:
