/root/repo/target/debug/deps/fig13_large_trench-1bba4709623c90e1.d: crates/bench/src/bin/fig13_large_trench.rs

/root/repo/target/debug/deps/fig13_large_trench-1bba4709623c90e1: crates/bench/src/bin/fig13_large_trench.rs

crates/bench/src/bin/fig13_large_trench.rs:
