/root/repo/target/debug/deps/fig04_meshes-9fc479aa7b8d6b58.d: crates/bench/src/bin/fig04_meshes.rs Cargo.toml

/root/repo/target/debug/deps/libfig04_meshes-9fc479aa7b8d6b58.rmeta: crates/bench/src/bin/fig04_meshes.rs Cargo.toml

crates/bench/src/bin/fig04_meshes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
