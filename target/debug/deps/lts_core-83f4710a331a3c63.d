/root/repo/target/debug/deps/lts_core-83f4710a331a3c63.d: crates/core/src/lib.rs crates/core/src/chain1d.rs crates/core/src/energy.rs crates/core/src/lts.rs crates/core/src/newmark.rs crates/core/src/operator.rs crates/core/src/reference.rs crates/core/src/setup.rs crates/core/src/simulation.rs crates/core/src/spectral.rs crates/core/src/two_level.rs Cargo.toml

/root/repo/target/debug/deps/liblts_core-83f4710a331a3c63.rmeta: crates/core/src/lib.rs crates/core/src/chain1d.rs crates/core/src/energy.rs crates/core/src/lts.rs crates/core/src/newmark.rs crates/core/src/operator.rs crates/core/src/reference.rs crates/core/src/setup.rs crates/core/src/simulation.rs crates/core/src/spectral.rs crates/core/src/two_level.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/chain1d.rs:
crates/core/src/energy.rs:
crates/core/src/lts.rs:
crates/core/src/newmark.rs:
crates/core/src/operator.rs:
crates/core/src/reference.rs:
crates/core/src/setup.rs:
crates/core/src/simulation.rs:
crates/core/src/spectral.rs:
crates/core/src/two_level.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
