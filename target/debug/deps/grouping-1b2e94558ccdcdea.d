/root/repo/target/debug/deps/grouping-1b2e94558ccdcdea.d: crates/bench/benches/grouping.rs

/root/repo/target/debug/deps/grouping-1b2e94558ccdcdea: crates/bench/benches/grouping.rs

crates/bench/benches/grouping.rs:
