/root/repo/target/debug/deps/fig10_embedding_scaling-d1322632a7890148.d: crates/bench/src/bin/fig10_embedding_scaling.rs

/root/repo/target/debug/deps/fig10_embedding_scaling-d1322632a7890148: crates/bench/src/bin/fig10_embedding_scaling.rs

crates/bench/src/bin/fig10_embedding_scaling.rs:
