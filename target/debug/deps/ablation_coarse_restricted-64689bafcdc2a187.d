/root/repo/target/debug/deps/ablation_coarse_restricted-64689bafcdc2a187.d: crates/bench/src/bin/ablation_coarse_restricted.rs

/root/repo/target/debug/deps/ablation_coarse_restricted-64689bafcdc2a187: crates/bench/src/bin/ablation_coarse_restricted.rs

crates/bench/src/bin/ablation_coarse_restricted.rs:
