/root/repo/target/debug/deps/fig04_meshes-31d25fa4bb1a9770.d: crates/bench/src/bin/fig04_meshes.rs

/root/repo/target/debug/deps/fig04_meshes-31d25fa4bb1a9770: crates/bench/src/bin/fig04_meshes.rs

crates/bench/src/bin/fig04_meshes.rs:
