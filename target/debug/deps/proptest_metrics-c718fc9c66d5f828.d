/root/repo/target/debug/deps/proptest_metrics-c718fc9c66d5f828.d: crates/partition/tests/proptest_metrics.rs

/root/repo/target/debug/deps/proptest_metrics-c718fc9c66d5f828: crates/partition/tests/proptest_metrics.rs

crates/partition/tests/proptest_metrics.rs:
