/root/repo/target/debug/deps/wave_lts-091284bd41c8b44a.d: src/lib.rs

/root/repo/target/debug/deps/libwave_lts-091284bd41c8b44a.rlib: src/lib.rs

/root/repo/target/debug/deps/libwave_lts-091284bd41c8b44a.rmeta: src/lib.rs

src/lib.rs:
