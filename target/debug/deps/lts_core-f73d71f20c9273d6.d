/root/repo/target/debug/deps/lts_core-f73d71f20c9273d6.d: crates/core/src/lib.rs crates/core/src/chain1d.rs crates/core/src/energy.rs crates/core/src/lts.rs crates/core/src/newmark.rs crates/core/src/operator.rs crates/core/src/reference.rs crates/core/src/setup.rs crates/core/src/simulation.rs crates/core/src/spectral.rs crates/core/src/two_level.rs

/root/repo/target/debug/deps/lts_core-f73d71f20c9273d6: crates/core/src/lib.rs crates/core/src/chain1d.rs crates/core/src/energy.rs crates/core/src/lts.rs crates/core/src/newmark.rs crates/core/src/operator.rs crates/core/src/reference.rs crates/core/src/setup.rs crates/core/src/simulation.rs crates/core/src/spectral.rs crates/core/src/two_level.rs

crates/core/src/lib.rs:
crates/core/src/chain1d.rs:
crates/core/src/energy.rs:
crates/core/src/lts.rs:
crates/core/src/newmark.rs:
crates/core/src/operator.rs:
crates/core/src/reference.rs:
crates/core/src/setup.rs:
crates/core/src/simulation.rs:
crates/core/src/spectral.rs:
crates/core/src/two_level.rs:
