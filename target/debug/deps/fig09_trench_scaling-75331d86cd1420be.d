/root/repo/target/debug/deps/fig09_trench_scaling-75331d86cd1420be.d: crates/bench/src/bin/fig09_trench_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libfig09_trench_scaling-75331d86cd1420be.rmeta: crates/bench/src/bin/fig09_trench_scaling.rs Cargo.toml

crates/bench/src/bin/fig09_trench_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
