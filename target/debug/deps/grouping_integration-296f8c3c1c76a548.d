/root/repo/target/debug/deps/grouping_integration-296f8c3c1c76a548.d: tests/grouping_integration.rs

/root/repo/target/debug/deps/grouping_integration-296f8c3c1c76a548: tests/grouping_integration.rs

tests/grouping_integration.rs:
