/root/repo/target/debug/deps/fig02_cutcost-03b3da8458584bc3.d: crates/bench/src/bin/fig02_cutcost.rs

/root/repo/target/debug/deps/fig02_cutcost-03b3da8458584bc3: crates/bench/src/bin/fig02_cutcost.rs

crates/bench/src/bin/fig02_cutcost.rs:
