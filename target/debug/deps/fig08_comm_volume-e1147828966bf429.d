/root/repo/target/debug/deps/fig08_comm_volume-e1147828966bf429.d: crates/bench/src/bin/fig08_comm_volume.rs

/root/repo/target/debug/deps/fig08_comm_volume-e1147828966bf429: crates/bench/src/bin/fig08_comm_volume.rs

crates/bench/src/bin/fig08_comm_volume.rs:
