/root/repo/target/debug/deps/eq09_serial_efficiency-58b5c29f0620c13a.d: crates/bench/src/bin/eq09_serial_efficiency.rs

/root/repo/target/debug/deps/eq09_serial_efficiency-58b5c29f0620c13a: crates/bench/src/bin/eq09_serial_efficiency.rs

crates/bench/src/bin/eq09_serial_efficiency.rs:
