/root/repo/target/debug/deps/ablation_levels-3f9780ee02e9b33c.d: crates/bench/src/bin/ablation_levels.rs Cargo.toml

/root/repo/target/debug/deps/libablation_levels-3f9780ee02e9b33c.rmeta: crates/bench/src/bin/ablation_levels.rs Cargo.toml

crates/bench/src/bin/ablation_levels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
