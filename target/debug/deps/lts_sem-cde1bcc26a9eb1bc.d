/root/repo/target/debug/deps/lts_sem-cde1bcc26a9eb1bc.d: crates/sem/src/lib.rs crates/sem/src/acoustic.rs crates/sem/src/boundary.rs crates/sem/src/dofmap.rs crates/sem/src/elastic.rs crates/sem/src/gll.rs crates/sem/src/kernel.rs crates/sem/src/parallel.rs crates/sem/src/record.rs crates/sem/src/unstructured.rs Cargo.toml

/root/repo/target/debug/deps/liblts_sem-cde1bcc26a9eb1bc.rmeta: crates/sem/src/lib.rs crates/sem/src/acoustic.rs crates/sem/src/boundary.rs crates/sem/src/dofmap.rs crates/sem/src/elastic.rs crates/sem/src/gll.rs crates/sem/src/kernel.rs crates/sem/src/parallel.rs crates/sem/src/record.rs crates/sem/src/unstructured.rs Cargo.toml

crates/sem/src/lib.rs:
crates/sem/src/acoustic.rs:
crates/sem/src/boundary.rs:
crates/sem/src/dofmap.rs:
crates/sem/src/elastic.rs:
crates/sem/src/gll.rs:
crates/sem/src/kernel.rs:
crates/sem/src/parallel.rs:
crates/sem/src/record.rs:
crates/sem/src/unstructured.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
