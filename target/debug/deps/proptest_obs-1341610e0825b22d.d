/root/repo/target/debug/deps/proptest_obs-1341610e0825b22d.d: tests/proptest_obs.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_obs-1341610e0825b22d.rmeta: tests/proptest_obs.rs Cargo.toml

tests/proptest_obs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
