/root/repo/target/debug/deps/lts_sem_integration-a4a57bf4060861c1.d: tests/lts_sem_integration.rs Cargo.toml

/root/repo/target/debug/deps/liblts_sem_integration-a4a57bf4060861c1.rmeta: tests/lts_sem_integration.rs Cargo.toml

tests/lts_sem_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
