/root/repo/target/debug/deps/fig05_mesh_table-1375e338dad41331.d: crates/bench/src/bin/fig05_mesh_table.rs

/root/repo/target/debug/deps/fig05_mesh_table-1375e338dad41331: crates/bench/src/bin/fig05_mesh_table.rs

crates/bench/src/bin/fig05_mesh_table.rs:
