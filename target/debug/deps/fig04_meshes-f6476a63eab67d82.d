/root/repo/target/debug/deps/fig04_meshes-f6476a63eab67d82.d: crates/bench/src/bin/fig04_meshes.rs

/root/repo/target/debug/deps/fig04_meshes-f6476a63eab67d82: crates/bench/src/bin/fig04_meshes.rs

crates/bench/src/bin/fig04_meshes.rs:
