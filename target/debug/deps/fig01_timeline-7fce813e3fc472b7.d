/root/repo/target/debug/deps/fig01_timeline-7fce813e3fc472b7.d: crates/bench/src/bin/fig01_timeline.rs

/root/repo/target/debug/deps/fig01_timeline-7fce813e3fc472b7: crates/bench/src/bin/fig01_timeline.rs

crates/bench/src/bin/fig01_timeline.rs:
