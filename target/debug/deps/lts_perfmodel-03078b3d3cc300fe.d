/root/repo/target/debug/deps/lts_perfmodel-03078b3d3cc300fe.d: crates/perfmodel/src/lib.rs crates/perfmodel/src/cache.rs crates/perfmodel/src/cluster.rs

/root/repo/target/debug/deps/lts_perfmodel-03078b3d3cc300fe: crates/perfmodel/src/lib.rs crates/perfmodel/src/cache.rs crates/perfmodel/src/cluster.rs

crates/perfmodel/src/lib.rs:
crates/perfmodel/src/cache.rs:
crates/perfmodel/src/cluster.rs:
