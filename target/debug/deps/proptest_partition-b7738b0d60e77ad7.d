/root/repo/target/debug/deps/proptest_partition-b7738b0d60e77ad7.d: tests/proptest_partition.rs

/root/repo/target/debug/deps/proptest_partition-b7738b0d60e77ad7: tests/proptest_partition.rs

tests/proptest_partition.rs:
