/root/repo/target/debug/deps/wave_lts-3bd42d214c1f00e9.d: src/bin/wave-lts.rs

/root/repo/target/debug/deps/wave_lts-3bd42d214c1f00e9: src/bin/wave-lts.rs

src/bin/wave-lts.rs:
