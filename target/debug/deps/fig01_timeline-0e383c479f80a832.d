/root/repo/target/debug/deps/fig01_timeline-0e383c479f80a832.d: crates/bench/src/bin/fig01_timeline.rs

/root/repo/target/debug/deps/fig01_timeline-0e383c479f80a832: crates/bench/src/bin/fig01_timeline.rs

crates/bench/src/bin/fig01_timeline.rs:
