/root/repo/target/debug/deps/lts_perfmodel-801189973e47453d.d: crates/perfmodel/src/lib.rs crates/perfmodel/src/cache.rs crates/perfmodel/src/cluster.rs

/root/repo/target/debug/deps/lts_perfmodel-801189973e47453d: crates/perfmodel/src/lib.rs crates/perfmodel/src/cache.rs crates/perfmodel/src/cluster.rs

crates/perfmodel/src/lib.rs:
crates/perfmodel/src/cache.rs:
crates/perfmodel/src/cluster.rs:
