/root/repo/target/debug/deps/verification-e305a212b2a926dd.d: crates/bench/src/bin/verification.rs

/root/repo/target/debug/deps/verification-e305a212b2a926dd: crates/bench/src/bin/verification.rs

crates/bench/src/bin/verification.rs:
