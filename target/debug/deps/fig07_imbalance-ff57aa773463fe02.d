/root/repo/target/debug/deps/fig07_imbalance-ff57aa773463fe02.d: crates/bench/src/bin/fig07_imbalance.rs Cargo.toml

/root/repo/target/debug/deps/libfig07_imbalance-ff57aa773463fe02.rmeta: crates/bench/src/bin/fig07_imbalance.rs Cargo.toml

crates/bench/src/bin/fig07_imbalance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
