/root/repo/target/debug/deps/partitioners-cc28b7173405e5f9.d: crates/bench/benches/partitioners.rs Cargo.toml

/root/repo/target/debug/deps/libpartitioners-cc28b7173405e5f9.rmeta: crates/bench/benches/partitioners.rs Cargo.toml

crates/bench/benches/partitioners.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
