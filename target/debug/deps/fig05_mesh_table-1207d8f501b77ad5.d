/root/repo/target/debug/deps/fig05_mesh_table-1207d8f501b77ad5.d: crates/bench/src/bin/fig05_mesh_table.rs

/root/repo/target/debug/deps/fig05_mesh_table-1207d8f501b77ad5: crates/bench/src/bin/fig05_mesh_table.rs

crates/bench/src/bin/fig05_mesh_table.rs:
