/root/repo/target/debug/deps/ablation_levels-7ab89e74b386b075.d: crates/bench/src/bin/ablation_levels.rs

/root/repo/target/debug/deps/ablation_levels-7ab89e74b386b075: crates/bench/src/bin/ablation_levels.rs

crates/bench/src/bin/ablation_levels.rs:
