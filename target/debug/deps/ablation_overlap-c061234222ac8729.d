/root/repo/target/debug/deps/ablation_overlap-c061234222ac8729.d: crates/bench/src/bin/ablation_overlap.rs

/root/repo/target/debug/deps/ablation_overlap-c061234222ac8729: crates/bench/src/bin/ablation_overlap.rs

crates/bench/src/bin/ablation_overlap.rs:
