/root/repo/target/debug/deps/fig02_cutcost-22e86c6ab1945b4c.d: crates/bench/src/bin/fig02_cutcost.rs

/root/repo/target/debug/deps/fig02_cutcost-22e86c6ab1945b4c: crates/bench/src/bin/fig02_cutcost.rs

crates/bench/src/bin/fig02_cutcost.rs:
