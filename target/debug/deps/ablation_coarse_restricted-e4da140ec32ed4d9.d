/root/repo/target/debug/deps/ablation_coarse_restricted-e4da140ec32ed4d9.d: crates/bench/src/bin/ablation_coarse_restricted.rs

/root/repo/target/debug/deps/ablation_coarse_restricted-e4da140ec32ed4d9: crates/bench/src/bin/ablation_coarse_restricted.rs

crates/bench/src/bin/ablation_coarse_restricted.rs:
