/root/repo/target/debug/deps/lts_bench-50eb03149ee3f0f7.d: crates/bench/src/lib.rs crates/bench/src/scaling.rs

/root/repo/target/debug/deps/liblts_bench-50eb03149ee3f0f7.rlib: crates/bench/src/lib.rs crates/bench/src/scaling.rs

/root/repo/target/debug/deps/liblts_bench-50eb03149ee3f0f7.rmeta: crates/bench/src/lib.rs crates/bench/src/scaling.rs

crates/bench/src/lib.rs:
crates/bench/src/scaling.rs:
