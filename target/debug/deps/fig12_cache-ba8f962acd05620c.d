/root/repo/target/debug/deps/fig12_cache-ba8f962acd05620c.d: crates/bench/src/bin/fig12_cache.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_cache-ba8f962acd05620c.rmeta: crates/bench/src/bin/fig12_cache.rs Cargo.toml

crates/bench/src/bin/fig12_cache.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
