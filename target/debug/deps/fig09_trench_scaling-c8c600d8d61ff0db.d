/root/repo/target/debug/deps/fig09_trench_scaling-c8c600d8d61ff0db.d: crates/bench/src/bin/fig09_trench_scaling.rs

/root/repo/target/debug/deps/fig09_trench_scaling-c8c600d8d61ff0db: crates/bench/src/bin/fig09_trench_scaling.rs

crates/bench/src/bin/fig09_trench_scaling.rs:
