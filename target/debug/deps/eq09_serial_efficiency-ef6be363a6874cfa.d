/root/repo/target/debug/deps/eq09_serial_efficiency-ef6be363a6874cfa.d: crates/bench/src/bin/eq09_serial_efficiency.rs Cargo.toml

/root/repo/target/debug/deps/libeq09_serial_efficiency-ef6be363a6874cfa.rmeta: crates/bench/src/bin/eq09_serial_efficiency.rs Cargo.toml

crates/bench/src/bin/eq09_serial_efficiency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
