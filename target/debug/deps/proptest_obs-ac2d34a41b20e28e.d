/root/repo/target/debug/deps/proptest_obs-ac2d34a41b20e28e.d: tests/proptest_obs.rs

/root/repo/target/debug/deps/proptest_obs-ac2d34a41b20e28e: tests/proptest_obs.rs

tests/proptest_obs.rs:
