/root/repo/target/debug/deps/ablation_overlap-81c6028286776849.d: crates/bench/src/bin/ablation_overlap.rs

/root/repo/target/debug/deps/ablation_overlap-81c6028286776849: crates/bench/src/bin/ablation_overlap.rs

crates/bench/src/bin/ablation_overlap.rs:
