/root/repo/target/debug/deps/wave_lts-1426ee62783c3f06.d: src/bin/wave-lts.rs

/root/repo/target/debug/deps/wave_lts-1426ee62783c3f06: src/bin/wave-lts.rs

src/bin/wave-lts.rs:
