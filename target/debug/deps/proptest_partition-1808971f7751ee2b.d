/root/repo/target/debug/deps/proptest_partition-1808971f7751ee2b.d: tests/proptest_partition.rs

/root/repo/target/debug/deps/proptest_partition-1808971f7751ee2b: tests/proptest_partition.rs

tests/proptest_partition.rs:
