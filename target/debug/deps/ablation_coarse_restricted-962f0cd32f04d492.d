/root/repo/target/debug/deps/ablation_coarse_restricted-962f0cd32f04d492.d: crates/bench/src/bin/ablation_coarse_restricted.rs Cargo.toml

/root/repo/target/debug/deps/libablation_coarse_restricted-962f0cd32f04d492.rmeta: crates/bench/src/bin/ablation_coarse_restricted.rs Cargo.toml

crates/bench/src/bin/ablation_coarse_restricted.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
