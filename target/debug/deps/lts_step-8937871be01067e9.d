/root/repo/target/debug/deps/lts_step-8937871be01067e9.d: crates/bench/benches/lts_step.rs

/root/repo/target/debug/deps/lts_step-8937871be01067e9: crates/bench/benches/lts_step.rs

crates/bench/benches/lts_step.rs:
