/root/repo/target/debug/deps/fig01_timeline-14452ec0b187ff80.d: crates/bench/src/bin/fig01_timeline.rs

/root/repo/target/debug/deps/fig01_timeline-14452ec0b187ff80: crates/bench/src/bin/fig01_timeline.rs

crates/bench/src/bin/fig01_timeline.rs:
