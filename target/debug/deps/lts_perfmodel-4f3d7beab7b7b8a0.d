/root/repo/target/debug/deps/lts_perfmodel-4f3d7beab7b7b8a0.d: crates/perfmodel/src/lib.rs crates/perfmodel/src/cache.rs crates/perfmodel/src/cluster.rs Cargo.toml

/root/repo/target/debug/deps/liblts_perfmodel-4f3d7beab7b7b8a0.rmeta: crates/perfmodel/src/lib.rs crates/perfmodel/src/cache.rs crates/perfmodel/src/cluster.rs Cargo.toml

crates/perfmodel/src/lib.rs:
crates/perfmodel/src/cache.rs:
crates/perfmodel/src/cluster.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
