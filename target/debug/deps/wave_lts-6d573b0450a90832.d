/root/repo/target/debug/deps/wave_lts-6d573b0450a90832.d: src/lib.rs

/root/repo/target/debug/deps/wave_lts-6d573b0450a90832: src/lib.rs

src/lib.rs:
