/root/repo/target/debug/deps/lts_bench-e8cda7e9a19c24e6.d: crates/bench/src/lib.rs crates/bench/src/scaling.rs

/root/repo/target/debug/deps/lts_bench-e8cda7e9a19c24e6: crates/bench/src/lib.rs crates/bench/src/scaling.rs

crates/bench/src/lib.rs:
crates/bench/src/scaling.rs:
