/root/repo/target/debug/deps/lts_sem_integration-5e0cda915fb48a42.d: tests/lts_sem_integration.rs

/root/repo/target/debug/deps/lts_sem_integration-5e0cda915fb48a42: tests/lts_sem_integration.rs

tests/lts_sem_integration.rs:
