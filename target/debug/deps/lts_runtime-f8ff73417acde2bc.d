/root/repo/target/debug/deps/lts_runtime-f8ff73417acde2bc.d: crates/runtime/src/lib.rs crates/runtime/src/distributed.rs crates/runtime/src/exchange.rs crates/runtime/src/local.rs crates/runtime/src/stats.rs

/root/repo/target/debug/deps/lts_runtime-f8ff73417acde2bc: crates/runtime/src/lib.rs crates/runtime/src/distributed.rs crates/runtime/src/exchange.rs crates/runtime/src/local.rs crates/runtime/src/stats.rs

crates/runtime/src/lib.rs:
crates/runtime/src/distributed.rs:
crates/runtime/src/exchange.rs:
crates/runtime/src/local.rs:
crates/runtime/src/stats.rs:
