/root/repo/target/debug/deps/partition_integration-2e24f9126080f6d2.d: tests/partition_integration.rs Cargo.toml

/root/repo/target/debug/deps/libpartition_integration-2e24f9126080f6d2.rmeta: tests/partition_integration.rs Cargo.toml

tests/partition_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
