/root/repo/target/debug/deps/lts_bench-42c6d2bd8bfa0f67.d: crates/bench/src/lib.rs crates/bench/src/scaling.rs Cargo.toml

/root/repo/target/debug/deps/liblts_bench-42c6d2bd8bfa0f67.rmeta: crates/bench/src/lib.rs crates/bench/src/scaling.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
