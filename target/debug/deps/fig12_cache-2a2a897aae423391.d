/root/repo/target/debug/deps/fig12_cache-2a2a897aae423391.d: crates/bench/src/bin/fig12_cache.rs

/root/repo/target/debug/deps/fig12_cache-2a2a897aae423391: crates/bench/src/bin/fig12_cache.rs

crates/bench/src/bin/fig12_cache.rs:
