/root/repo/target/debug/liblts_obs.rlib: /root/repo/crates/obs/src/export.rs /root/repo/crates/obs/src/lib.rs /root/repo/crates/obs/src/registry.rs /root/repo/crates/obs/src/span.rs
