/root/repo/target/debug/examples/distributed_run-887121b411fabaf5.d: examples/distributed_run.rs Cargo.toml

/root/repo/target/debug/examples/libdistributed_run-887121b411fabaf5.rmeta: examples/distributed_run.rs Cargo.toml

examples/distributed_run.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
