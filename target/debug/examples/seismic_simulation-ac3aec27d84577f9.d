/root/repo/target/debug/examples/seismic_simulation-ac3aec27d84577f9.d: examples/seismic_simulation.rs

/root/repo/target/debug/examples/seismic_simulation-ac3aec27d84577f9: examples/seismic_simulation.rs

examples/seismic_simulation.rs:
