/root/repo/target/debug/examples/seismic_simulation-becde3d99623d723.d: examples/seismic_simulation.rs

/root/repo/target/debug/examples/seismic_simulation-becde3d99623d723: examples/seismic_simulation.rs

examples/seismic_simulation.rs:
