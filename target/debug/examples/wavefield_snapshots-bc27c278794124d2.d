/root/repo/target/debug/examples/wavefield_snapshots-bc27c278794124d2.d: examples/wavefield_snapshots.rs

/root/repo/target/debug/examples/wavefield_snapshots-bc27c278794124d2: examples/wavefield_snapshots.rs

examples/wavefield_snapshots.rs:
