/root/repo/target/debug/examples/partition_compare-73ee10561d576a32.d: examples/partition_compare.rs

/root/repo/target/debug/examples/partition_compare-73ee10561d576a32: examples/partition_compare.rs

examples/partition_compare.rs:
