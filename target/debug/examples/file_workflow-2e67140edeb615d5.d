/root/repo/target/debug/examples/file_workflow-2e67140edeb615d5.d: examples/file_workflow.rs

/root/repo/target/debug/examples/file_workflow-2e67140edeb615d5: examples/file_workflow.rs

examples/file_workflow.rs:
