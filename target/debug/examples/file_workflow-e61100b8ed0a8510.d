/root/repo/target/debug/examples/file_workflow-e61100b8ed0a8510.d: examples/file_workflow.rs

/root/repo/target/debug/examples/file_workflow-e61100b8ed0a8510: examples/file_workflow.rs

examples/file_workflow.rs:
