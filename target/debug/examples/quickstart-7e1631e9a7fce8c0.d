/root/repo/target/debug/examples/quickstart-7e1631e9a7fce8c0.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-7e1631e9a7fce8c0: examples/quickstart.rs

examples/quickstart.rs:
