/root/repo/target/debug/examples/partition_compare-4317795172226c27.d: examples/partition_compare.rs

/root/repo/target/debug/examples/partition_compare-4317795172226c27: examples/partition_compare.rs

examples/partition_compare.rs:
