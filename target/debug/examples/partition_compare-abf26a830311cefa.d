/root/repo/target/debug/examples/partition_compare-abf26a830311cefa.d: examples/partition_compare.rs Cargo.toml

/root/repo/target/debug/examples/libpartition_compare-abf26a830311cefa.rmeta: examples/partition_compare.rs Cargo.toml

examples/partition_compare.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
