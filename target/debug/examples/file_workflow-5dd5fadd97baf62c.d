/root/repo/target/debug/examples/file_workflow-5dd5fadd97baf62c.d: examples/file_workflow.rs Cargo.toml

/root/repo/target/debug/examples/libfile_workflow-5dd5fadd97baf62c.rmeta: examples/file_workflow.rs Cargo.toml

examples/file_workflow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
