/root/repo/target/debug/examples/heterogeneous_media-b1cbf7aeeacb103c.d: examples/heterogeneous_media.rs Cargo.toml

/root/repo/target/debug/examples/libheterogeneous_media-b1cbf7aeeacb103c.rmeta: examples/heterogeneous_media.rs Cargo.toml

examples/heterogeneous_media.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
