/root/repo/target/debug/examples/distributed_run-ffd5a508718cd60f.d: examples/distributed_run.rs

/root/repo/target/debug/examples/distributed_run-ffd5a508718cd60f: examples/distributed_run.rs

examples/distributed_run.rs:
