/root/repo/target/debug/examples/heterogeneous_media-58beb295d4faff89.d: examples/heterogeneous_media.rs

/root/repo/target/debug/examples/heterogeneous_media-58beb295d4faff89: examples/heterogeneous_media.rs

examples/heterogeneous_media.rs:
