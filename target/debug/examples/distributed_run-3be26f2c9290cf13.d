/root/repo/target/debug/examples/distributed_run-3be26f2c9290cf13.d: examples/distributed_run.rs

/root/repo/target/debug/examples/distributed_run-3be26f2c9290cf13: examples/distributed_run.rs

examples/distributed_run.rs:
