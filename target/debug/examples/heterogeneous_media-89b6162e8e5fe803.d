/root/repo/target/debug/examples/heterogeneous_media-89b6162e8e5fe803.d: examples/heterogeneous_media.rs

/root/repo/target/debug/examples/heterogeneous_media-89b6162e8e5fe803: examples/heterogeneous_media.rs

examples/heterogeneous_media.rs:
