/root/repo/target/debug/examples/seismic_simulation-65adbc8aee0e785d.d: examples/seismic_simulation.rs Cargo.toml

/root/repo/target/debug/examples/libseismic_simulation-65adbc8aee0e785d.rmeta: examples/seismic_simulation.rs Cargo.toml

examples/seismic_simulation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
