/root/repo/target/debug/examples/wavefield_snapshots-e3a67f6e96d46f01.d: examples/wavefield_snapshots.rs

/root/repo/target/debug/examples/wavefield_snapshots-e3a67f6e96d46f01: examples/wavefield_snapshots.rs

examples/wavefield_snapshots.rs:
