/root/repo/target/debug/examples/quickstart-afb5cb6f88e40049.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-afb5cb6f88e40049: examples/quickstart.rs

examples/quickstart.rs:
