/root/repo/target/debug/examples/wavefield_snapshots-57ddcaeee9d4ea19.d: examples/wavefield_snapshots.rs Cargo.toml

/root/repo/target/debug/examples/libwavefield_snapshots-57ddcaeee9d4ea19.rmeta: examples/wavefield_snapshots.rs Cargo.toml

examples/wavefield_snapshots.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
