/root/repo/target/release/deps/lts_obs-7d66eea7261026a9.d: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/registry.rs crates/obs/src/span.rs

/root/repo/target/release/deps/liblts_obs-7d66eea7261026a9.rlib: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/registry.rs crates/obs/src/span.rs

/root/repo/target/release/deps/liblts_obs-7d66eea7261026a9.rmeta: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/registry.rs crates/obs/src/span.rs

crates/obs/src/lib.rs:
crates/obs/src/export.rs:
crates/obs/src/registry.rs:
crates/obs/src/span.rs:
