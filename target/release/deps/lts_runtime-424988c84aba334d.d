/root/repo/target/release/deps/lts_runtime-424988c84aba334d.d: crates/runtime/src/lib.rs crates/runtime/src/distributed.rs crates/runtime/src/exchange.rs crates/runtime/src/local.rs crates/runtime/src/stats.rs

/root/repo/target/release/deps/liblts_runtime-424988c84aba334d.rlib: crates/runtime/src/lib.rs crates/runtime/src/distributed.rs crates/runtime/src/exchange.rs crates/runtime/src/local.rs crates/runtime/src/stats.rs

/root/repo/target/release/deps/liblts_runtime-424988c84aba334d.rmeta: crates/runtime/src/lib.rs crates/runtime/src/distributed.rs crates/runtime/src/exchange.rs crates/runtime/src/local.rs crates/runtime/src/stats.rs

crates/runtime/src/lib.rs:
crates/runtime/src/distributed.rs:
crates/runtime/src/exchange.rs:
crates/runtime/src/local.rs:
crates/runtime/src/stats.rs:
