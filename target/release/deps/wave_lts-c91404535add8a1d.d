/root/repo/target/release/deps/wave_lts-c91404535add8a1d.d: src/lib.rs

/root/repo/target/release/deps/libwave_lts-c91404535add8a1d.rlib: src/lib.rs

/root/repo/target/release/deps/libwave_lts-c91404535add8a1d.rmeta: src/lib.rs

src/lib.rs:
