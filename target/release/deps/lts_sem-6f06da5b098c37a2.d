/root/repo/target/release/deps/lts_sem-6f06da5b098c37a2.d: crates/sem/src/lib.rs crates/sem/src/acoustic.rs crates/sem/src/boundary.rs crates/sem/src/dofmap.rs crates/sem/src/elastic.rs crates/sem/src/gll.rs crates/sem/src/kernel.rs crates/sem/src/parallel.rs crates/sem/src/record.rs crates/sem/src/unstructured.rs

/root/repo/target/release/deps/liblts_sem-6f06da5b098c37a2.rlib: crates/sem/src/lib.rs crates/sem/src/acoustic.rs crates/sem/src/boundary.rs crates/sem/src/dofmap.rs crates/sem/src/elastic.rs crates/sem/src/gll.rs crates/sem/src/kernel.rs crates/sem/src/parallel.rs crates/sem/src/record.rs crates/sem/src/unstructured.rs

/root/repo/target/release/deps/liblts_sem-6f06da5b098c37a2.rmeta: crates/sem/src/lib.rs crates/sem/src/acoustic.rs crates/sem/src/boundary.rs crates/sem/src/dofmap.rs crates/sem/src/elastic.rs crates/sem/src/gll.rs crates/sem/src/kernel.rs crates/sem/src/parallel.rs crates/sem/src/record.rs crates/sem/src/unstructured.rs

crates/sem/src/lib.rs:
crates/sem/src/acoustic.rs:
crates/sem/src/boundary.rs:
crates/sem/src/dofmap.rs:
crates/sem/src/elastic.rs:
crates/sem/src/gll.rs:
crates/sem/src/kernel.rs:
crates/sem/src/parallel.rs:
crates/sem/src/record.rs:
crates/sem/src/unstructured.rs:
