/root/repo/target/release/deps/lts_bench-e66c30b688317dea.d: crates/bench/src/lib.rs crates/bench/src/scaling.rs

/root/repo/target/release/deps/liblts_bench-e66c30b688317dea.rlib: crates/bench/src/lib.rs crates/bench/src/scaling.rs

/root/repo/target/release/deps/liblts_bench-e66c30b688317dea.rmeta: crates/bench/src/lib.rs crates/bench/src/scaling.rs

crates/bench/src/lib.rs:
crates/bench/src/scaling.rs:
