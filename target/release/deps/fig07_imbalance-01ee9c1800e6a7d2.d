/root/repo/target/release/deps/fig07_imbalance-01ee9c1800e6a7d2.d: crates/bench/src/bin/fig07_imbalance.rs

/root/repo/target/release/deps/fig07_imbalance-01ee9c1800e6a7d2: crates/bench/src/bin/fig07_imbalance.rs

crates/bench/src/bin/fig07_imbalance.rs:
