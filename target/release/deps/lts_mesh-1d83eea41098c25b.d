/root/repo/target/release/deps/lts_mesh-1d83eea41098c25b.d: crates/mesh/src/lib.rs crates/mesh/src/benchmarks.rs crates/mesh/src/dual.rs crates/mesh/src/grading.rs crates/mesh/src/hex.rs crates/mesh/src/hypergraph.rs crates/mesh/src/io.rs crates/mesh/src/levels.rs crates/mesh/src/quad.rs crates/mesh/src/random_media.rs

/root/repo/target/release/deps/liblts_mesh-1d83eea41098c25b.rlib: crates/mesh/src/lib.rs crates/mesh/src/benchmarks.rs crates/mesh/src/dual.rs crates/mesh/src/grading.rs crates/mesh/src/hex.rs crates/mesh/src/hypergraph.rs crates/mesh/src/io.rs crates/mesh/src/levels.rs crates/mesh/src/quad.rs crates/mesh/src/random_media.rs

/root/repo/target/release/deps/liblts_mesh-1d83eea41098c25b.rmeta: crates/mesh/src/lib.rs crates/mesh/src/benchmarks.rs crates/mesh/src/dual.rs crates/mesh/src/grading.rs crates/mesh/src/hex.rs crates/mesh/src/hypergraph.rs crates/mesh/src/io.rs crates/mesh/src/levels.rs crates/mesh/src/quad.rs crates/mesh/src/random_media.rs

crates/mesh/src/lib.rs:
crates/mesh/src/benchmarks.rs:
crates/mesh/src/dual.rs:
crates/mesh/src/grading.rs:
crates/mesh/src/hex.rs:
crates/mesh/src/hypergraph.rs:
crates/mesh/src/io.rs:
crates/mesh/src/levels.rs:
crates/mesh/src/quad.rs:
crates/mesh/src/random_media.rs:
