/root/repo/target/release/deps/fig01_timeline-76a92239b19c8f72.d: crates/bench/src/bin/fig01_timeline.rs

/root/repo/target/release/deps/fig01_timeline-76a92239b19c8f72: crates/bench/src/bin/fig01_timeline.rs

crates/bench/src/bin/fig01_timeline.rs:
