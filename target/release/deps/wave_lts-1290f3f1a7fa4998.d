/root/repo/target/release/deps/wave_lts-1290f3f1a7fa4998.d: src/bin/wave-lts.rs

/root/repo/target/release/deps/wave_lts-1290f3f1a7fa4998: src/bin/wave-lts.rs

src/bin/wave-lts.rs:
