/root/repo/target/release/deps/verification-3414a20ab43e0a5f.d: crates/bench/src/bin/verification.rs

/root/repo/target/release/deps/verification-3414a20ab43e0a5f: crates/bench/src/bin/verification.rs

crates/bench/src/bin/verification.rs:
