/root/repo/target/release/deps/lts_partition-9f1b5a63b741f814.d: crates/partition/src/lib.rs crates/partition/src/assignment.rs crates/partition/src/costed.rs crates/partition/src/graph.rs crates/partition/src/hgraph.rs crates/partition/src/hmultilevel.rs crates/partition/src/kway.rs crates/partition/src/metrics.rs crates/partition/src/multilevel.rs crates/partition/src/refine.rs crates/partition/src/restricted.rs crates/partition/src/scotch_p.rs crates/partition/src/strategy.rs

/root/repo/target/release/deps/liblts_partition-9f1b5a63b741f814.rlib: crates/partition/src/lib.rs crates/partition/src/assignment.rs crates/partition/src/costed.rs crates/partition/src/graph.rs crates/partition/src/hgraph.rs crates/partition/src/hmultilevel.rs crates/partition/src/kway.rs crates/partition/src/metrics.rs crates/partition/src/multilevel.rs crates/partition/src/refine.rs crates/partition/src/restricted.rs crates/partition/src/scotch_p.rs crates/partition/src/strategy.rs

/root/repo/target/release/deps/liblts_partition-9f1b5a63b741f814.rmeta: crates/partition/src/lib.rs crates/partition/src/assignment.rs crates/partition/src/costed.rs crates/partition/src/graph.rs crates/partition/src/hgraph.rs crates/partition/src/hmultilevel.rs crates/partition/src/kway.rs crates/partition/src/metrics.rs crates/partition/src/multilevel.rs crates/partition/src/refine.rs crates/partition/src/restricted.rs crates/partition/src/scotch_p.rs crates/partition/src/strategy.rs

crates/partition/src/lib.rs:
crates/partition/src/assignment.rs:
crates/partition/src/costed.rs:
crates/partition/src/graph.rs:
crates/partition/src/hgraph.rs:
crates/partition/src/hmultilevel.rs:
crates/partition/src/kway.rs:
crates/partition/src/metrics.rs:
crates/partition/src/multilevel.rs:
crates/partition/src/refine.rs:
crates/partition/src/restricted.rs:
crates/partition/src/scotch_p.rs:
crates/partition/src/strategy.rs:
