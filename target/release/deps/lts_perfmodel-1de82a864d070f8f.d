/root/repo/target/release/deps/lts_perfmodel-1de82a864d070f8f.d: crates/perfmodel/src/lib.rs crates/perfmodel/src/cache.rs crates/perfmodel/src/cluster.rs

/root/repo/target/release/deps/liblts_perfmodel-1de82a864d070f8f.rlib: crates/perfmodel/src/lib.rs crates/perfmodel/src/cache.rs crates/perfmodel/src/cluster.rs

/root/repo/target/release/deps/liblts_perfmodel-1de82a864d070f8f.rmeta: crates/perfmodel/src/lib.rs crates/perfmodel/src/cache.rs crates/perfmodel/src/cluster.rs

crates/perfmodel/src/lib.rs:
crates/perfmodel/src/cache.rs:
crates/perfmodel/src/cluster.rs:
