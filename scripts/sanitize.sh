#!/usr/bin/env bash
# Sanitizer gate for the colored executor's unsafe surface.
#
# Three layers, strongest available wins; each degrades gracefully when the
# toolchain component is missing (offline containers often lack rustup
# components), printing SKIP instead of failing:
#
#   1. Miri        — interpreter-level UB detection (requires `cargo miri`).
#   2. ThreadSanitizer — compile-time race instrumentation (requires a
#                    nightly with rust-src for -Zbuild-std).
#   3. Interleaving model — the in-tree explicit-state checker
#                    (tests/loom_model.rs); always runs, needs only stable.
#
# The model checker is the load-bearing layer: it exhaustively enumerates
# interleavings of the chunk/barrier protocol built from the real
# `chunk_range` split and a real greedy colouring. Miri/TSan, when present,
# additionally validate the concrete `DisjointOut` pointer arithmetic.
set -uo pipefail
cd "$(dirname "$0")/.."

status=0

echo "== layer 0: call-graph self-check (lts-lint --mode graph-dump round-trip)"
# Cheap smoke: the semantic lint's workspace model must build and its
# deterministic dump must round-trip through its own parser.
if cargo xtask lint --mode graph-dump >/dev/null; then
  echo "graph-dump: ok"
else
  echo "graph-dump: FAILED"
  status=1
fi

# Scope: the crate holding the entire unsafe surface (crates/sem) and the
# threaded runtime driving it.
SCOPE=(-p lts-sem)
# Fast, deterministic tests only under Miri (it is ~100x slower than native);
# the parallel/compiled/verify units plus the model are the relevant set.
MIRI_FILTER="parallel:: compiled:: verify::"

echo "== layer 1: Miri"
if cargo +nightly miri --version >/dev/null 2>&1; then
  # Scoped threads + Barrier are supported by Miri; disable isolation so
  # available_parallelism works.
  if MIRIFLAGS="-Zmiri-disable-isolation" \
     cargo +nightly miri test -q "${SCOPE[@]}" --lib -- $MIRI_FILTER; then
    echo "miri: ok"
  else
    echo "miri: FAILED"
    status=1
  fi
else
  echo "SKIP: cargo-miri not installed for the nightly toolchain"
fi

echo "== layer 2: ThreadSanitizer"
has_src=0
if rustc +nightly --print sysroot >/dev/null 2>&1; then
  sysroot="$(rustc +nightly --print sysroot)"
  [ -d "$sysroot/lib/rustlib/src/rust/library" ] && has_src=1
fi
if [ "$has_src" = 1 ]; then
  target="$(rustc -vV | sed -n 's/^host: //p')"
  if RUSTFLAGS="-Zsanitizer=thread" \
     cargo +nightly test -q -Zbuild-std --target "$target" "${SCOPE[@]}" --lib; then
    echo "tsan: ok"
  else
    echo "tsan: FAILED"
    status=1
  fi
else
  echo "SKIP: nightly rust-src unavailable (-Zbuild-std needs it)"
fi

echo "== layer 3: interleaving model (tests/loom_model.rs)"
if cargo test -q -p lts-sem --test loom_model; then
  echo "model: ok"
else
  echo "model: FAILED"
  status=1
fi

if [ "$status" = 0 ]; then
  echo "ok"
else
  echo "sanitize: FAILURES above"
fi
exit "$status"
