#!/usr/bin/env bash
# Repository lint gate: clippy clean under -D warnings, formatting canonical,
# and the bench-smoke regression gate (deterministic counters vs the
# committed BENCH_lts.json baseline; timings are skipped — hosts differ).
# Run from anywhere; operates on the workspace this script lives in.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo xtask lint (hot-path alloc / no-panic / unsafe-safety / float-eq)"
cargo xtask lint

echo "== lts-check (structural invariants over the four benchmark meshes)"
cargo run -q --release -p lts-check

echo "== transport conformance (channel / shm-ring / unix-socket / faulty)"
cargo test -q --test transport_conformance

echo "== multi-process smoke (wave-lts worker over unix sockets)"
cargo test -q --test multiprocess_integration

echo "== SIMD feature matrix (lts-sem with and without the simd feature)"
# Feature on is the workspace default (covered by every other step); the
# off leg must still build and pass bitwise-determinism tests through the
# pure scalar path.
cargo test -q -p lts-sem --no-default-features

echo "== cargo bench --no-run (microbenches must stay compilable)"
cargo bench --no-run -q

echo "== bench smoke (lts-profile --smoke → validate → bench-compare)"
# The smoke matrix includes an order-4 scenario, so the SIMD stiffness
# batch at the paper's production order is inside the counter gate.
cargo build --release -q -p lts-bench --bin lts-profile
smoke_out="$(mktemp /tmp/bench_smoke.XXXXXX.json)"
scalar_out="$(mktemp /tmp/bench_smoke_scalar.XXXXXX.json)"
trap 'rm -f "$smoke_out" "$scalar_out"' EXIT
./target/release/lts-profile --mode run --smoke true --out "$smoke_out" >/dev/null
./target/release/lts-profile --mode validate --file "$smoke_out"
./target/release/lts-profile --mode compare \
  --baseline BENCH_lts.json --current "$smoke_out" --timings false

echo "== bench smoke, forced-scalar kernel (counters must be SIMD-invariant)"
LTS_SIMD=scalar ./target/release/lts-profile --mode run --smoke true \
  --out "$scalar_out" >/dev/null
./target/release/lts-profile --mode compare \
  --baseline "$smoke_out" --current "$scalar_out" --timings false

echo "ok"
