#!/usr/bin/env bash
# Repository lint gate: clippy clean under -D warnings, formatting canonical.
# Run from anywhere; operates on the workspace this script lives in.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo fmt --check"
cargo fmt --check

echo "ok"
