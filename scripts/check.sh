#!/usr/bin/env bash
# Repository lint gate: clippy clean under -D warnings, formatting canonical,
# and the bench-smoke regression gate (deterministic counters vs the
# committed BENCH_lts.json baseline; timings are skipped — hosts differ).
# Run from anywhere; operates on the workspace this script lives in.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo xtask lint (semantic call-graph tier + lexer fallback, SARIF to target/lint.sarif)"
cargo xtask lint --sarif target/lint.sarif

echo "== lts-check (structural invariants over the four benchmark meshes)"
cargo run -q --release -p lts-check

echo "== transport conformance (channel / shm-ring / unix-socket / faulty)"
cargo test -q --test transport_conformance

echo "== multi-process smoke (wave-lts worker over unix sockets)"
cargo test -q --test multiprocess_integration

echo "== crash-report gate (die-at-level on every transport → postmortem parses & merges)"
# A killed rank must exit the simulation with code 4 and leave a crash
# report whose recordings `postmortem` can re-parse and causally merge
# (postmortem exits 0 only on both).
cargo build --release -q --bin wave-lts
crash_dir="$(mktemp -d /tmp/wlts_crash.XXXXXX)"
trap 'rm -rf "$crash_dir"' EXIT
for transport in channel shm-ring unix-socket process; do
  report="$crash_dir/$transport.json"
  status=0
  ./target/release/wave-lts simulate --mesh trench --elements 600 --steps 4 \
    --ranks 3 --transport "$transport" --fault-rank 1 --fault-die-at-level 1 \
    --crash-report "$report" >/dev/null 2>&1 || status=$?
  if [ "$status" -ne 4 ]; then
    echo "crash-report gate: $transport: expected exit 4, got $status" >&2
    exit 1
  fi
  if [ ! -s "$report" ] || [ ! -s "$report.txt" ] || [ ! -s "$report.trace.json" ]; then
    echo "crash-report gate: $transport: missing report artifacts" >&2
    exit 1
  fi
  ./target/release/wave-lts postmortem --file "$report" >/dev/null
done

echo "== SIMD feature matrix (lts-sem with and without the simd feature)"
# Feature on is the workspace default (covered by every other step); the
# off leg must still build and pass bitwise-determinism tests through the
# pure scalar path.
cargo test -q -p lts-sem --no-default-features

echo "== cargo bench --no-run (microbenches must stay compilable)"
cargo bench --no-run -q

echo "== bench smoke (lts-profile --smoke → validate → bench-compare)"
# The smoke matrix includes an order-4 scenario, so the SIMD stiffness
# batch at the paper's production order is inside the counter gate.
cargo build --release -q -p lts-bench --bin lts-profile
smoke_out="$(mktemp /tmp/bench_smoke.XXXXXX.json)"
scalar_out="$(mktemp /tmp/bench_smoke_scalar.XXXXXX.json)"
flight_off="$(mktemp /tmp/bench_smoke_noflight.XXXXXX.json)"
trap 'rm -f "$smoke_out" "$scalar_out" "$flight_off"; rm -rf "$crash_dir"' EXIT
./target/release/lts-profile --mode run --smoke true --out "$smoke_out" >/dev/null
./target/release/lts-profile --mode validate --file "$smoke_out"
./target/release/lts-profile --mode compare \
  --baseline BENCH_lts.json --current "$smoke_out" --timings false

echo "== bench smoke, forced-scalar kernel (counters must be SIMD-invariant)"
LTS_SIMD=scalar ./target/release/lts-profile --mode run --smoke true \
  --out "$scalar_out" >/dev/null
./target/release/lts-profile --mode compare \
  --baseline "$smoke_out" --current "$scalar_out" --timings false

echo "== recorder-overhead smoke (flight recorder off: counters must be identical)"
# LTS_FLIGHT=0 disables the flight recorder entirely; every deterministic
# counter must match the recorder-on smoke run exactly — the recorder is
# observability, never physics.
LTS_FLIGHT=0 ./target/release/lts-profile --mode run --smoke true \
  --out "$flight_off" >/dev/null
./target/release/lts-profile --mode compare \
  --baseline "$smoke_out" --current "$flight_off" --timings false

echo "ok"
